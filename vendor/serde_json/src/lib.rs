//! Offline stand-in for `serde_json` over the vendored `serde`.
//!
//! `Serialize` in the vendored model already writes compact JSON, so
//! this crate only adds the entry points the experiment binaries use:
//! `to_string`, `to_string_pretty` (a re-indenting pass over compact
//! output), a `Value` holding pre-rendered JSON, and a `json!` macro
//! covering object literals (nested allowed) with expression values.

// The `json!` expansion builds its entry list with pushes by design.
#![allow(clippy::vec_init_then_push)]

use serde::Serialize;

/// Serialization in this model is infallible; the error type exists
/// for API compatibility with call sites that `.expect(...)`.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// A JSON document held as its compact rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value(String);

impl Value {
    pub fn null() -> Value {
        Value("null".to_string())
    }

    pub fn object(entries: Vec<(String, Value)>) -> Value {
        let mut out = String::from("{");
        for (i, (key, value)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::write_json_str(key, &mut out);
            out.push(':');
            out.push_str(&value.0);
        }
        out.push('}');
        Value(out)
    }

    pub fn array(elements: Vec<Value>) -> Value {
        let mut out = String::from("[");
        for (i, element) in elements.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&element.0);
        }
        out.push(']');
        Value(out)
    }

    /// Render any `Serialize` value into a `Value` (used by `json!`).
    pub fn from_serialize<T: Serialize + ?Sized>(value: &T) -> Value {
        let mut out = String::new();
        value.to_json(&mut out);
        Value(out)
    }
}

impl Serialize for Value {
    fn to_json(&self, out: &mut String) {
        out.push_str(&self.0);
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json(&mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(pretty(&to_string(value)?))
}

/// Re-indent compact JSON (produced by our own serializer, so it is
/// known to be valid) with two-space indentation.
fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                if matches!(chars.peek(), Some('}') | Some(']')) {
                    // Keep empty containers on one line.
                    out.push(chars.next().unwrap());
                } else {
                    indent += 1;
                    newline(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
    }
    out
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Build a [`Value`]. Supports `null`, object literals with string-
/// literal keys (nested object and array literals allowed), array
/// literals, and arbitrary expressions whose type is `Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::null() };
    ([ $($element:tt),* $(,)? ]) => {
        $crate::Value::array(vec![ $( $crate::json!($element) ),* ])
    };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let mut entries: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_object_entries!(entries; $($body)*);
        $crate::Value::object(entries)
    }};
    ($value:expr) => { $crate::Value::from_serialize(&$value) };
}

/// Internal helper for [`json!`] object bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($entries:ident;) => {};
    ($entries:ident; $key:literal : { $($nested:tt)* } $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::json!({ $($nested)* })));
        $( $crate::json_object_entries!($entries; $($rest)*); )?
    };
    ($entries:ident; $key:literal : [ $($nested:tt)* ] $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::json!([ $($nested)* ])));
        $( $crate::json_object_entries!($entries; $($rest)*); )?
    };
    ($entries:ident; $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::Value::from_serialize(&$value)));
        $( $crate::json_object_entries!($entries; $($rest)*); )?
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_macro_shapes() {
        let nested = json!({
            "a": 1usize,
            "b": { "c": Some(2.5f64), "d": None::<f64> },
            "e": [1u8, 2u8],
        });
        assert_eq!(
            crate::to_string(&nested).unwrap(),
            r#"{"a":1,"b":{"c":2.5,"d":null},"e":[1,2]}"#
        );
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({ "k": [1u8], "m": {} });
        assert_eq!(
            crate::to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    1\n  ],\n  \"m\": {}\n}"
        );
    }

    #[test]
    fn pretty_preserves_escaped_strings() {
        let v = json!({ "k": "a\"b{}," });
        assert_eq!(
            crate::to_string_pretty(&v).unwrap(),
            "{\n  \"k\": \"a\\\"b{},\"\n}"
        );
    }
}
