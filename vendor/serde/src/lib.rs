//! Offline JSON-only stand-in for `serde`.
//!
//! The container has no registry access, so the workspace vendors a
//! minimal implementation that keeps the names doqlab uses —
//! `serde::Serialize`, `serde::Deserialize`, and the derive macros —
//! while reducing the data model to exactly what the report types
//! need: a `Serialize` that appends compact JSON to a `String`.
//! `serde_json` (also vendored) renders and pretty-prints on top of
//! this. `Deserialize` is a marker trait: nothing in the workspace
//! parses JSON back in.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization to compact JSON. Derivable via `#[derive(Serialize)]`
/// for named structs, newtype/tuple structs, and unit-variant enums;
/// `#[serde(skip)]` omits a field.
pub trait Serialize {
    fn to_json(&self, out: &mut String);
}

/// Marker for types that declare `#[derive(Deserialize)]`. No decoding
/// is implemented — nothing in the workspace reads JSON back.
pub trait Deserialize: Sized {}

/// Append `s` as a JSON string literal (quoted, escaped).
pub fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! serialize_integers {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        })*
    };
}

serialize_integers!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! serialize_floats {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Infinity; match serde_json's null.
                    out.push_str("null");
                }
            }
        })*
    };
}

serialize_floats!(f32, f64);

impl Serialize for bool {
    fn to_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn to_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for String {
    fn to_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self, out: &mut String) {
        (**self).to_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self, out: &mut String) {
        match self {
            Some(v) => v.to_json(out),
            None => out.push_str("null"),
        }
    }
}

fn write_json_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.to_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(k.as_ref(), out);
            out.push(':');
            v.to_json(out);
        }
        out.push('}');
    }
}

impl<K: AsRef<str> + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json(&self, out: &mut String) {
        // Sort keys so output is deterministic regardless of hasher state.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by_key(|(k, _)| *k);
        out.push('{');
        for (i, (k, v)) in entries.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(k.as_ref(), out);
            out.push(':');
            v.to_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        let mut out = String::new();
        "a\"b\\c\nd".to_json(&mut out);
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn maps_sequences_scalars() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1.5f64, 2.0]);
        let mut out = String::new();
        m.to_json(&mut out);
        assert_eq!(out, r#"{"k":[1.5,2]}"#);
        let mut out = String::new();
        (None::<f64>, f64::NAN).0.to_json(&mut out);
        f64::NAN.to_json(&mut out);
        assert_eq!(out, "nullnull");
    }
}
