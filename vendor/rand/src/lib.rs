//! Offline placeholder for `rand`.
//!
//! The doqlab workspace declares a `rand` dependency but draws all of
//! its randomness from `doqlab_simnet::SimRng` (a seeded xoshiro256**)
//! so that simulations stay deterministic. This empty crate satisfies
//! the manifest without any network access to a registry.
