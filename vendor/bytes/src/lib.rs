//! Offline placeholder for `bytes`.
//!
//! The doqlab wire-format and transport crates declare a `bytes`
//! dependency but build every buffer out of plain `Vec<u8>`. This
//! empty crate satisfies the manifest without registry access.
