//! Offline stand-in for `criterion`.
//!
//! Keeps the macro and builder surface the doqlab benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `sample_size` / `throughput`, `black_box`)
//! and measures with plain `std::time::Instant`: calibrate an
//! iteration count to a target sample duration, take N samples, and
//! print the median ns/iter. No plotting, no statistics files.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Calibrate: grow the iteration count until one sample takes ≥2 ms
    // (or the count gets large enough that timing noise is amortized).
    loop {
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(2) || bencher.iters >= 1 << 20 {
            break;
        }
        bencher.iters *= 4;
    }
    let mut samples_ns: Vec<f64> = (0..sample_size.max(1))
        .map(|_| {
            f(&mut bencher);
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        })
        .collect();
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mb_per_s = bytes as f64 / (median / 1e9) / 1e6;
            println!("{name}: {median:.1} ns/iter, {mb_per_s:.1} MB/s");
        }
        Some(Throughput::Elements(elements)) => {
            let elem_per_s = elements as f64 / (median / 1e9);
            println!("{name}: {median:.1} ns/iter, {elem_per_s:.0} elem/s");
        }
        None => println!("{name}: {median:.1} ns/iter"),
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
