//! Offline derive macros for the vendored `serde` stand-in.
//!
//! Parses the derive input with the bare `proc_macro` API (no syn or
//! quote, which would need registry access) and supports exactly the
//! shapes the workspace uses:
//!
//! - named-field structs (doc comments and `#[serde(skip)]` honored),
//! - tuple structs (newtypes serialize as the inner value, wider
//!   tuples as arrays),
//! - enums whose variants are all unit variants (serialize as the
//!   variant name).
//!
//! Anything else (generics, data-carrying enums) produces a
//! `compile_error!` so unsupported use fails loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Field names paired with whether `#[serde(skip)]` was present.
    Named(Vec<(String, bool)>),
    /// Number of tuple fields.
    Tuple(usize),
    /// Unit variant names.
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, |input| {
        format!("impl ::serde::Deserialize for {} {{}}", input.name)
    })
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    let code = match parse(input) {
        Ok(parsed) => gen(&parsed),
        Err(msg) => format!("compile_error!({:?});", msg),
    };
    code.parse().expect("derive output must be valid Rust")
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut code = String::from("out.push('{');\n");
            let mut emitted = 0usize;
            for (field, skip) in fields {
                if *skip {
                    continue;
                }
                if emitted > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!(
                    "::serde::write_json_str({field:?}, out);\n\
                     out.push(':');\n\
                     ::serde::Serialize::to_json(&self.{field}, out);\n"
                ));
                emitted += 1;
            }
            code.push_str("out.push('}');");
            code
        }
        Shape::Tuple(1) => "::serde::Serialize::to_json(&self.0, out);".to_string(),
        Shape::Tuple(n) => {
            let mut code = String::from("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!("::serde::Serialize::to_json(&self.{i}, out);\n"));
            }
            code.push_str("out.push(']');");
            code
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "let variant = match self {{ {} }};\n\
                 ::serde::write_json_str(variant, out);",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n}}"
    )
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (doc comments included) and visibility.
    let is_enum = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            other => return Err(format!("unsupported derive input near {other:?}")),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type {name} is not supported by the vendored serde derive"
        ));
    }
    let shape = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Shape::UnitEnum(parse_unit_variants(g.stream())?)
            } else {
                Shape::Named(parse_named_fields(g.stream())?)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        other => return Err(format!("unsupported {name} body near {other:?}")),
    };
    Ok(Input { name, shape })
}

/// `#[serde(skip)]`-aware named-field parser. Type tokens may contain
/// commas inside angle brackets (`BTreeMap<String, usize>`), so commas
/// only separate fields at angle depth zero.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        let mut skip = false;
        // Field attributes: doc comments and #[serde(...)].
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    skip |= attr_is_serde_skip(g.stream());
                }
                other => return Err(format!("malformed attribute near {other:?}")),
            }
        }
        match tokens.peek() {
            None => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => {}
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected ':' after {name}, found {other:?}")),
        }
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push((name, skip));
    }
    Ok(fields)
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|tt| matches!(&tt, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut angle_depth = 0i32;
    let mut in_field = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => in_field = false,
            _ => {
                if !in_field {
                    fields += 1;
                    in_field = true;
                }
            }
        }
    }
    fields
}

fn parse_unit_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        match tokens.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            other => {
                return Err(format!(
                    "variant {name} is not a unit variant (near {other:?}); \
                     the vendored serde derive only supports unit-variant enums"
                ))
            }
        }
    }
    Ok(variants)
}
