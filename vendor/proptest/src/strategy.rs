//! Strategies: deterministic value generation without shrinking.

/// splitmix64 — small, fast, and plenty for test-case generation.
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }
}

pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! range_strategy_ints {
    ($($t:ty),*) => {
        $(impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        })*
    };
}

range_strategy_ints!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Uniform choice between boxed strategies (see [`crate::prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len());
        self.arms[pick].generate(rng)
    }
}

/// Box a strategy for use in heterogeneous [`OneOf`] arms.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Length specification for [`crate::collection::vec`].
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    pub fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi - self.lo)
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}
