//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API that the doqlab property
//! tests use: `proptest!` with an optional `proptest_config` inner
//! attribute, `any::<T>()` for scalars and byte arrays, range
//! strategies, `prop_map`, tuple strategies, `prop_oneof!`,
//! `collection::vec`, a small `string_regex`, and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test seed
//! (override with `DOQLAB_PROPTEST_SEED`); failures report the case
//! number and seed. There is no shrinking.

pub mod strategy;

pub mod collection {
    use crate::strategy::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    use crate::strategy::{Strategy, TestRng};

    #[derive(Debug)]
    pub struct RegexError(pub String);

    pub struct RegexStrategy {
        /// (candidate characters, min repeats, max repeats) per atom.
        atoms: Vec<(Vec<char>, usize, usize)>,
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for (chars, lo, hi) in &self.atoms {
                let n = lo + rng.below(hi - lo + 1);
                for _ in 0..n {
                    out.push(chars[rng.below(chars.len())]);
                }
            }
            out
        }
    }

    /// Tiny regex subset: literal characters and `[...]` classes (with
    /// `a-z` ranges), each optionally followed by `{n}` or `{m,n}`.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, RegexError> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let candidates = match c {
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        match chars.next() {
                            None => return Err(RegexError("unterminated class".into())),
                            Some(']') => break,
                            Some(lo) => {
                                if chars.peek() == Some(&'-')
                                    && chars.clone().nth(1).is_some_and(|c| c != ']')
                                {
                                    chars.next();
                                    let hi = chars.next().unwrap();
                                    set.extend(lo..=hi);
                                } else {
                                    set.push(lo);
                                }
                            }
                        }
                    }
                    set
                }
                '{' | '}' | ']' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '\\' => {
                    return Err(RegexError(format!("unsupported regex syntax at {c:?}")))
                }
                literal => vec![literal],
            };
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let parse = |s: &str| {
                    s.parse::<usize>()
                        .map_err(|_| RegexError(format!("bad repeat {spec:?}")))
                };
                match spec.split_once(',') {
                    Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                    None => {
                        let n = parse(&spec)?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            if candidates.is_empty() || hi < lo {
                return Err(RegexError("empty class or inverted repeat".into()));
            }
            atoms.push((candidates, lo, hi));
        }
        Ok(RegexStrategy { atoms })
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// FNV-1a, used to derive a per-test seed from the test name.
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("DOQLAB_PROPTEST_SEED") {
        if let Ok(seed) = s.parse() {
            return seed;
        }
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Define property tests. Subset of proptest's grammar: an optional
/// `#![proptest_config(...)]`, then `#[test] fn name(arg in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run $config; $($rest)* }
    };
    (@run $config:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config = $config;
                let seed = $crate::seed_for(stringify!($name));
                let mut rng = $crate::strategy::TestRng::new(seed);
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest case {case} (seed {seed:#x}) failed: {message}"
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `left != right`\n  both: {left:?}"
            ));
        }
    }};
}

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![ $( $crate::strategy::boxed($arm) ),+ ])
    };
}
