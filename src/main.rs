//! The `doqlab` command-line driver: run any campaign of the study and
//! print the paper-style report.
//!
//! ```sh
//! doqlab discovery
//! doqlab single-query --scale medium
//! doqlab webperf --scale quick --seed 7
//! doqlab measure impairments --scale quick --seed 7
//! doqlab measure mobility --scale quick --seed 7
//! doqlab measure populations --scale quick --threads 8
//! doqlab measure whatif --scale quick --seed 7
//! doqlab all --scale quick --threads 8
//! doqlab trace single-query --scale quick --trace-out trace.qlog
//! ```
//!
//! Campaign names may be prefixed with `measure` (`doqlab measure
//! impairments` and `doqlab impairments` are the same command).

use doqlab_core::measure::engine;
use doqlab_core::measure::report;
use doqlab_core::telemetry::metrics;
use doqlab_core::Study;

fn usage() -> ! {
    eprintln!(
        "usage: doqlab [measure] \
         <discovery|single-query|webperf|impairments|mobility|populations|whatif|all> \
         [--scale quick|medium|paper] [--seed N] [--threads N]\n\
         \x20      doqlab trace <single-query> \
         [--scale quick|medium|paper] [--seed N] [--trace-out PATH]\n\
         \n\
         environment:\n\
         \x20 DOQLAB_THREADS  worker threads for campaign runs \
         (same as --threads)\n\
         \x20 DOQLAB_SEED     campaign seed override \
         (read by the experiment binaries)\n\
         \x20 DOQLAB_CLIENTS  simulated clients for `measure populations` \
         (quick 2000, medium 20000, paper 100000)\n\
         \x20 DOQLAB_REBIND_MS   first rebind offset for `measure mobility`, \
         ms after handshake (default 5)\n\
         \x20 DOQLAB_STAGGER_MS  failover stagger for `measure mobility`, \
         ms (default 400)"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut command = args.remove(0);
    // `doqlab measure <campaign>` is the spelled-out form of
    // `doqlab <campaign>`.
    if command == "measure" {
        if args.is_empty() {
            usage();
        }
        command = args.remove(0);
    }
    let trace_target = if command == "trace" {
        if args.is_empty() {
            usage();
        }
        Some(args.remove(0))
    } else {
        None
    };
    let mut seed = engine::env_seed(2022);
    let mut scale = "quick".to_string();
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].clone();
                i += 1;
            }
            "--threads" if i + 1 < args.len() => {
                let n: usize = args[i + 1].parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                std::env::set_var(engine::THREADS_ENV, n.to_string());
                i += 1;
            }
            "--trace-out" if i + 1 < args.len() => {
                trace_out = Some(args[i + 1].clone());
                i += 1;
            }
            _ => usage(),
        }
        i += 1;
    }
    if trace_out.is_some() && trace_target.is_none() {
        usage(); // --trace-out only applies to `doqlab trace`
    }
    let study = match scale.as_str() {
        "quick" => Study::quick(seed),
        "medium" => Study::medium(seed),
        "paper" => Study::paper(seed),
        _ => usage(),
    };

    if let Some(target) = trace_target {
        run_trace(&study, &target, trace_out.as_deref());
        return;
    }

    // Campaign runs collect lock-free counters/histograms; the samples
    // themselves are byte-identical with telemetry on or off (pinned by
    // the engine invariance tests).
    metrics::set_enabled(true);
    match command.as_str() {
        "discovery" => run_discovery(&study),
        "single-query" => run_single_query(&study),
        "webperf" => run_webperf(&study),
        "impairments" => run_impairments(&study),
        "mobility" => run_mobility(&study),
        "populations" => run_populations(&study),
        "whatif" => run_whatif(&study),
        "all" => {
            run_discovery(&study);
            run_single_query(&study);
            run_webperf(&study);
            run_impairments(&study);
            run_mobility(&study);
            run_populations(&study);
            run_whatif(&study);
        }
        _ => usage(),
    }
    let telemetry = report::render_telemetry(&report::telemetry_section());
    if !telemetry.is_empty() {
        println!("{telemetry}");
    }
}

fn run_trace(study: &Study, target: &str, out: Option<&str>) {
    if target != "single-query" {
        eprintln!("doqlab trace: only the single-query campaign is traceable");
        usage();
    }
    let run = study.trace_single_query();
    let seq = run.to_json_seq();
    match out {
        Some(path) => {
            std::fs::write(path, &seq).unwrap_or_else(|e| {
                eprintln!("doqlab trace: cannot write {path}: {e}");
                std::process::exit(1);
            });
            let events: usize = run.traces.iter().map(|t| t.events.len()).sum();
            eprintln!(
                "wrote {} qlog events for {} connections to {path}",
                events,
                run.traces.len()
            );
        }
        None => print!("{seq}"),
    }
}

fn run_discovery(study: &Study) {
    println!("== discovery (§2) ==");
    let pop = study.scan_population(200);
    let r = study.run_discovery(&pop);
    println!(
        "probed {} hosts -> {} QUIC -> {} DoQ -> {} verified DoX\n\
         (paper: 1,216 DoQ -> 313 verified)\n",
        r.probed_hosts, r.quic_hosts, r.doq_resolvers, r.verified_dox
    );
}

fn run_single_query(study: &Study) {
    println!("== single query (§3.1) ==");
    let samples = study.run_single_query();
    println!("{}", report::render_table1(&report::table1(&samples)));
    println!("{}", report::render_fig2(&report::fig2(&samples)));
}

fn run_impairments(study: &Study) {
    println!("== fault injection (impairment sweep) ==");
    let samples = study.run_impairments();
    println!(
        "{}",
        report::render_impairments(&report::impairment_rows(&samples))
    );
}

fn run_mobility(study: &Study) {
    println!("== mobility (rebind + failover sweep) ==");
    let samples = study.run_mobility();
    println!(
        "{}",
        report::render_mobility(&report::mobility_rows(&samples))
    );
}

fn run_populations(study: &Study) {
    println!("== population scale (Zipf workloads, shared caches) ==");
    let samples = study.run_populations();
    println!(
        "{}",
        report::render_populations(&report::population_rows(&samples))
    );
}

fn run_whatif(study: &Study) {
    println!("== what-if (counterfactual capability sweep) ==");
    let samples = study.run_whatif();
    println!("{}", report::render_whatif(&report::whatif_rows(&samples)));
    let (base, doh3) = study.run_whatif_webperf();
    println!(
        "{}",
        report::render_whatif_web(&report::whatif_web_rows(&base, &doh3))
    );
}

fn run_webperf(study: &Study) {
    println!("== web performance (§3.2) ==");
    let samples = study.run_webperf();
    let diffs = report::relative_to_baseline(&samples, doqlab_core::dox::DnsTransport::DoUdp);
    println!("{}", report::render_fig3(&diffs, "FCP"));
    println!("{}", report::render_fig3(&diffs, "PLT"));
    println!("{}", report::render_fig4(&report::fig4(&samples)));
}
