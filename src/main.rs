//! The `doqlab` command-line driver: run any campaign of the study and
//! print the paper-style report.
//!
//! ```sh
//! doqlab discovery
//! doqlab single-query --scale medium
//! doqlab webperf --scale quick --seed 7
//! doqlab all --scale quick
//! ```

use doqlab_core::measure::report;
use doqlab_core::Study;

fn usage() -> ! {
    eprintln!(
        "usage: doqlab <discovery|single-query|webperf|all> \
         [--scale quick|medium|paper] [--seed N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(command) = args.get(1) else { usage() };
    let mut seed = 2022u64;
    let mut scale = "quick".to_string();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].clone();
                i += 1;
            }
            _ => usage(),
        }
        i += 1;
    }
    let study = match scale.as_str() {
        "quick" => Study::quick(seed),
        "medium" => Study::medium(seed),
        "paper" => Study::paper(seed),
        _ => usage(),
    };

    match command.as_str() {
        "discovery" => run_discovery(&study),
        "single-query" => run_single_query(&study),
        "webperf" => run_webperf(&study),
        "all" => {
            run_discovery(&study);
            run_single_query(&study);
            run_webperf(&study);
        }
        _ => usage(),
    }
}

fn run_discovery(study: &Study) {
    println!("== discovery (§2) ==");
    let pop = study.scan_population(200);
    let r = study.run_discovery(&pop);
    println!(
        "probed {} hosts -> {} QUIC -> {} DoQ -> {} verified DoX\n\
         (paper: 1,216 DoQ -> 313 verified)\n",
        r.probed_hosts, r.quic_hosts, r.doq_resolvers, r.verified_dox
    );
}

fn run_single_query(study: &Study) {
    println!("== single query (§3.1) ==");
    let samples = study.run_single_query();
    println!("{}", report::render_table1(&report::table1(&samples)));
    println!("{}", report::render_fig2(&report::fig2(&samples)));
}

fn run_webperf(study: &Study) {
    println!("== web performance (§3.2) ==");
    let samples = study.run_webperf();
    let diffs = report::relative_to_baseline(&samples, doqlab_core::dox::DnsTransport::DoUdp);
    println!("{}", report::render_fig3(&diffs, "FCP"));
    println!("{}", report::render_fig3(&diffs, "PLT"));
    println!("{}", report::render_fig4(&report::fig4(&samples)));
}
