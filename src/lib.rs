//! `doqlab` — umbrella crate for the IMC'22 *"DNS Privacy with Speed?"*
//! reproduction. Re-exports [`doqlab_core`]; see that crate (and the
//! repository README) for the full API.

pub use doqlab_core::*;
