//! Property test for the failure taxonomy under outages that swallow a
//! reconnect attempt whole: when a blackhole outlives both the original
//! connection's SYN-retry budget and the replacement's, the unit must
//! terminate (no hang past its run deadline) and the verdict must be
//! [`FailureKind::HandshakeFail`] — neither connection ever reached a
//! usable session, whatever the schedule offsets were.
//!
//! TCP's SYN budget is 6 retries with exponential backoff from a 1 s
//! initial RTO (~127 s to exhaustion), so an outage of 300 s or more
//! covers the original handshake, the backoff, and the entire
//! replacement handshake for any backoff under a second.

use doqlab_dox::{DnsTransport, FailureKind};
use doqlab_measure::single_query::{run_unit_custom, SingleQueryCampaign, UnitOptions};
use doqlab_measure::{vantage_points, Scale};
use doqlab_resolver::synthesize_dox_population;
use doqlab_simnet::{Duration, ImpairmentSchedule, Simulator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn outage_spanning_the_reconnect_is_handshake_classified(
        outage_secs in 300u64..500,
        backoff_ms in 100u64..900,
        seed in 0u64..1_000,
    ) {
        let campaign = SingleQueryCampaign::new(Scale {
            resolvers: Some(1),
            repetitions: 1,
            threads: 1,
            ..Scale::quick()
        });
        let pop = synthesize_dox_population(1);
        let vps = vantage_points();
        let opts = UnitOptions {
            seed: Some(seed),
            impairment: Some(Box::new(move |start| {
                ImpairmentSchedule::new()
                    .with_outage(start, start + Duration::from_secs(outage_secs))
            })),
            query_deadline: None,
            reconnect_max: 1,
            reconnect_backoff: Duration::from_millis(backoff_ms),
            run_deadline: Duration::from_secs(outage_secs + 20),
            ..UnitOptions::default()
        };
        let mut sim = Simulator::arena();
        let out = run_unit_custom(
            &mut sim,
            &campaign,
            &vps[0],
            &pop[0],
            DnsTransport::DoTcp,
            0,
            &opts,
        );
        // The unit terminated with a verdict instead of hanging: both
        // handshakes died inside the outage, and neither ever
        // established, so the taxonomy says handshake failure.
        prop_assert!(out.sample.failed);
        prop_assert_eq!(out.failure, Some(FailureKind::HandshakeFail));
        prop_assert_eq!(out.reconnects, 1);
        prop_assert!(out.hs_done.is_none());
    }
}
