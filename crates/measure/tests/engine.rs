//! Determinism guarantees of the shared campaign engine (DESIGN.md §7):
//! for a fixed seed, campaign outputs are byte-identical regardless of
//! how many worker threads execute the unit grid. Samples carry floats,
//! so the comparison goes through their `Debug` rendering — identical
//! strings mean identical bits.

use doqlab_measure::impairments::run_impairments_campaign;
use doqlab_measure::mobility::run_mobility_campaign;
use doqlab_measure::single_query::run_single_query_campaign;
use doqlab_measure::webperf::run_webperf_campaign;
use doqlab_measure::whatif::run_whatif_campaign;
use doqlab_measure::{
    trace_single_query, ImpairmentsCampaign, MobilityCampaign, Scale, SingleQueryCampaign,
    WebperfCampaign, WhatifCampaign,
};
use doqlab_resolver::synthesize_dox_population;
use doqlab_telemetry::metrics::{self, Counter};
use doqlab_webperf::tranco_top10;

fn single_query_scale(threads: usize) -> Scale {
    Scale {
        resolvers: Some(3),
        repetitions: 2,
        threads,
        ..Scale::quick()
    }
}

fn webperf_scale(threads: usize) -> Scale {
    Scale {
        resolvers: Some(2),
        pages: Some(2),
        rounds: 1,
        loads_per_round: 1,
        threads,
        ..Scale::quick()
    }
}

#[test]
fn single_query_campaign_is_thread_count_invariant() {
    let pop = synthesize_dox_population(1);
    let mut renderings = Vec::new();
    for threads in [1, 4, 8] {
        let campaign = SingleQueryCampaign::new(single_query_scale(threads));
        let samples = run_single_query_campaign(&campaign, &pop);
        assert!(!samples.is_empty());
        renderings.push(format!("{samples:?}"));
    }
    assert_eq!(renderings[0], renderings[1], "1 thread vs 4 threads");
    assert_eq!(renderings[0], renderings[2], "1 thread vs 8 threads");
}

#[test]
fn webperf_campaign_is_thread_count_invariant() {
    let pop = synthesize_dox_population(1);
    let pages = tranco_top10();
    let mut renderings = Vec::new();
    for threads in [1, 4, 8] {
        let campaign = WebperfCampaign::new(webperf_scale(threads));
        let samples = run_webperf_campaign(&campaign, &pop, &pages);
        assert!(!samples.is_empty());
        renderings.push(format!("{samples:?}"));
    }
    assert_eq!(renderings[0], renderings[1], "1 thread vs 4 threads");
    assert_eq!(renderings[0], renderings[2], "1 thread vs 8 threads");
}

fn impairments_scale(threads: usize) -> Scale {
    Scale {
        resolvers: Some(2),
        repetitions: 1,
        threads,
        ..Scale::quick()
    }
}

#[test]
fn impairments_campaign_is_thread_count_invariant() {
    // The fault-injection sweep must be bit-identical across thread
    // counts and across repeated runs at a fixed seed: every stochastic
    // impairment decision flows through the unit's seeded RNG.
    let pop = synthesize_dox_population(1);
    let mut renderings = Vec::new();
    for threads in [1, 4, 8, 4] {
        let campaign = ImpairmentsCampaign::new(impairments_scale(threads));
        let samples = run_impairments_campaign(&campaign, &pop);
        assert!(!samples.is_empty());
        renderings.push(format!("{samples:?}"));
    }
    assert_eq!(renderings[0], renderings[1], "1 thread vs 4 threads");
    assert_eq!(renderings[0], renderings[2], "1 thread vs 8 threads");
    assert_eq!(renderings[1], renderings[3], "repeated 4-thread runs");
}

#[test]
fn mobility_campaign_is_thread_count_invariant() {
    // The mobility sweep drives rebinds mid-run and races failover
    // ladders, but must stay bit-identical across thread counts and
    // repeated runs at a fixed seed.
    let pop = synthesize_dox_population(1);
    let mut renderings = Vec::new();
    for threads in [1, 4, 8, 4] {
        let campaign = MobilityCampaign::new(impairments_scale(threads));
        let samples = run_mobility_campaign(&campaign, &pop);
        assert!(!samples.is_empty());
        renderings.push(format!("{samples:?}"));
    }
    assert_eq!(renderings[0], renderings[1], "1 thread vs 4 threads");
    assert_eq!(renderings[0], renderings[2], "1 thread vs 8 threads");
    assert_eq!(renderings[1], renderings[3], "repeated 4-thread runs");
}

#[test]
fn whatif_campaign_is_thread_count_invariant() {
    // The counterfactual sweep flips feature flags (0-RTT, TFO,
    // keepalive, DoH3) per regime but must stay bit-identical across
    // thread counts and repeated runs at a fixed seed.
    let pop = synthesize_dox_population(1);
    let mut renderings = Vec::new();
    for threads in [1, 4, 8, 4] {
        let campaign = WhatifCampaign::new(impairments_scale(threads));
        let samples = run_whatif_campaign(&campaign, &pop);
        assert!(!samples.is_empty());
        renderings.push(format!("{samples:?}"));
    }
    assert_eq!(renderings[0], renderings[1], "1 thread vs 4 threads");
    assert_eq!(renderings[0], renderings[2], "1 thread vs 8 threads");
    assert_eq!(renderings[1], renderings[3], "repeated 4-thread runs");
}

#[test]
fn whatif_telemetry_is_inert() {
    // The new 0-RTT / TFO / keepalive counters ride telemetry;
    // collecting them must not perturb the counterfactual samples.
    let pop = synthesize_dox_population(1);
    let campaign = WhatifCampaign::new(impairments_scale(4));
    metrics::set_enabled(false);
    let baseline = format!("{:?}", run_whatif_campaign(&campaign, &pop));

    metrics::set_enabled(true);
    metrics::reset();
    let with_metrics = format!("{:?}", run_whatif_campaign(&campaign, &pop));
    let snapshot = metrics::snapshot();
    metrics::set_enabled(false);

    assert_eq!(
        baseline, with_metrics,
        "metrics collection perturbed what-if samples"
    );
    // The sweep's regimes actually exercised the dormant capabilities.
    assert!(snapshot.counter(Counter::ZeroRttAccepted) > 0);
    assert!(snapshot.counter(Counter::TfoSynData) > 0);
    assert!(snapshot.counter(Counter::KeepaliveHonored) > 0);
}

#[test]
fn mobility_telemetry_is_inert() {
    // Path/migration events and failover counters ride telemetry;
    // collecting them must not perturb the mobile samples (qlog path
    // events stay observational).
    let pop = synthesize_dox_population(1);
    let campaign = MobilityCampaign::new(impairments_scale(4));
    metrics::set_enabled(false);
    let baseline = format!("{:?}", run_mobility_campaign(&campaign, &pop));

    metrics::set_enabled(true);
    metrics::reset();
    let with_metrics = format!("{:?}", run_mobility_campaign(&campaign, &pop));
    let snapshot = metrics::snapshot();
    metrics::set_enabled(false);

    assert_eq!(
        baseline, with_metrics,
        "metrics collection perturbed mobile samples"
    );
    let units = (campaign.scale.resolvers.unwrap() * campaign.regimes.len() * 5 * 6) as u64;
    assert_eq!(snapshot.counter(Counter::UnitsRun), units);
    // The sweep's failover regime actually raced rungs.
    assert!(snapshot.counter(Counter::FailoverRaced) > 0);
}

#[test]
fn impairments_telemetry_is_inert() {
    // Failure-taxonomy counters and reconnect counts ride telemetry;
    // collecting them must not perturb the samples.
    let pop = synthesize_dox_population(1);
    let campaign = ImpairmentsCampaign::new(impairments_scale(4));
    metrics::set_enabled(false);
    let baseline = format!("{:?}", run_impairments_campaign(&campaign, &pop));

    metrics::set_enabled(true);
    metrics::reset();
    let with_metrics = format!("{:?}", run_impairments_campaign(&campaign, &pop));
    let snapshot = metrics::snapshot();
    metrics::set_enabled(false);

    assert_eq!(
        baseline, with_metrics,
        "metrics collection perturbed impaired samples"
    );
    let units = (campaign.scale.resolvers.unwrap() * campaign.regimes.len() * 5 * 6) as u64;
    assert_eq!(snapshot.counter(Counter::UnitsRun), units);
}

#[test]
fn telemetry_does_not_change_campaign_output() {
    // The "provably inert" contract: with metrics collection on, a
    // campaign's samples are byte-identical to a run with telemetry
    // fully disabled, and the registry actually observed the units.
    let pop = synthesize_dox_population(1);
    let campaign = SingleQueryCampaign::new(single_query_scale(4));
    metrics::set_enabled(false);
    let baseline = format!("{:?}", run_single_query_campaign(&campaign, &pop));

    metrics::set_enabled(true);
    metrics::reset();
    let with_metrics = format!("{:?}", run_single_query_campaign(&campaign, &pop));
    let snapshot = metrics::snapshot();
    metrics::set_enabled(false);

    assert_eq!(
        baseline, with_metrics,
        "metrics collection perturbed samples"
    );
    let units = (campaign.scale.resolvers.unwrap() * campaign.scale.repetitions * 5 * 6) as u64;
    assert_eq!(snapshot.counter(Counter::UnitsRun), units);
}

#[test]
fn event_tracing_does_not_change_campaign_output() {
    // Event tracing captures one unit per transport; those traced
    // units must reproduce exactly the samples the untraced campaign
    // produced at the same coordinates (vp 0, resolver slot 0, rep 0).
    let pop = synthesize_dox_population(1);
    let campaign = SingleQueryCampaign::new(single_query_scale(1));
    let samples = run_single_query_campaign(&campaign, &pop);
    let run = trace_single_query(&campaign, &pop);
    for (transport, traced) in &run.samples {
        let plain = samples
            .iter()
            .find(|s| {
                s.vp == traced.vp && s.resolver == traced.resolver && s.transport == *transport
            })
            .expect("traced unit exists in the campaign grid");
        assert_eq!(
            format!("{traced:?}"),
            format!("{plain:?}"),
            "tracing perturbed the {transport:?} unit"
        );
    }
}

#[test]
fn seed_changes_campaign_output() {
    let pop = synthesize_dox_population(1);
    let base = SingleQueryCampaign::new(single_query_scale(4));
    let reseeded = SingleQueryCampaign {
        seed: base.seed ^ 1,
        ..base.clone()
    };
    let a = run_single_query_campaign(&base, &pop);
    let b = run_single_query_campaign(&reseeded, &pop);
    assert_ne!(format!("{a:?}"), format!("{b:?}"));
}
