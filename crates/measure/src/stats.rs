//! Estimators used throughout the evaluation: medians, percentiles and
//! empirical CDFs, plus the relative-difference transform of Fig. 3/4.

/// Median of a sample (NaNs are ignored). `None` when empty.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Linear-interpolated percentile in `[0, 100]` (NaNs ignored).
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs left"));
    let rank = (p / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(v[lo] + (v[hi] - v[lo]) * frac)
}

/// An empirical CDF.
#[derive(Debug, Clone)]
pub struct Cdf {
    /// Sorted sample.
    pub values: Vec<f64>,
}

impl Cdf {
    pub fn new(values: &[f64]) -> Cdf {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs left"));
        Cdf { values: v }
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// P(X <= x).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        let n = self.values.partition_point(|v| *v <= x);
        n as f64 / self.values.len() as f64
    }

    /// Quantile (inverse CDF) at `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        percentile(&self.values, q * 100.0)
    }
}

/// Sample the CDF at `n` evenly spaced probability points — the series
/// a figure plots.
pub fn cdf_points(values: &[f64], n: usize) -> Vec<(f64, f64)> {
    let cdf = Cdf::new(values);
    if cdf.is_empty() {
        return Vec::new();
    }
    (0..=n)
        .map(|i| {
            let q = i as f64 / n as f64;
            (cdf.quantile(q).expect("non-empty"), q)
        })
        .collect()
}

/// Relative difference in percent: `100 * (value - baseline) / baseline`
/// — the x-axis of Fig. 3 (protocol vs. DoUDP) and Fig. 4 (vs. DoQ).
pub fn relative_difference_pct(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        return f64::NAN;
    }
    100.0 * (value - baseline) / baseline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[7.0]), Some(7.0));
    }

    #[test]
    fn median_ignores_nan() {
        assert_eq!(median(&[1.0, f64::NAN, 3.0]), Some(2.0));
        assert_eq!(median(&[f64::NAN]), None);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(50.0));
        assert_eq!(percentile(&v, 50.0), Some(30.0));
        assert_eq!(percentile(&v, 25.0), Some(20.0));
        assert_eq!(percentile(&v, 80.0), Some(42.0));
    }

    #[test]
    fn cdf_fractions() {
        let cdf = Cdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(cdf.len(), 4);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let v: Vec<f64> = (0..100).map(|i| (i * 7 % 100) as f64).collect();
        let pts = cdf_points(&v, 20);
        assert_eq!(pts.len(), 21);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(pts[0].1, 0.0);
        assert_eq!(pts[20].1, 1.0);
    }

    #[test]
    fn relative_difference() {
        assert_eq!(relative_difference_pct(110.0, 100.0), 10.0);
        assert_eq!(relative_difference_pct(90.0, 100.0), -10.0);
        assert!(relative_difference_pct(1.0, 0.0).is_nan());
    }
}
