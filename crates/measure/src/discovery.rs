//! §2 — resolver discovery (the paper's ZMap scan + verification).
//!
//! Three stages, exactly like the paper:
//!
//! 1. **Scan**: probe candidate addresses on UDP 784/853/8853 with a
//!    QUIC Initial carrying the invalid version 0; a Version
//!    Negotiation response identifies QUIC support without creating
//!    server state.
//! 2. **Verify DoQ**: establish a QUIC connection offering the DoQ
//!    ALPN identifiers; success = DoQ resolver.
//! 3. **Protocol support** (the DNSPerf step): optimistically query
//!    each DoQ resolver over DoUDP/DoTCP/DoT/DoH; the intersection of
//!    all five is the verified DoX set.

use crate::engine;
use crate::Scale;
use doqlab_dnswire::{Message, Name, RecordType};
use doqlab_dox::{ClientConfig, DnsClientHost, DnsTransport};
use doqlab_netstack::quic::{PacketType, QuicPacket, VersionNegotiation};
use doqlab_resolver::{RecursionModel, ResolverHost, ScannedHost};
use doqlab_simnet::path::FixedPathModel;
use doqlab_simnet::{Ctx, Duration, Host, Ipv4Addr, Packet, SimTime, Simulator, SocketAddr};
use serde::Serialize;
use std::any::Any;

/// The discovery funnel result.
#[derive(Debug, Clone, Serialize, Default)]
pub struct DiscoveryReport {
    pub probed_hosts: usize,
    /// Hosts answering the version-0 probe on any DoQ port.
    pub quic_hosts: usize,
    /// Hosts completing a DoQ-ALPN handshake.
    pub doq_resolvers: usize,
    pub doudp_support: usize,
    pub dotcp_support: usize,
    pub dot_support: usize,
    pub doh_support: usize,
    /// Resolvers supporting every protocol.
    pub verified_dox: usize,
}

impl DiscoveryReport {
    /// Accumulate another report's counts (merging per-host funnels
    /// back into the campaign total).
    pub fn absorb(&mut self, other: &DiscoveryReport) {
        self.probed_hosts += other.probed_hosts;
        self.quic_hosts += other.quic_hosts;
        self.doq_resolvers += other.doq_resolvers;
        self.doudp_support += other.doudp_support;
        self.dotcp_support += other.dotcp_support;
        self.dot_support += other.dot_support;
        self.doh_support += other.doh_support;
        self.verified_dox += other.verified_dox;
    }
}

/// A host that fires one UDP datagram and records any response.
struct Prober {
    local: SocketAddr,
    target: SocketAddr,
    payload: Vec<u8>,
    response: Option<Vec<u8>>,
}

impl Host for Prober {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: Packet) {
        if self.response.is_none() {
            self.response = Some(pkt.payload.into_vec());
        }
    }
    fn on_wakeup(&mut self, _ctx: &mut Ctx<'_>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Prober {
    fn fire(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(Packet::udp(self.local, self.target, self.payload.clone()));
    }
}

/// The version-0 ZMap probe payload (a padded Initial with version 0).
fn probe_payload() -> Vec<u8> {
    let pkt = QuicPacket::new(
        PacketType::Initial,
        0,
        *b"zmapscan",
        *b"scansrc0",
        0,
        vec![0; 40],
    );
    let mut buf = Vec::new();
    pkt.encode(&mut buf);
    buf
}

/// Reset the arena to a fresh probe topology: one resolver host under
/// a fixed 15 ms path, seeded per scanned host.
fn reset_probe_sim(sim: &mut Simulator, host: &ScannedHost, server_id: u64) -> Ipv4Addr {
    sim.reset(
        server_id ^ 0x5CA9,
        Box::new(FixedPathModel::new(Duration::from_millis(15))),
    );
    let resolver = ResolverHost::new(host.server_config(server_id), RecursionModel::default());
    sim.add_host(Box::new(resolver), &[host.ip]);
    host.ip
}

/// Stage 1: does any DoQ port answer the version-0 probe with VN?
fn quic_probe(sim: &mut Simulator, host: &ScannedHost, server_id: u64, ports: &[u16]) -> bool {
    for &port in ports {
        let ip = reset_probe_sim(sim, host, server_id);
        let scanner_ip = Ipv4Addr::new(10, 200, 0, 1);
        let local = SocketAddr::new(scanner_ip, 61_000);
        let prober = Prober {
            local,
            target: SocketAddr::new(ip, port),
            payload: probe_payload(),
            response: None,
        };
        let pid = sim.add_host(Box::new(prober), &[scanner_ip]);
        sim.with_host::<Prober, _>(pid, |p, ctx| p.fire(ctx));
        sim.run_until(SimTime::from_secs(1));
        let prober = sim.host::<Prober>(pid);
        if let Some(resp) = &prober.response {
            if VersionNegotiation::decode(resp).is_some() {
                return true;
            }
        }
    }
    false
}

/// Stage 2/3: can we complete a DNS exchange over `transport`?
fn protocol_probe(
    sim: &mut Simulator,
    host: &ScannedHost,
    server_id: u64,
    transport: DnsTransport,
    port: u16,
) -> bool {
    let ip = reset_probe_sim(sim, host, server_id);
    let scanner_ip = Ipv4Addr::new(10, 200, 0, 1);
    let client = DnsClientHost::new(
        transport,
        SocketAddr::new(scanner_ip, 61_001),
        SocketAddr::new(ip, port),
        &ClientConfig::default(),
    );
    let cid = sim.add_host(Box::new(client), &[scanner_ip]);
    let q = Message::query(0x7357, Name::parse("example.com").unwrap(), RecordType::A);
    sim.with_host::<DnsClientHost, _>(cid, |c, ctx| c.start_with_query(ctx, &q));
    // Short verification timeout (under the DoUDP 5 s retry on purpose:
    // a silent resolver counts as unsupported).
    sim.run_until(SimTime::from_secs(4));
    !sim.host::<DnsClientHost>(cid).responses.is_empty()
}

fn scan_one(sim: &mut Simulator, host: &ScannedHost, server_id: u64) -> DiscoveryReport {
    let standard_ports = [853u16, 784, 8853];
    let mut report = DiscoveryReport {
        probed_hosts: 1,
        ..Default::default()
    };
    if !quic_probe(sim, host, server_id, &standard_ports) {
        return report;
    }
    report.quic_hosts = 1;
    // Verify DoQ on the first answering port.
    let port = host.quic_ports.first().copied().unwrap_or(853);
    if !protocol_probe(sim, host, server_id, DnsTransport::DoQ, port) {
        return report;
    }
    report.doq_resolvers = 1;
    let udp = protocol_probe(sim, host, server_id, DnsTransport::DoUdp, 53);
    let tcp = protocol_probe(sim, host, server_id, DnsTransport::DoTcp, 53);
    let dot = protocol_probe(sim, host, server_id, DnsTransport::DoT, 853);
    let doh = protocol_probe(sim, host, server_id, DnsTransport::DoH, 443);
    report.doudp_support = udp as usize;
    report.dotcp_support = tcp as usize;
    report.dot_support = dot as usize;
    report.doh_support = doh as usize;
    report.verified_dox = (udp && tcp && dot && doh) as usize;
    report
}

/// Run the whole funnel over a scan population: one unit per host,
/// scheduled by the work-stealing engine on per-worker simulator
/// arenas. The per-host server id is the host's position in the
/// population, so results don't depend on thread count.
pub fn run_discovery(population: &[ScannedHost]) -> DiscoveryReport {
    let reports = engine::run_units(
        engine::env_threads(Scale::default_threads()),
        population,
        Simulator::arena,
        |sim, host, i| scan_one(sim, host, 0x5CA_0000 + i as u64),
    );
    let mut report = DiscoveryReport::default();
    for r in &reports {
        report.absorb(r);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use doqlab_resolver::synthesize_scan_population;

    /// A scaled-down scan population with the same funnel structure.
    fn mini_population() -> Vec<ScannedHost> {
        let full = synthesize_scan_population(1, 30);
        // 20 full-DoX + 30 partial + the 30 non-DoQ QUIC hosts.
        let mut mini: Vec<ScannedHost> = Vec::new();
        mini.extend(full.iter().take(20).cloned());
        mini.extend(full.iter().skip(313).take(30).cloned());
        mini.extend(full.iter().skip(1216).take(30).cloned());
        mini
    }

    #[test]
    fn funnel_identifies_exactly_the_right_hosts() {
        let pop = mini_population();
        let report = run_discovery(&pop);
        assert_eq!(report.probed_hosts, 80);
        // All 80 run QUIC on some port.
        assert_eq!(report.quic_hosts, 80);
        // Only the 50 DoQ resolvers pass ALPN verification.
        assert_eq!(report.doq_resolvers, 50);
        // Exactly the 20 full-DoX hosts support everything.
        assert_eq!(report.verified_dox, 20);
        let expected_udp = pop
            .iter()
            .filter(|h| h.speaks_doq && h.supports_udp)
            .count();
        assert_eq!(report.doudp_support, expected_udp);
    }

    #[test]
    fn version_zero_probe_is_stateless() {
        let pop = mini_population();
        let host = &pop[0];
        let mut sim = Simulator::arena();
        assert!(quic_probe(&mut sim, host, 1, &[853]));
        // A host with no QUIC ports does not answer.
        let mut dark = host.clone();
        dark.quic_ports = vec![];
        dark.speaks_doq = false;
        assert!(!quic_probe(&mut sim, &dark, 2, &[853]));
    }
}
