//! Experiment reducers and renderers: turn campaign samples into the
//! paper's tables and figures (structured values plus plain-text
//! rendering; the bench binaries also dump them as JSON).

use crate::impairments::ImpairmentSample;
use crate::mobility::MobilitySample;
use crate::populations::PopulationSample;
use crate::single_query::SingleQuerySample;
use crate::stats::{cdf_points, median, percentile, relative_difference_pct, Cdf};
use crate::webperf::WebperfSample;
use crate::whatif::WhatifSample;
use doqlab_dox::DnsTransport;
use doqlab_simnet::geo::Continent;
use doqlab_telemetry::metrics::{self, Counter, Series};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// Summary of one latency histogram in the telemetry section.
#[derive(Debug, Clone, Serialize, Default)]
pub struct SeriesSummary {
    pub count: u64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p90_ms: f64,
    pub p99_ms: f64,
}

/// The "telemetry" report section: the merged per-worker counters and
/// latency histograms of a campaign run. Empty when telemetry was
/// disabled — campaign outputs themselves never depend on it.
#[derive(Debug, Clone, Serialize, Default)]
pub struct TelemetrySection {
    /// Dotted counter name -> value (zero counters elided).
    pub counters: BTreeMap<String, u64>,
    /// Histogram series name -> summary (quantiles are log-linear
    /// bucket floors, <=12.5% relative error).
    pub series: BTreeMap<String, SeriesSummary>,
}

impl TelemetrySection {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.series.is_empty()
    }
}

/// Snapshot the metrics registry into a report section.
pub fn telemetry_section() -> TelemetrySection {
    let snap = metrics::snapshot();
    let mut counters = BTreeMap::new();
    for c in Counter::ALL {
        let v = snap.counter(c);
        if v != 0 {
            counters.insert(c.name().to_string(), v);
        }
    }
    let mut series = BTreeMap::new();
    for s in Series::ALL {
        let h = snap.hist(s);
        if h.count() == 0 {
            continue;
        }
        let ms = |v: Option<u64>| v.map_or(f64::NAN, |n| n as f64 / 1e6);
        series.insert(
            s.name().to_string(),
            SeriesSummary {
                count: h.count(),
                mean_ms: h.mean().map_or(f64::NAN, |n| n / 1e6),
                p50_ms: ms(h.quantile(0.5)),
                p90_ms: ms(h.quantile(0.9)),
                p99_ms: ms(h.quantile(0.99)),
            },
        );
    }
    TelemetrySection { counters, series }
}

pub fn render_telemetry(t: &TelemetrySection) -> String {
    if t.is_empty() {
        return String::new();
    }
    let mut out = String::from("\nTelemetry\n");
    for (name, value) in &t.counters {
        out.push_str(&format!("{name:<28}{value:>12}\n"));
    }
    if !t.series.is_empty() {
        out.push_str(&format!(
            "{:<28}{:>8}{:>10}{:>10}{:>10}{:>10}\n",
            "series (ms)", "count", "mean", "p50", "p90", "p99"
        ));
        for (name, s) in &t.series {
            out.push_str(&format!(
                "{:<28}{:>8}{:>10.2}{:>10.2}{:>10.2}{:>10.2}\n",
                name, s.count, s.mean_ms, s.p50_ms, s.p90_ms, s.p99_ms
            ));
        }
    }
    out
}

/// Table-1 equivalent: median per-phase sizes and sample counts.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// protocol name -> (total, hs c->r, hs r->c, query, response).
    pub sizes: BTreeMap<String, [f64; 5]>,
    pub sample_counts: BTreeMap<String, usize>,
}

pub fn table1(samples: &[SingleQuerySample]) -> Table1 {
    let mut sizes = BTreeMap::new();
    let mut counts = BTreeMap::new();
    for t in DnsTransport::ALL {
        let of_t: Vec<&SingleQuerySample> = samples
            .iter()
            .filter(|s| s.transport == t && !s.failed)
            .collect();
        let col = |f: fn(&SingleQuerySample) -> f64| {
            median(&of_t.iter().map(|s| f(s)).collect::<Vec<_>>()).unwrap_or(f64::NAN)
        };
        sizes.insert(
            t.name().to_string(),
            [
                col(|s| s.bytes.total() as f64),
                col(|s| s.bytes.handshake_c2r as f64),
                col(|s| s.bytes.handshake_r2c as f64),
                col(|s| s.bytes.query_c2r as f64),
                col(|s| s.bytes.response_r2c as f64),
            ],
        );
        counts.insert(t.name().to_string(), of_t.len());
    }
    Table1 {
        sizes,
        sample_counts: counts,
    }
}

pub fn render_table1(t: &Table1) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28}{:>8}{:>8}{:>8}{:>8}{:>8}\n",
        "Median single-query sizes", "DoUDP", "DoTCP", "DoQ", "DoH", "DoT"
    ));
    let rows = [
        ("Total", 0usize),
        ("Handshake C->R", 1),
        ("Handshake R->C", 2),
        ("DNS Query", 3),
        ("DNS Response", 4),
    ];
    let order = ["DoUDP", "DoTCP", "DoQ", "DoH", "DoT"];
    for (label, idx) in rows {
        out.push_str(&format!("{label:<28}"));
        for name in order {
            let v = t.sizes[name][idx];
            if v.is_nan() || v == 0.0 {
                out.push_str(&format!("{:>8}", "-"));
            } else {
                out.push_str(&format!("{v:>8.0}"));
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<28}", "Samples"));
    for name in order {
        out.push_str(&format!("{:>8}", t.sample_counts[name]));
    }
    out.push('\n');
    out
}

/// Fig. 2 equivalent: median handshake / resolve time per protocol,
/// total and per vantage-point continent.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2 {
    /// row label ("Total" or continent code) -> protocol -> median ms.
    pub handshake_ms: BTreeMap<String, BTreeMap<String, f64>>,
    pub resolve_ms: BTreeMap<String, BTreeMap<String, f64>>,
}

pub fn fig2(samples: &[SingleQuerySample]) -> Fig2 {
    let mut handshake = BTreeMap::new();
    let mut resolve = BTreeMap::new();
    type SampleFilter = Box<dyn Fn(&SingleQuerySample) -> bool>;
    let mut rows: Vec<(String, SampleFilter)> = vec![("Total".to_string(), Box::new(|_| true))];
    for c in Continent::ALL {
        rows.push((c.code().to_string(), Box::new(move |s| s.vp_continent == c)));
    }
    for (label, filt) in rows {
        let mut hs_row = BTreeMap::new();
        let mut rs_row = BTreeMap::new();
        for t in DnsTransport::ALL {
            let hs: Vec<f64> = samples
                .iter()
                .filter(|s| s.transport == t && filt(s))
                .filter_map(|s| s.handshake_ms)
                .collect();
            let rs: Vec<f64> = samples
                .iter()
                .filter(|s| s.transport == t && filt(s))
                .filter_map(|s| s.resolve_ms)
                .collect();
            if let Some(m) = median(&hs) {
                hs_row.insert(t.name().to_string(), m);
            }
            if let Some(m) = median(&rs) {
                rs_row.insert(t.name().to_string(), m);
            }
        }
        handshake.insert(label.clone(), hs_row);
        resolve.insert(label, rs_row);
    }
    Fig2 {
        handshake_ms: handshake,
        resolve_ms: resolve,
    }
}

pub fn render_fig2(f: &Fig2) -> String {
    let mut out = String::new();
    let order = ["Total", "EU", "AS", "NA", "AF", "OC", "SA"];
    for (title, table) in [
        ("Handshake time (ms, median)", &f.handshake_ms),
        ("Resolve time (ms, median)", &f.resolve_ms),
    ] {
        out.push_str(&format!("\n{title}\n"));
        out.push_str(&format!("{:<8}", "VP"));
        for t in DnsTransport::ALL {
            out.push_str(&format!("{:>9}", t.name()));
        }
        out.push('\n');
        for row in order {
            let Some(cols) = table.get(row) else { continue };
            out.push_str(&format!("{row:<8}"));
            for t in DnsTransport::ALL {
                match cols.get(t.name()) {
                    Some(v) => out.push_str(&format!("{v:>9.1}")),
                    None => out.push_str(&format!("{:>9}", "-")),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// §3 overview: protocol version shares and feature observations.
#[derive(Debug, Clone, Serialize, Default)]
pub struct Overview {
    /// QUIC version -> share of DoQ measurements.
    pub quic_version_shares: BTreeMap<String, f64>,
    /// DoQ ALPN -> share.
    pub doq_alpn_shares: BTreeMap<String, f64>,
    /// Fraction of encrypted-transport measurements on TLS 1.3.
    pub tls13_share: f64,
    /// Fraction of measured (second) connections that resumed.
    pub resumption_share: f64,
    /// Fraction where 0-RTT was accepted.
    pub zero_rtt_share: f64,
}

pub fn overview(samples: &[SingleQuerySample]) -> Overview {
    let doq: Vec<&SingleQuerySample> = samples
        .iter()
        .filter(|s| s.transport == DnsTransport::DoQ && !s.failed)
        .collect();
    let mut quic_version_shares = BTreeMap::new();
    let mut doq_alpn_shares = BTreeMap::new();
    if !doq.is_empty() {
        let mut vcount: HashMap<String, usize> = HashMap::new();
        let mut acount: HashMap<String, usize> = HashMap::new();
        for s in &doq {
            if let Some(v) = s.metadata.quic_version {
                let name = match v {
                    1 => "v1".to_string(),
                    v if v & 0xFF00_0000 == 0xFF00_0000 => {
                        format!("draft-{}", v & 0xFF)
                    }
                    v => format!("{v:#x}"),
                };
                *vcount.entry(name).or_default() += 1;
            }
            if let Some(a) = &s.metadata.doq_alpn {
                *acount.entry(a.clone()).or_default() += 1;
            }
        }
        for (k, v) in vcount {
            quic_version_shares.insert(k, v as f64 / doq.len() as f64);
        }
        for (k, v) in acount {
            doq_alpn_shares.insert(k, v as f64 / doq.len() as f64);
        }
    }
    let encrypted: Vec<&SingleQuerySample> = samples
        .iter()
        .filter(|s| s.transport.is_encrypted() && !s.failed)
        .collect();
    let frac = |pred: &dyn Fn(&&&SingleQuerySample) -> bool| {
        if encrypted.is_empty() {
            0.0
        } else {
            encrypted.iter().filter(|s| pred(s)).count() as f64 / encrypted.len() as f64
        }
    };
    Overview {
        quic_version_shares,
        doq_alpn_shares,
        tls13_share: frac(&|s| s.metadata.tls13 == Some(true)),
        resumption_share: if doq.is_empty() {
            0.0
        } else {
            doq.iter().filter(|s| s.metadata.resumed).count() as f64 / doq.len() as f64
        },
        zero_rtt_share: frac(&|s| s.metadata.zero_rtt),
    }
}

/// Relative PLT/FCP differences vs. a baseline protocol, per
/// [vantage point : resolver : page] group (Fig. 3 pairs protocol
/// medians within a group).
#[derive(Debug, Clone, Serialize)]
pub struct RelativeDiffs {
    /// protocol -> relative differences in percent.
    pub fcp: BTreeMap<String, Vec<f64>>,
    pub plt: BTreeMap<String, Vec<f64>>,
}

pub fn relative_to_baseline(samples: &[WebperfSample], baseline: DnsTransport) -> RelativeDiffs {
    // Group by (vp, resolver, page, round).
    let mut groups: HashMap<(usize, usize, usize, usize), Vec<&WebperfSample>> = HashMap::new();
    for s in samples.iter().filter(|s| !s.failed) {
        groups
            .entry((s.vp, s.resolver, s.page, s.round))
            .or_default()
            .push(s);
    }
    let mut fcp: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut plt: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for (_, group) in groups {
        let Some(base) = group.iter().find(|s| s.transport == baseline) else {
            continue;
        };
        for s in &group {
            if s.transport == baseline {
                continue;
            }
            fcp.entry(s.transport.name().to_string())
                .or_default()
                .push(relative_difference_pct(s.fcp_ms, base.fcp_ms));
            plt.entry(s.transport.name().to_string())
                .or_default()
                .push(relative_difference_pct(s.plt_ms, base.plt_ms));
        }
    }
    RelativeDiffs { fcp, plt }
}

/// Fig. 3 rendering: CDF series of relative differences vs. DoUDP.
pub fn render_fig3(diffs: &RelativeDiffs, metric: &str) -> String {
    let table = if metric == "FCP" {
        &diffs.fcp
    } else {
        &diffs.plt
    };
    let mut out = format!("\nCDF of relative {metric} difference vs DoUDP (%)\n");
    out.push_str(&format!("{:<10}", "quantile"));
    let protos: Vec<&String> = table.keys().collect();
    for p in &protos {
        out.push_str(&format!("{p:>9}"));
    }
    out.push('\n');
    for q in [0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.8, 0.9] {
        out.push_str(&format!("p{:<9.0}", q * 100.0));
        for p in &protos {
            let cdf = Cdf::new(&table[*p]);
            match cdf.quantile(q) {
                Some(v) => out.push_str(&format!("{v:>8.1}%")),
                None => out.push_str(&format!("{:>9}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Fig. 4 cell: one [vantage point x page] comparison against DoQ.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Cell {
    pub vp: String,
    pub page: String,
    pub avg_dns_queries: usize,
    /// Median relative PLT of DoUDP vs DoQ (negative = DoUDP faster).
    pub doudp_rel_median_pct: f64,
    /// Median relative PLT of DoH vs DoQ (positive = DoQ faster).
    pub doh_rel_median_pct: f64,
    /// Fraction of pairs where the DoQ load was faster than DoH.
    pub doq_faster_than_doh: f64,
    pub pairs: usize,
}

/// Fig. 4: per [vp x page] relative PLT CDFs with DoQ as baseline.
pub fn fig4(samples: &[WebperfSample]) -> Vec<Fig4Cell> {
    let mut cells = Vec::new();
    let mut keys: Vec<(usize, Continent, usize, String, usize)> = Vec::new();
    for s in samples {
        let key = (
            s.vp,
            s.vp_continent,
            s.page,
            s.page_name.clone(),
            s.page_dns_queries,
        );
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    keys.sort_by_key(|k| (k.0, k.2));
    for (vp, continent, page, page_name, queries) in keys {
        let subset: Vec<&WebperfSample> = samples
            .iter()
            .filter(|s| s.vp == vp && s.page == page && !s.failed)
            .collect();
        let mut groups: HashMap<(usize, usize), Vec<&WebperfSample>> = HashMap::new();
        for s in &subset {
            groups.entry((s.resolver, s.round)).or_default().push(s);
        }
        let mut udp_rel = Vec::new();
        let mut doh_rel = Vec::new();
        let mut doq_faster = 0usize;
        let mut pairs = 0usize;
        for (_, group) in groups {
            let doq = group.iter().find(|s| s.transport == DnsTransport::DoQ);
            let udp = group.iter().find(|s| s.transport == DnsTransport::DoUdp);
            let doh = group.iter().find(|s| s.transport == DnsTransport::DoH);
            if let (Some(doq), Some(udp)) = (doq, udp) {
                udp_rel.push(relative_difference_pct(udp.plt_ms, doq.plt_ms));
            }
            if let (Some(doq), Some(doh)) = (doq, doh) {
                doh_rel.push(relative_difference_pct(doh.plt_ms, doq.plt_ms));
                pairs += 1;
                if doq.plt_ms < doh.plt_ms {
                    doq_faster += 1;
                }
            }
        }
        cells.push(Fig4Cell {
            vp: continent.code().to_string(),
            page: page_name,
            avg_dns_queries: queries,
            doudp_rel_median_pct: median(&udp_rel).unwrap_or(f64::NAN),
            doh_rel_median_pct: median(&doh_rel).unwrap_or(f64::NAN),
            doq_faster_than_doh: if pairs == 0 {
                f64::NAN
            } else {
                doq_faster as f64 / pairs as f64
            },
            pairs,
        });
    }
    cells
}

pub fn render_fig4(cells: &[Fig4Cell]) -> String {
    let mut out = String::from(
        "\nFig.4: PLT relative to DoQ per [vantage point x page]\n\
         (DoUDP% < 0 means unencrypted DNS is faster; DoH% > 0 means DoQ is faster)\n",
    );
    out.push_str(&format!(
        "{:<4}{:<18}{:>4}{:>10}{:>10}{:>12}{:>7}\n",
        "VP", "page", "#q", "DoUDP%", "DoH%", "DoQ<DoH", "pairs"
    ));
    for c in cells {
        out.push_str(&format!(
            "{:<4}{:<18}{:>4}{:>9.1}%{:>9.1}%{:>11.0}%{:>7}\n",
            c.vp,
            c.page,
            c.avg_dns_queries,
            c.doudp_rel_median_pct,
            c.doh_rel_median_pct,
            c.doq_faster_than_doh * 100.0,
            c.pairs
        ));
    }
    out
}

/// The headline claims of the abstract / §5.
///
/// The single-query percentages use the paper's formula: the
/// improvement/shortfall as a fraction of the *slower* protocol's time
/// (1 RTT vs 2 RTT -> "~33% faster than DoT"; 2 RTT vs 1 RTT -> "falls
/// short of DoUDP by ~50%"; 3 RTT -> "~66%").
#[derive(Debug, Clone, Serialize)]
pub struct Headline {
    /// DoQ improvement over DoT/DoH: (t_dot - t_doq) / t_dot.
    pub doq_vs_dot_single_query_pct: f64,
    pub doq_vs_doh_single_query_pct: f64,
    /// DoUDP's advantage over DoQ: (t_doq - t_udp) / t_doq (paper ~50%).
    pub doq_vs_doudp_single_query_pct: f64,
    /// Same for DoT and DoH (paper ~66%).
    pub dot_vs_doudp_single_query_pct: f64,
    /// Median PLT cost of DoQ vs DoUDP on the simplest page (paper: up
    /// to ~10%).
    pub doq_vs_doudp_simple_page_pct: f64,
    /// ... and on the most complex page (paper: ~2%).
    pub doq_vs_doudp_complex_page_pct: f64,
    /// Median PLT gain of DoQ vs DoH on the simplest page (paper: up to
    /// ~10%).
    pub doq_vs_doh_simple_page_pct: f64,
}

pub fn headline(sq: &[SingleQuerySample], web: &[WebperfSample]) -> Headline {
    let total_ms = |t: DnsTransport| {
        median(
            &sq.iter()
                .filter(|s| s.transport == t && !s.failed)
                .filter_map(|s| Some(s.handshake_ms.unwrap_or(0.0) + s.resolve_ms?))
                .collect::<Vec<_>>(),
        )
        .unwrap_or(f64::NAN)
    };
    let doq = total_ms(DnsTransport::DoQ);
    let dot = total_ms(DnsTransport::DoT);
    let doh = total_ms(DnsTransport::DoH);
    let udp = total_ms(DnsTransport::DoUdp);
    let cells = fig4(web);
    let page_stat = |name: &str, f: &dyn Fn(&Fig4Cell) -> f64| {
        let vals: Vec<f64> = cells.iter().filter(|c| c.page == name).map(f).collect();
        median(&vals).unwrap_or(f64::NAN)
    };
    Headline {
        doq_vs_dot_single_query_pct: 100.0 * (dot - doq) / dot,
        doq_vs_doh_single_query_pct: 100.0 * (doh - doq) / doh,
        doq_vs_doudp_single_query_pct: 100.0 * (doq - udp) / doq,
        dot_vs_doudp_single_query_pct: 100.0 * (dot - udp) / dot,
        doq_vs_doudp_simple_page_pct: -page_stat("wikipedia.org", &|c| c.doudp_rel_median_pct),
        doq_vs_doudp_complex_page_pct: -page_stat("youtube.com", &|c| c.doudp_rel_median_pct),
        doq_vs_doh_simple_page_pct: page_stat("wikipedia.org", &|c| c.doh_rel_median_pct),
    }
}

/// Plain-text table with CDF points for plotting (used by figure
/// binaries to emit machine-readable series).
pub fn cdf_series(values: &[f64], points: usize) -> Vec<(f64, f64)> {
    cdf_points(values, points)
}

/// One cell of the impairments report: a regime x transport slice of
/// the fault-injection sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ImpairmentRow {
    pub regime: String,
    pub transport: String,
    pub units: usize,
    pub failed: usize,
    /// Replacement connections dialed across the cell's units.
    pub reconnects: u64,
    /// Failure-taxonomy name -> count (empty when nothing failed).
    pub failure_kinds: BTreeMap<String, usize>,
    /// Resolve-time CDF quantiles (p10, p50, p90, p99) over the cell's
    /// successful units, in milliseconds.
    pub resolve_ms: [Option<f64>; 4],
}

/// Reduce the fault-injection sweep to per-regime, per-transport rows
/// (regime order preserved, transports in `DnsTransport::ALL` order).
pub fn impairment_rows(samples: &[ImpairmentSample]) -> Vec<ImpairmentRow> {
    let mut regimes: Vec<(usize, String)> = Vec::new();
    for s in samples {
        if !regimes.iter().any(|(i, _)| *i == s.regime) {
            regimes.push((s.regime, s.regime_name.clone()));
        }
    }
    regimes.sort_by_key(|(i, _)| *i);
    let mut rows = Vec::new();
    for (regime, name) in regimes {
        for t in DnsTransport::ALL {
            let cell: Vec<&ImpairmentSample> = samples
                .iter()
                .filter(|s| s.regime == regime && s.sample.transport == t)
                .collect();
            if cell.is_empty() {
                continue;
            }
            let failed = cell.iter().filter(|s| s.sample.failed).count();
            let mut failure_kinds = BTreeMap::new();
            for s in &cell {
                if let Some(k) = s.failure {
                    *failure_kinds.entry(k.name().to_string()).or_insert(0) += 1;
                }
            }
            let resolves: Vec<f64> = cell.iter().filter_map(|s| s.sample.resolve_ms).collect();
            let q = |p: f64| percentile(&resolves, p);
            rows.push(ImpairmentRow {
                regime: name.clone(),
                transport: t.name().to_string(),
                units: cell.len(),
                failed,
                reconnects: cell.iter().map(|s| s.reconnects as u64).sum(),
                failure_kinds,
                resolve_ms: [q(10.0), q(50.0), q(90.0), q(99.0)],
            });
        }
    }
    rows
}

/// Render the impairments report: per regime, a transport table of
/// failure rates and resolve-time quantiles, with a failure-kind
/// breakdown where anything failed.
pub fn render_impairments(rows: &[ImpairmentRow]) -> String {
    let mut out = String::new();
    let mut current = None::<&str>;
    for row in rows {
        if current != Some(row.regime.as_str()) {
            current = Some(row.regime.as_str());
            out.push_str(&format!(
                "\nregime {:<14}{:>7}{:>7}{:>6}{:>9}{:>9}{:>9}{:>9}\n",
                row.regime, "units", "fail%", "reconn", "p10 ms", "p50 ms", "p90 ms", "p99 ms"
            ));
        }
        out.push_str(&format!(
            "  {:<19}{:>7}{:>6.1}%{:>6}",
            row.transport,
            row.units,
            100.0 * row.failed as f64 / row.units.max(1) as f64,
            row.reconnects,
        ));
        for q in row.resolve_ms {
            match q {
                Some(v) => out.push_str(&format!("{v:>9.1}")),
                None => out.push_str(&format!("{:>9}", "-")),
            }
        }
        out.push('\n');
        if !row.failure_kinds.is_empty() {
            let kinds: Vec<String> = row
                .failure_kinds
                .iter()
                .map(|(k, n)| format!("{k} x{n}"))
                .collect();
            out.push_str(&format!("  {:<19}  {}\n", "", kinds.join(", ")));
        }
    }
    out
}

/// One cell of the mobility report: a regime x transport slice of the
/// mobility sweep.
#[derive(Debug, Clone, Serialize)]
pub struct MobilityRow {
    pub regime: String,
    pub transport: String,
    pub units: usize,
    /// Units that produced a response despite the rebind schedule.
    pub survived: usize,
    /// Replacement connections dialed across the cell's units.
    pub reconnects: u64,
    /// Address rebinds applied across the cell's units.
    pub rebinds: u64,
    /// Failure-taxonomy name -> count (empty when nothing failed).
    pub failure_kinds: BTreeMap<String, usize>,
    /// Switchover-latency quantiles (p50, p90) over units that answered
    /// after their first rebind, in milliseconds.
    pub switchover_ms: [Option<f64>; 2],
    /// Bytes spent on dead primaries and losing failover rungs, across
    /// the cell's units.
    pub wasted_bytes: u64,
    /// Winning transport name -> count, for units decided by a
    /// cross-transport failover race.
    pub winners: BTreeMap<String, usize>,
}

/// Reduce the mobility sweep to per-regime, per-transport rows (regime
/// order preserved, transports in `DnsTransport::ALL` order).
pub fn mobility_rows(samples: &[MobilitySample]) -> Vec<MobilityRow> {
    let mut regimes: Vec<(usize, String)> = Vec::new();
    for s in samples {
        if !regimes.iter().any(|(i, _)| *i == s.regime) {
            regimes.push((s.regime, s.regime_name.clone()));
        }
    }
    regimes.sort_by_key(|(i, _)| *i);
    let mut rows = Vec::new();
    for (regime, name) in regimes {
        for t in DnsTransport::ALL {
            let cell: Vec<&MobilitySample> = samples
                .iter()
                .filter(|s| s.regime == regime && s.sample.transport == t)
                .collect();
            if cell.is_empty() {
                continue;
            }
            let mut failure_kinds = BTreeMap::new();
            for s in &cell {
                if let Some(k) = s.failure {
                    *failure_kinds.entry(k.name().to_string()).or_insert(0) += 1;
                }
            }
            let mut winners = BTreeMap::new();
            for s in &cell {
                if let Some(w) = s.winner {
                    *winners.entry(w.name().to_string()).or_insert(0) += 1;
                }
            }
            let switch: Vec<f64> = cell.iter().filter_map(|s| s.switchover_ms).collect();
            let q = |p: f64| percentile(&switch, p);
            rows.push(MobilityRow {
                regime: name.clone(),
                transport: t.name().to_string(),
                units: cell.len(),
                survived: cell.iter().filter(|s| s.survived).count(),
                reconnects: cell.iter().map(|s| s.reconnects as u64).sum(),
                rebinds: cell.iter().map(|s| s.rebinds_applied as u64).sum(),
                failure_kinds,
                switchover_ms: [q(50.0), q(90.0)],
                wasted_bytes: cell.iter().map(|s| s.wasted_bytes).sum(),
                winners,
            });
        }
    }
    rows
}

/// Render the mobility report: per regime, a transport table of
/// survival rates, switchover-latency quantiles and recovery cost,
/// with failure-kind and winning-transport breakdowns.
pub fn render_mobility(rows: &[MobilityRow]) -> String {
    let mut out = String::new();
    let mut current = None::<&str>;
    for row in rows {
        if current != Some(row.regime.as_str()) {
            current = Some(row.regime.as_str());
            out.push_str(&format!(
                "\nregime {:<16}{:>7}{:>9}{:>8}{:>9}{:>10}{:>10}{:>10}\n",
                row.regime,
                "units",
                "survive%",
                "reconn",
                "rebinds",
                "sw p50ms",
                "sw p90ms",
                "waste KB"
            ));
        }
        out.push_str(&format!(
            "  {:<21}{:>7}{:>8.1}%{:>8}{:>9}",
            row.transport,
            row.units,
            100.0 * row.survived as f64 / row.units.max(1) as f64,
            row.reconnects,
            row.rebinds,
        ));
        for q in row.switchover_ms {
            match q {
                Some(v) => out.push_str(&format!("{v:>10.1}")),
                None => out.push_str(&format!("{:>10}", "-")),
            }
        }
        out.push_str(&format!("{:>10.1}\n", row.wasted_bytes as f64 / 1024.0));
        let mut notes: Vec<String> = Vec::new();
        if !row.failure_kinds.is_empty() {
            notes.extend(row.failure_kinds.iter().map(|(k, n)| format!("{k} x{n}")));
        }
        if !row.winners.is_empty() {
            notes.extend(row.winners.iter().map(|(w, n)| format!("won by {w} x{n}")));
        }
        if !notes.is_empty() {
            out.push_str(&format!("  {:<21}  {}\n", "", notes.join(", ")));
        }
    }
    out
}

/// One cell of the what-if report: a regime x transport slice of the
/// counterfactual sweep, with the paired delta against the reference
/// (first) regime's twin units. The doh3 regime's DoH3 units fold into
/// the DoH column — they are the same nominal units, run over HTTP/3.
#[derive(Debug, Clone, Serialize)]
pub struct WhatifRow {
    pub regime: String,
    pub transport: String,
    pub units: usize,
    pub failed: usize,
    /// Units whose measured connection accepted 0-RTT early data.
    pub zero_rtt: usize,
    /// Units that actually ran DoH3 (doh3-regime DoH cells).
    pub ran_doh3: usize,
    /// Failure-taxonomy name -> count (empty when nothing failed).
    pub failure_kinds: BTreeMap<String, usize>,
    /// Total-time (handshake + resolve) quantiles (p50, p90) over the
    /// cell's successful units, in milliseconds.
    pub total_ms: [Option<f64>; 2],
    /// Median per-unit total-time delta against the reference regime's
    /// twin unit (regime minus reference; negative is faster), over
    /// pairs where both answered. `None` on the reference row itself.
    pub delta_ms: Option<f64>,
}

/// First packet to answered query, `None` when the unit never answered.
fn whatif_total_ms(s: &SingleQuerySample) -> Option<f64> {
    s.resolve_ms.map(|r| s.handshake_ms.unwrap_or(0.0) + r)
}

/// The transport a what-if unit nominally measures: DoH3 samples are
/// DoH units the doh3 regime upgraded, so they pair and report as DoH.
fn whatif_nominal(t: DnsTransport) -> DnsTransport {
    if t == DnsTransport::DoH3 {
        DnsTransport::DoH
    } else {
        t
    }
}

/// Reduce the counterfactual sweep to per-regime, per-transport rows
/// (regime order preserved, transports in `DnsTransport::ALL` order).
/// Regime cells pair positionally with the first regime's cells: the
/// campaign reuses unit seeds across regimes and the grid emits every
/// regime's units in the same (vp, resolver, transport, rep) sub-order,
/// so zipping slices pairs each unit with its baseline twin.
pub fn whatif_rows(samples: &[WhatifSample]) -> Vec<WhatifRow> {
    let mut regimes: Vec<(usize, String)> = Vec::new();
    for s in samples {
        if !regimes.iter().any(|(i, _)| *i == s.regime) {
            regimes.push((s.regime, s.regime_name.clone()));
        }
    }
    regimes.sort_by_key(|(i, _)| *i);
    let reference = regimes.first().map(|(i, _)| *i);
    let mut rows = Vec::new();
    for (regime, name) in &regimes {
        for t in DnsTransport::ALL {
            let cell: Vec<&WhatifSample> = samples
                .iter()
                .filter(|s| s.regime == *regime && whatif_nominal(s.sample.transport) == t)
                .collect();
            if cell.is_empty() {
                continue;
            }
            let mut failure_kinds = BTreeMap::new();
            for s in &cell {
                if let Some(k) = s.failure {
                    *failure_kinds.entry(k.name().to_string()).or_insert(0) += 1;
                }
            }
            let totals: Vec<f64> = cell
                .iter()
                .filter_map(|s| whatif_total_ms(&s.sample))
                .collect();
            let q = |p: f64| percentile(&totals, p);
            let delta_ms = match reference {
                Some(r) if *regime != r => {
                    let base: Vec<&WhatifSample> = samples
                        .iter()
                        .filter(|s| s.regime == r && whatif_nominal(s.sample.transport) == t)
                        .collect();
                    let deltas: Vec<f64> = cell
                        .iter()
                        .zip(&base)
                        .filter_map(|(s, b)| {
                            Some(whatif_total_ms(&s.sample)? - whatif_total_ms(&b.sample)?)
                        })
                        .collect();
                    median(&deltas)
                }
                _ => None,
            };
            rows.push(WhatifRow {
                regime: name.clone(),
                transport: t.name().to_string(),
                units: cell.len(),
                failed: cell.iter().filter(|s| s.sample.failed).count(),
                zero_rtt: cell.iter().filter(|s| s.sample.metadata.zero_rtt).count(),
                ran_doh3: cell
                    .iter()
                    .filter(|s| s.sample.transport == DnsTransport::DoH3)
                    .count(),
                failure_kinds,
                total_ms: [q(50.0), q(90.0)],
                delta_ms,
            });
        }
    }
    rows
}

/// Render the what-if report: per regime, a transport table of total
/// query times and the paired delta against the baseline regime, with
/// 0-RTT uptake and failure-kind breakdowns.
pub fn render_whatif(rows: &[WhatifRow]) -> String {
    let mut out = String::new();
    let mut current = None::<&str>;
    for row in rows {
        if current != Some(row.regime.as_str()) {
            current = Some(row.regime.as_str());
            out.push_str(&format!(
                "\nregime {:<16}{:>7}{:>7}{:>7}{:>9}{:>9}{:>10}\n",
                row.regime, "units", "fail%", "0-rtt", "p50 ms", "p90 ms", "delta ms"
            ));
        }
        out.push_str(&format!(
            "  {:<21}{:>7}{:>6.1}%{:>7}",
            row.transport,
            row.units,
            100.0 * row.failed as f64 / row.units.max(1) as f64,
            row.zero_rtt,
        ));
        for q in row.total_ms {
            match q {
                Some(v) => out.push_str(&format!("{v:>9.1}")),
                None => out.push_str(&format!("{:>9}", "-")),
            }
        }
        match row.delta_ms {
            Some(v) => out.push_str(&format!("{v:>+10.1}\n")),
            None => out.push_str(&format!("{:>10}\n", "-")),
        }
        let mut notes: Vec<String> = Vec::new();
        if row.ran_doh3 > 0 {
            notes.push(format!("ran DoH3 x{}", row.ran_doh3));
        }
        if !row.failure_kinds.is_empty() {
            notes.extend(row.failure_kinds.iter().map(|(k, n)| format!("{k} x{n}")));
        }
        if !notes.is_empty() {
            out.push_str(&format!("  {:<21}  {}\n", "", notes.join(", ")));
        }
    }
    out
}

/// One row of the what-if Web comparison: the DoH column of the Web
/// campaign re-run over HTTP/3, per page, paired unit by unit.
#[derive(Debug, Clone, Serialize)]
pub struct WhatifWebRow {
    pub page: String,
    /// Paired (DoH, DoH3) units for the page.
    pub units: usize,
    /// Pairs where either world's loads failed (excluded from deltas).
    pub failed_pairs: usize,
    /// Median DoH3 FCP / PLT over clean pairs, in milliseconds.
    pub fcp_ms: Option<f64>,
    pub plt_ms: Option<f64>,
    /// Median per-unit delta (DoH3 minus DoH); negative is faster.
    pub fcp_delta_ms: Option<f64>,
    pub plt_delta_ms: Option<f64>,
}

/// Pair the two Web worlds of the what-if campaign: `base` is a normal
/// run, `doh3` the same campaign with `use_doh3` — identical unit
/// seeds, so each DoH3 sample replays a DoH twin's draws and the FCP /
/// PLT deltas are attributable to HTTP/3 alone. Pairing is positional:
/// both runs emit the grid in the same order.
pub fn whatif_web_rows(base: &[WebperfSample], doh3: &[WebperfSample]) -> Vec<WhatifWebRow> {
    let doh: Vec<&WebperfSample> = base
        .iter()
        .filter(|s| s.transport == DnsTransport::DoH)
        .collect();
    let h3: Vec<&WebperfSample> = doh3
        .iter()
        .filter(|s| s.transport == DnsTransport::DoH3)
        .collect();
    let mut pages: Vec<String> = Vec::new();
    for s in &doh {
        if !pages.contains(&s.page_name) {
            pages.push(s.page_name.clone());
        }
    }
    let mut rows = Vec::new();
    for page in pages {
        let pairs: Vec<(&&WebperfSample, &&WebperfSample)> = doh
            .iter()
            .zip(&h3)
            .filter(|(b, _)| b.page_name == page)
            .collect();
        let clean: Vec<_> = pairs
            .iter()
            .filter(|(b, h)| !b.failed && !h.failed)
            .collect();
        let fcp: Vec<f64> = clean.iter().map(|(_, h)| h.fcp_ms).collect();
        let plt: Vec<f64> = clean.iter().map(|(_, h)| h.plt_ms).collect();
        let dfcp: Vec<f64> = clean.iter().map(|(b, h)| h.fcp_ms - b.fcp_ms).collect();
        let dplt: Vec<f64> = clean.iter().map(|(b, h)| h.plt_ms - b.plt_ms).collect();
        rows.push(WhatifWebRow {
            page,
            units: pairs.len(),
            failed_pairs: pairs.len() - clean.len(),
            fcp_ms: median(&fcp),
            plt_ms: median(&plt),
            fcp_delta_ms: median(&dfcp),
            plt_delta_ms: median(&dplt),
        });
    }
    rows
}

/// Render the what-if Web comparison: per page, DoH3's FCP/PLT and the
/// paired delta against the DoH twin.
pub fn render_whatif_web(rows: &[WhatifWebRow]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "\nwebperf DoH -> DoH3{:>9}{:>9}{:>9}{:>10}{:>10}\n",
        "pairs", "fcp ms", "plt ms", "dfcp ms", "dplt ms"
    ));
    for row in rows {
        out.push_str(&format!("  {:<19}{:>7}", row.page, row.units));
        for q in [row.fcp_ms, row.plt_ms] {
            match q {
                Some(v) => out.push_str(&format!("{v:>9.1}")),
                None => out.push_str(&format!("{:>9}", "-")),
            }
        }
        for q in [row.fcp_delta_ms, row.plt_delta_ms] {
            match q {
                Some(v) => out.push_str(&format!("{v:>+10.1}")),
                None => out.push_str(&format!("{:>10}", "-")),
            }
        }
        out.push('\n');
        if row.failed_pairs > 0 {
            out.push_str(&format!(
                "  {:<19}  {} pair(s) failed\n",
                "", row.failed_pairs
            ));
        }
    }
    out
}

/// One cell of the populations report: an alpha x transport slice of
/// the population campaign, all vantage points merged.
#[derive(Debug, Clone, Serialize)]
pub struct PopulationRow {
    pub alpha: f64,
    pub transport: String,
    pub cohorts: usize,
    /// Clients simulated across the cell's cohorts.
    pub clients: u64,
    /// Client queries issued over the simulated day.
    pub queries: u64,
    /// Stub cache hit ratio (positive + negative hits over lookups), %.
    pub hit_pct: f64,
    /// Queries answered from an already-in-flight upstream lookup, %.
    pub coalesced_pct: f64,
    /// Load the upstream resolvers actually served, queries/second of
    /// simulated time.
    pub resolver_qps: f64,
    /// Client resolve-time quantiles [p50, p99, p999] in ms over every
    /// query, cache hits included at ~0 ms. Quantiles are log-linear
    /// bucket floors (<=12.5% relative error).
    pub resolve_ms: [f64; 3],
    pub pool_reuses: u64,
    pub pool_evictions: u64,
    pub reconnects: u64,
    /// Aggregate IP payload the cell's upstream traffic moved, MB.
    pub megabytes: f64,
}

/// Reduce the population campaign to per-alpha, per-transport rows
/// (alphas ascending by campaign index, transports in the campaign's
/// column order). Degenerate baseline samples are skipped — they carry
/// a single-query sample, not a day of population traffic.
pub fn population_rows(samples: &[PopulationSample]) -> Vec<PopulationRow> {
    let mut alphas: Vec<(usize, f64)> = Vec::new();
    let mut transports: Vec<DnsTransport> = Vec::new();
    for s in samples {
        if s.baseline.is_some() {
            continue;
        }
        if !alphas.iter().any(|(i, _)| *i == s.alpha_idx) {
            alphas.push((s.alpha_idx, s.alpha));
        }
        if !transports.contains(&s.transport) {
            transports.push(s.transport);
        }
    }
    alphas.sort_by_key(|(i, _)| *i);
    let mut rows = Vec::new();
    for (alpha_idx, alpha) in alphas {
        for &t in &transports {
            let cell: Vec<&PopulationSample> = samples
                .iter()
                .filter(|s| s.baseline.is_none() && s.alpha_idx == alpha_idx && s.transport == t)
                .collect();
            if cell.is_empty() {
                continue;
            }
            let queries: u64 = cell.iter().map(|s| s.stats.queries).sum();
            let hits: u64 = cell
                .iter()
                .map(|s| s.stats.cache_hits + s.stats.negative_hits)
                .sum();
            let coalesced: u64 = cell.iter().map(|s| s.stats.coalesced).sum();
            let resolver_queries: u64 = cell.iter().map(|s| s.resolver_queries).sum();
            let window_s: f64 = cell.iter().map(|s| s.window_s).fold(0.0, f64::max);
            let mut hist: BTreeMap<u32, u64> = BTreeMap::new();
            for s in &cell {
                for &(bucket, n) in &s.resolve_hist {
                    *hist.entry(bucket).or_insert(0) += n;
                }
            }
            let q = |p: f64| hist_quantile_ms(&hist, p);
            rows.push(PopulationRow {
                alpha,
                transport: t.name().to_string(),
                cohorts: cell.len(),
                clients: cell.iter().map(|s| s.clients).sum(),
                queries,
                hit_pct: 100.0 * hits as f64 / queries.max(1) as f64,
                coalesced_pct: 100.0 * coalesced as f64 / queries.max(1) as f64,
                resolver_qps: resolver_queries as f64 / window_s.max(1.0),
                resolve_ms: [q(0.5), q(0.99), q(0.999)],
                pool_reuses: cell.iter().map(|s| s.pool_reuses).sum(),
                pool_evictions: cell.iter().map(|s| s.pool_evictions as u64).sum(),
                reconnects: cell.iter().map(|s| s.reconnects as u64).sum(),
                megabytes: cell.iter().map(|s| s.bytes_delivered).sum::<u64>() as f64 / 1e6,
            });
        }
    }
    rows
}

/// Quantile of a merged sparse log-bucket histogram, in milliseconds
/// (bucket floors, so cache hits in bucket 0 report as exactly 0).
fn hist_quantile_ms(hist: &BTreeMap<u32, u64>, q: f64) -> f64 {
    let total: u64 = hist.values().sum();
    if total == 0 {
        return f64::NAN;
    }
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (&bucket, &n) in hist {
        seen += n;
        if seen >= target {
            return metrics::bucket_floor(bucket as usize) as f64 / 1e6;
        }
    }
    f64::NAN
}

/// Render the populations report: per Zipf alpha, a transport table of
/// cache effectiveness, resolver load, client latency quantiles, and
/// connection-pool behavior.
pub fn render_populations(rows: &[PopulationRow]) -> String {
    let mut out = String::new();
    let mut current = None::<f64>;
    for row in rows {
        if current != Some(row.alpha) {
            current = Some(row.alpha);
            out.push_str(&format!(
                "\nzipf a={:<7.2}{:>10}{:>7}{:>7}{:>9}{:>9}{:>9}{:>9}{:>8}{:>7}{:>9}\n",
                row.alpha,
                "queries",
                "hit%",
                "coal%",
                "rslv q/s",
                "p50 ms",
                "p99 ms",
                "p999 ms",
                "reuse",
                "evict",
                "MB"
            ));
        }
        out.push_str(&format!(
            "  {:<12}{:>10}{:>6.1}%{:>6.1}%{:>9.1}{:>9.2}{:>9.1}{:>9.1}{:>8}{:>7}{:>9.2}\n",
            row.transport,
            row.queries,
            row.hit_pct,
            row.coalesced_pct,
            row.resolver_qps,
            row.resolve_ms[0],
            row.resolve_ms[1],
            row.resolve_ms[2],
            row.pool_reuses,
            row.pool_evictions,
            row.megabytes,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_query::PhaseBytes;
    use doqlab_dox::ConnMetadata;

    fn sample(t: DnsTransport, hs: Option<f64>, rs: f64, total: usize) -> SingleQuerySample {
        SingleQuerySample {
            vp: 0,
            vp_continent: Continent::Europe,
            resolver: 0,
            resolver_continent: Continent::Europe,
            transport: t,
            handshake_ms: hs,
            resolve_ms: Some(rs),
            bytes: PhaseBytes {
                handshake_c2r: total / 2,
                handshake_r2c: total / 4,
                query_c2r: total / 8,
                response_r2c: total / 8,
            },
            metadata: ConnMetadata::default(),
            failed: false,
        }
    }

    #[test]
    fn table1_medians_and_counts() {
        let samples = vec![
            sample(DnsTransport::DoUdp, None, 40.0, 120),
            sample(DnsTransport::DoUdp, None, 42.0, 128),
            sample(DnsTransport::DoQ, Some(40.0), 40.0, 4000),
        ];
        let t = table1(&samples);
        assert_eq!(t.sample_counts["DoUDP"], 2);
        assert_eq!(t.sample_counts["DoQ"], 1);
        assert!((t.sizes["DoUDP"][0] - 124.0).abs() < 1.0);
        let rendered = render_table1(&t);
        assert!(rendered.contains("Samples"));
        assert!(rendered.contains("DoQ"));
    }

    #[test]
    fn fig2_groups_total_and_continent() {
        let samples = vec![
            sample(DnsTransport::DoT, Some(100.0), 50.0, 1000),
            sample(DnsTransport::DoT, Some(200.0), 60.0, 1000),
        ];
        let f = fig2(&samples);
        assert_eq!(f.handshake_ms["Total"]["DoT"], 150.0);
        assert_eq!(f.handshake_ms["EU"]["DoT"], 150.0);
        assert!(!f.handshake_ms.contains_key("XX"));
        let rendered = render_fig2(&f);
        assert!(rendered.contains("Handshake time"));
    }

    fn web(t: DnsTransport, vp: usize, resolver: usize, page: usize, plt: f64) -> WebperfSample {
        WebperfSample {
            vp,
            vp_continent: Continent::Europe,
            resolver,
            page,
            page_name: format!("page{page}"),
            page_dns_queries: page + 1,
            transport: t,
            round: 0,
            fcp_ms: plt * 0.6,
            plt_ms: plt,
            proxy_connections: 1,
            failed: false,
            loads_failed: 0,
        }
    }

    #[test]
    fn whatif_web_rows_pair_the_doh_and_doh3_worlds() {
        let base = vec![
            web(DnsTransport::DoUdp, 0, 0, 0, 90.0),
            web(DnsTransport::DoH, 0, 0, 0, 200.0),
            web(DnsTransport::DoH, 1, 0, 0, 220.0),
            web(DnsTransport::DoH, 0, 0, 1, 400.0),
        ];
        let doh3 = vec![
            web(DnsTransport::DoUdp, 0, 0, 0, 90.0),
            web(DnsTransport::DoH3, 0, 0, 0, 180.0),
            {
                let mut s = web(DnsTransport::DoH3, 1, 0, 0, f64::NAN);
                s.failed = true;
                s
            },
            web(DnsTransport::DoH3, 0, 0, 1, 350.0),
        ];
        let rows = whatif_web_rows(&base, &doh3);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].page, "page0");
        assert_eq!(rows[0].units, 2);
        assert_eq!(
            rows[0].failed_pairs, 1,
            "the failed DoH3 load drops its pair"
        );
        assert_eq!(rows[0].plt_delta_ms, Some(-20.0));
        assert_eq!(rows[1].page, "page1");
        assert_eq!(rows[1].plt_ms, Some(350.0));
        assert_eq!(rows[1].plt_delta_ms, Some(-50.0));
        let rendered = render_whatif_web(&rows);
        assert!(rendered.contains("webperf DoH -> DoH3"));
        assert!(rendered.contains("-50.0"));
        assert!(rendered.contains("1 pair(s) failed"));
        assert!(render_whatif_web(&[]).is_empty());
    }

    #[test]
    fn relative_diffs_pair_within_groups() {
        let samples = vec![
            web(DnsTransport::DoUdp, 0, 0, 0, 100.0),
            web(DnsTransport::DoQ, 0, 0, 0, 110.0),
            web(DnsTransport::DoUdp, 0, 1, 0, 200.0),
            web(DnsTransport::DoQ, 0, 1, 0, 210.0),
        ];
        let d = relative_to_baseline(&samples, DnsTransport::DoUdp);
        let doq = &d.plt["DoQ"];
        assert_eq!(doq.len(), 2);
        let mut sorted = doq.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((sorted[0] - 5.0).abs() < 0.01);
        assert!((sorted[1] - 10.0).abs() < 0.01);
    }

    #[test]
    fn render_fig3_lists_quantiles_per_protocol() {
        let samples = vec![
            web(DnsTransport::DoUdp, 0, 0, 0, 100.0),
            web(DnsTransport::DoQ, 0, 0, 0, 105.0),
            web(DnsTransport::DoH, 0, 0, 0, 120.0),
        ];
        let d = relative_to_baseline(&samples, DnsTransport::DoUdp);
        let text = render_fig3(&d, "PLT");
        assert!(text.contains("DoQ"));
        assert!(text.contains("DoH"));
        assert!(text.contains("p50"));
        let fcp_text = render_fig3(&d, "FCP");
        assert!(fcp_text.contains("FCP"));
    }

    #[test]
    fn headline_uses_the_papers_formulas() {
        // DoUDP 100 ms, DoQ 200 ms, DoT/DoH 300 ms: the paper's RTT
        // arithmetic gives 33% / 50% / 66%.
        let mk = |t: DnsTransport, hs: Option<f64>, rs: f64| SingleQuerySample {
            vp: 0,
            vp_continent: Continent::Europe,
            resolver: 0,
            resolver_continent: Continent::Europe,
            transport: t,
            handshake_ms: hs,
            resolve_ms: Some(rs),
            bytes: PhaseBytes::default(),
            metadata: ConnMetadata::default(),
            failed: false,
        };
        let sq = vec![
            mk(DnsTransport::DoUdp, None, 100.0),
            mk(DnsTransport::DoQ, Some(100.0), 100.0),
            mk(DnsTransport::DoT, Some(200.0), 100.0),
            mk(DnsTransport::DoH, Some(200.0), 100.0),
        ];
        let h = headline(&sq, &[]);
        assert!((h.doq_vs_dot_single_query_pct - 33.333).abs() < 0.1);
        assert!((h.doq_vs_doh_single_query_pct - 33.333).abs() < 0.1);
        assert!((h.doq_vs_doudp_single_query_pct - 50.0).abs() < 0.1);
        assert!((h.dot_vs_doudp_single_query_pct - 66.667).abs() < 0.1);
    }

    #[test]
    fn overview_counts_versions_and_flags() {
        let mut s = sample(DnsTransport::DoQ, Some(10.0), 10.0, 100);
        s.metadata = ConnMetadata {
            quic_version: Some(1),
            doq_alpn: Some("doq-i02".into()),
            tls13: Some(true),
            resumed: true,
            zero_rtt: false,
        };
        let mut s2 = s.clone();
        s2.metadata.quic_version = Some(0xFF00_0022);
        s2.metadata.doq_alpn = Some("doq-i03".into());
        s2.metadata.resumed = false;
        let o = overview(&[s, s2]);
        assert_eq!(o.quic_version_shares["v1"], 0.5);
        assert_eq!(o.quic_version_shares["draft-34"], 0.5);
        assert_eq!(o.doq_alpn_shares["doq-i02"], 0.5);
        assert_eq!(o.tls13_share, 1.0);
        assert_eq!(o.resumption_share, 0.5);
        assert_eq!(o.zero_rtt_share, 0.0);
    }

    #[test]
    fn fig4_cells_compare_against_doq() {
        let samples = vec![
            web(DnsTransport::DoQ, 0, 0, 0, 100.0),
            web(DnsTransport::DoUdp, 0, 0, 0, 90.0),
            web(DnsTransport::DoH, 0, 0, 0, 110.0),
        ];
        let cells = fig4(&samples);
        assert_eq!(cells.len(), 1);
        assert!((cells[0].doudp_rel_median_pct + 10.0).abs() < 0.01);
        assert!((cells[0].doh_rel_median_pct - 10.0).abs() < 0.01);
        assert_eq!(cells[0].doq_faster_than_doh, 1.0);
        let rendered = render_fig4(&cells);
        assert!(rendered.contains("page0"));
    }

    #[test]
    fn impairment_rows_group_by_regime_and_transport() {
        use doqlab_dox::FailureKind;
        let mk = |regime: usize, name: &str, t, ok: bool| ImpairmentSample {
            regime,
            regime_name: name.into(),
            failure: (!ok).then_some(FailureKind::Timeout),
            reconnects: u32::from(!ok),
            sample: {
                let mut s = sample(t, Some(10.0), 25.0, 100);
                if !ok {
                    s.failed = true;
                    s.resolve_ms = None;
                }
                s
            },
        };
        let samples = vec![
            mk(0, "baseline", DnsTransport::DoQ, true),
            mk(0, "baseline", DnsTransport::DoQ, true),
            mk(1, "loss", DnsTransport::DoQ, false),
            mk(1, "loss", DnsTransport::DoUdp, true),
        ];
        let rows = impairment_rows(&samples);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].regime, "baseline");
        assert_eq!(rows[0].units, 2);
        assert_eq!(rows[0].failed, 0);
        assert_eq!(rows[0].resolve_ms[1], Some(25.0));
        let loss_doq = rows
            .iter()
            .find(|r| r.regime == "loss" && r.transport == "DoQ")
            .unwrap();
        assert_eq!(loss_doq.failed, 1);
        assert_eq!(loss_doq.failure_kinds["timeout"], 1);
        assert_eq!(loss_doq.reconnects, 1);
        assert_eq!(loss_doq.resolve_ms[1], None);
        let rendered = render_impairments(&rows);
        assert!(rendered.contains("regime baseline"));
        assert!(rendered.contains("timeout x1"));
    }

    #[test]
    fn mobility_rows_group_by_regime_and_transport() {
        use doqlab_dox::FailureKind;
        let mk = |regime: usize, name: &str, t, ok: bool, winner| MobilitySample {
            regime,
            regime_name: name.into(),
            failure: (!ok).then_some(FailureKind::DeadlineExceeded),
            reconnects: 0,
            rebinds_applied: u32::from(regime > 0),
            survived: ok,
            switchover_ms: (ok && regime > 0).then_some(42.0),
            wasted_bytes: if winner { 900 } else { 0 },
            winner: winner.then_some(DnsTransport::DoT),
            sample: {
                let mut s = sample(t, Some(10.0), 25.0, 100);
                if !ok {
                    s.failed = true;
                    s.resolve_ms = None;
                }
                s
            },
        };
        let samples = vec![
            mk(0, "baseline", DnsTransport::DoQ, true, false),
            mk(1, "rebind", DnsTransport::DoQ, true, false),
            mk(1, "rebind", DnsTransport::DoUdp, false, false),
            mk(1, "rebind", DnsTransport::DoT, true, true),
        ];
        let rows = mobility_rows(&samples);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].regime, "baseline");
        assert_eq!(rows[0].survived, 1);
        assert_eq!(rows[0].rebinds, 0);
        assert_eq!(rows[0].switchover_ms, [None, None]);
        let rebind_doq = rows
            .iter()
            .find(|r| r.regime == "rebind" && r.transport == "DoQ")
            .unwrap();
        assert_eq!(rebind_doq.survived, 1);
        assert_eq!(rebind_doq.switchover_ms[0], Some(42.0));
        let rebind_udp = rows
            .iter()
            .find(|r| r.regime == "rebind" && r.transport == "DoUDP")
            .unwrap();
        assert_eq!(rebind_udp.survived, 0);
        assert_eq!(rebind_udp.failure_kinds["deadline-exceeded"], 1);
        let rebind_dot = rows
            .iter()
            .find(|r| r.regime == "rebind" && r.transport == "DoT")
            .unwrap();
        assert_eq!(rebind_dot.winners["DoT"], 1);
        assert_eq!(rebind_dot.wasted_bytes, 900);
        let rendered = render_mobility(&rows);
        assert!(rendered.contains("regime baseline"));
        assert!(rendered.contains("regime rebind"));
        assert!(rendered.contains("deadline-exceeded x1"));
        assert!(rendered.contains("won by DoT x1"));
    }

    #[test]
    fn whatif_rows_pair_regimes_against_the_baseline() {
        use doqlab_dox::FailureKind;
        let mk = |regime: usize, name: &str, t, hs: Option<f64>, ok: bool| WhatifSample {
            regime,
            regime_name: name.into(),
            failure: (!ok).then_some(FailureKind::Timeout),
            sample: {
                let mut s = sample(t, hs, 25.0, 100);
                if !ok {
                    s.failed = true;
                    s.resolve_ms = None;
                }
                s
            },
        };
        let samples = vec![
            mk(0, "baseline", DnsTransport::DoQ, Some(50.0), true),
            mk(0, "baseline", DnsTransport::DoQ, Some(60.0), true),
            mk(0, "baseline", DnsTransport::DoH, Some(100.0), true),
            mk(1, "0rtt", DnsTransport::DoQ, Some(0.0), true),
            mk(1, "0rtt", DnsTransport::DoQ, Some(10.0), false),
            mk(2, "doh3", DnsTransport::DoH3, Some(60.0), true),
        ];
        let rows = whatif_rows(&samples);
        assert_eq!(rows.len(), 4);
        let base = &rows[0];
        assert_eq!(
            (base.regime.as_str(), base.transport.as_str()),
            ("baseline", "DoQ")
        );
        assert_eq!(base.units, 2);
        assert_eq!(base.total_ms[0], Some(80.0), "median of 75 and 85");
        assert_eq!(base.delta_ms, None, "the reference regime has no delta");
        let zrtt = rows
            .iter()
            .find(|r| r.regime == "0rtt" && r.transport == "DoQ")
            .unwrap();
        assert_eq!(zrtt.failed, 1);
        assert_eq!(zrtt.failure_kinds["timeout"], 1);
        // Only the first unit pair answered on both sides: 25 - 75.
        assert_eq!(zrtt.delta_ms, Some(-50.0));
        // The doh3 regime's DoH3 unit folds into the DoH column and
        // pairs with the baseline DoH twin: 85 - 125.
        let doh3 = rows.iter().find(|r| r.regime == "doh3").unwrap();
        assert_eq!(doh3.transport, "DoH");
        assert_eq!(doh3.ran_doh3, 1);
        assert_eq!(doh3.delta_ms, Some(-40.0));
        let rendered = render_whatif(&rows);
        assert!(rendered.contains("regime baseline"));
        assert!(rendered.contains("regime 0rtt"));
        assert!(rendered.contains("-50.0"));
        assert!(rendered.contains("ran DoH3 x1"));
        assert!(rendered.contains("timeout x1"));
    }

    fn pop_sample(alpha_idx: usize, alpha: f64, t: DnsTransport, vp: usize) -> PopulationSample {
        use doqlab_resolver::StubStats;
        PopulationSample {
            vp,
            vp_name: "test",
            resolver: 0,
            alpha_idx,
            alpha,
            transport: t,
            clients: 100,
            window_s: 3_600.0,
            stats: StubStats {
                queries: 1_000,
                cache_hits: 700,
                negative_hits: 50,
                coalesced: 30,
                upstream_queries: 220,
                upstream_answered: 220,
                failed: 0,
            },
            cache_expired: 5,
            cache_entries: 40,
            pool_reuses: 200,
            pool_evictions: 3,
            reconnects: 1,
            resolver_queries: 220,
            bytes_delivered: 2_000_000,
            packets_delivered: 4_000,
            // 750 cache hits at ~0, 250 upstream answers at ~20 ms.
            resolve_hist: vec![(0, 750), (metrics::bucket_index(20_000_000) as u32, 250)],
            baseline: None,
        }
    }

    #[test]
    fn population_rows_merge_vantage_points_per_alpha_transport() {
        let samples = vec![
            pop_sample(0, 0.75, DnsTransport::DoQ, 0),
            pop_sample(0, 0.75, DnsTransport::DoQ, 1),
            pop_sample(0, 0.75, DnsTransport::DoUdp, 0),
            pop_sample(1, 0.9, DnsTransport::DoQ, 0),
        ];
        let rows = population_rows(&samples);
        assert_eq!(rows.len(), 3);
        let doq = &rows[0];
        assert_eq!(doq.transport, "DoQ");
        assert_eq!(doq.alpha, 0.75);
        assert_eq!(doq.cohorts, 2);
        assert_eq!(doq.clients, 200);
        assert_eq!(doq.queries, 2_000);
        assert!((doq.hit_pct - 75.0).abs() < 1e-9);
        assert!((doq.coalesced_pct - 3.0).abs() < 1e-9);
        assert!((doq.resolver_qps - 440.0 / 3_600.0).abs() < 1e-9);
        // p50 lands in the cache-hit bucket, p99 in the upstream one
        // (floors, so the 20 ms answers report as >= 16 ms).
        assert_eq!(doq.resolve_ms[0], 0.0);
        assert!(doq.resolve_ms[1] >= 16.0 && doq.resolve_ms[1] <= 20.0);
        assert_eq!(doq.pool_reuses, 400);
        assert_eq!(doq.pool_evictions, 6);
        assert!((doq.megabytes - 4.0).abs() < 1e-9);
        // Second alpha opens its own group.
        assert_eq!(rows[2].alpha, 0.9);
        let rendered = render_populations(&rows);
        assert!(rendered.contains("zipf a=0.75"));
        assert!(rendered.contains("zipf a=0.90"));
        assert!(rendered.contains("DoUDP"));
    }

    #[test]
    fn population_rows_skip_degenerate_baselines() {
        let mut s = pop_sample(0, 0.9, DnsTransport::DoQ, 0);
        s.baseline = Some(sample(DnsTransport::DoQ, Some(10.0), 25.0, 100));
        assert!(population_rows(&[s]).is_empty());
    }

    #[test]
    fn hist_quantile_walks_bucket_floors() {
        let hist: BTreeMap<u32, u64> =
            [(0u32, 90u64), (metrics::bucket_index(8_000_000) as u32, 10)]
                .into_iter()
                .collect();
        assert_eq!(hist_quantile_ms(&hist, 0.5), 0.0);
        let p99 = hist_quantile_ms(&hist, 0.99);
        assert!(p99 > 0.0 && p99 <= 8.0);
        assert!(hist_quantile_ms(&BTreeMap::new(), 0.5).is_nan());
    }
}
