//! The six vantage points: Amazon EC2 instances, one per continent
//! (paper Fig. 1, blue dots). Ordered like the rows of Fig. 2/4 —
//! by the number of verified DoX resolvers on that continent.

use doqlab_simnet::geo::Continent;
use doqlab_simnet::{Coord, Ipv4Addr};

/// One measurement vantage point.
#[derive(Debug, Clone)]
pub struct VantagePoint {
    pub index: usize,
    /// EC2-region-style name.
    pub name: &'static str,
    pub continent: Continent,
    pub location: Coord,
    /// Address the client machines at this vantage point use.
    pub ip: Ipv4Addr,
}

/// The six vantage points in Fig. 2/4 row order (EU, AS, NA, AF, OC, SA).
pub fn vantage_points() -> Vec<VantagePoint> {
    let spec: [(&'static str, Continent, Coord); 6] = [
        ("eu-central-1", Continent::Europe, Coord::new(50.11, 8.68)),
        ("ap-southeast-1", Continent::Asia, Coord::new(1.35, 103.82)),
        (
            "us-east-1",
            Continent::NorthAmerica,
            Coord::new(38.95, -77.45),
        ),
        ("af-south-1", Continent::Africa, Coord::new(-33.93, 18.42)),
        (
            "ap-southeast-2",
            Continent::Oceania,
            Coord::new(-33.87, 151.21),
        ),
        (
            "sa-east-1",
            Continent::SouthAmerica,
            Coord::new(-23.55, -46.63),
        ),
    ];
    spec.into_iter()
        .enumerate()
        .map(|(index, (name, continent, location))| VantagePoint {
            index,
            name,
            continent,
            location,
            ip: Ipv4Addr::new(10, 10, index as u8 + 1, 1),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_vantage_points_one_per_continent() {
        let vps = vantage_points();
        assert_eq!(vps.len(), 6);
        let continents: std::collections::HashSet<_> = vps.iter().map(|v| v.continent).collect();
        assert_eq!(continents.len(), 6);
    }

    #[test]
    fn row_order_matches_fig2() {
        let vps = vantage_points();
        assert_eq!(vps[0].continent, Continent::Europe);
        assert_eq!(vps[1].continent, Continent::Asia);
        assert_eq!(vps[2].continent, Continent::NorthAmerica);
        assert_eq!(vps[5].continent, Continent::SouthAmerica);
    }

    #[test]
    fn unique_ips() {
        let vps = vantage_points();
        let ips: std::collections::HashSet<_> = vps.iter().map(|v| v.ip).collect();
        assert_eq!(ips.len(), 6);
    }
}
