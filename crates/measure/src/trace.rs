//! qlog event tracing for one measurement unit per transport.
//!
//! `doqlab trace single-query` routes here: for each of the paper's
//! five transports one single-query unit (first vantage point, first
//! sampled resolver, repetition 0) runs with the telemetry
//! [`doqlab_telemetry::EventSink`] installed, and every layer's events
//! — QUIC packets, TLS flights, TCP retransmits/Fast Open, congestion
//! window updates, HTTP/2 / HTTP/3 streams — are serialized as one
//! qlog JSON-SEQ stream (RFC 7464 framing, one `group_id` per
//! transport's connection pair).
//!
//! Tracing is purely observational: the traced unit produces exactly
//! the sample a campaign run would (the engine invariance tests pin
//! this), so a trace is a faithful view of the measurement, not a
//! different execution.

use crate::single_query::{run_unit_in, SingleQueryCampaign, SingleQuerySample};
use crate::vantage::vantage_points;
use doqlab_dox::DnsTransport;
use doqlab_resolver::ResolverProfile;
use doqlab_simnet::Simulator;
use doqlab_telemetry::qlog::{self, ConnTrace};
use doqlab_telemetry::sink;

/// The trace of one campaign's worth of per-transport units.
#[derive(Debug)]
pub struct TraceRun {
    /// One trace per transport, in [`DnsTransport::ALL`] order.
    pub traces: Vec<ConnTrace>,
    /// The samples the traced units produced (same order).
    pub samples: Vec<(DnsTransport, SingleQuerySample)>,
}

impl TraceRun {
    /// Serialize as a qlog JSON-SEQ stream.
    pub fn to_json_seq(&self) -> String {
        qlog::to_json_seq("doqlab single-query trace", &self.traces)
    }
}

/// Trace one single-query unit per transport.
///
/// Uses the campaign's first vantage point and first sampled resolver;
/// the unit RNG seeds are identical to the ones a full campaign run
/// would use for those coordinates.
pub fn trace_single_query(
    campaign: &SingleQueryCampaign,
    population: &[ResolverProfile],
) -> TraceRun {
    let vps = vantage_points();
    let resolvers = campaign.scale.sample_resolvers(population);
    let profile = *resolvers.first().expect("non-empty resolver population");
    let vp = &vps[0];
    let mut sim = Simulator::arena();
    let mut traces = Vec::new();
    let mut samples = Vec::new();
    for &t in &DnsTransport::ALL {
        let (sample, events) = sink::capture(|| run_unit_in(&mut sim, campaign, vp, profile, t, 0));
        traces.push(ConnTrace {
            group_id: format!("{}:vp{}:r{}", t.name(), vp.index, profile.index),
            events,
        });
        samples.push((t, sample));
    }
    TraceRun { traces, samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use doqlab_resolver::synthesize_dox_population;
    use doqlab_telemetry::qlog::Json;

    #[test]
    fn traced_units_produce_the_campaign_sample() {
        // Tracing must not perturb the measurement: the sample from a
        // traced unit is identical to an untraced run at the same seed.
        let campaign = SingleQueryCampaign::new(Scale::quick());
        let population = synthesize_dox_population(campaign.seed);
        let run = trace_single_query(&campaign, &population);
        let vps = vantage_points();
        let resolvers = campaign.scale.sample_resolvers(&population);
        let mut sim = Simulator::arena();
        for (t, traced) in &run.samples {
            let plain = run_unit_in(&mut sim, &campaign, &vps[0], resolvers[0], *t, 0);
            assert_eq!(
                format!("{traced:?}"),
                format!("{plain:?}"),
                "traced {t:?} sample differs from untraced"
            );
        }
    }

    #[test]
    fn trace_emits_quic_tls_and_cc_events() {
        let campaign = SingleQueryCampaign::new(Scale::quick());
        let population = synthesize_dox_population(campaign.seed);
        let run = trace_single_query(&campaign, &population);
        let seq = run.to_json_seq();
        let records = qlog::parse_seq(&seq).expect("valid JSON-SEQ");
        let layer_count = |layer: &str| {
            records
                .iter()
                .filter(|r| r.get("layer").and_then(Json::as_str) == Some(layer))
                .count()
        };
        assert!(layer_count("quic") >= 1, "no QUIC events");
        assert!(layer_count("tls") >= 1, "no TLS events");
        assert!(layer_count("cc") >= 1, "no congestion-control events");
    }
}
