//! The population-scale campaign: Zipf workloads behind shared stub
//! caches over pooled connections, `doqlab measure populations`.
//!
//! The paper's §3 measures one query at a time; what an operator or a
//! browser vendor actually cares about is the *aggregate* behavior of
//! encrypted DNS once whole client populations sit behind stubs. Each
//! unit of this campaign is one `[vantage point : alpha : transport]`
//! **cohort**: `clients / cohorts` simulated clients multiplexed behind
//! one [`StubResolverHost`] (shared positive + RFC 2308 negative cache,
//! query coalescing, pooled upstream connection), issuing
//! Zipf(alpha)-popular queries along a diurnal arrival process over a
//! simulated day against that vantage point's continent-local resolver.
//!
//! Reproducibility contracts (pinned by the engine invariance tests):
//!
//! * bit-identical output across thread counts and repeated runs at a
//!   fixed seed — all randomness flows through the unit's seeded RNG,
//!   never the wall clock;
//! * the **degenerate** campaign (`degenerate()`: one client, no cache,
//!   one query) routes through [`run_unit_custom`] with default options
//!   and the single-query campaign's own seeds, so its samples
//!   reproduce that campaign bit for bit.
//!
//! Scale knobs: [`Scale::clients`] (quick 2·10³, medium 2·10⁴, paper
//! 10⁵), overridden by the `DOQLAB_CLIENTS` environment variable via
//! [`engine::env_clients`].

use crate::engine;
use crate::single_query::{
    run_unit_custom, transport_byte_counter, SingleQueryCampaign, SingleQuerySample, UnitOptions,
};
use crate::vantage::{vantage_points, VantagePoint};
use crate::Scale;
use doqlab_dox::{ClientConfig, DnsTransport};
use doqlab_resolver::{
    ClientPopulation, RecursionModel, ResolverHost, ResolverProfile, StubResolverHost, StubStats,
    WorkloadGen, WorkloadSpec,
};
use doqlab_simnet::path::{GeoPathModel, GeoPathParams};
use doqlab_simnet::{Duration, Ipv4Addr, Simulator, SocketAddr};
use doqlab_telemetry::metrics::{self, Counter};

/// The four transports a population cohort is measured over (the
/// encrypted trio of the paper plus the DoUDP baseline; DoTCP adds
/// nothing a pooled DoT cohort doesn't already show).
pub const POPULATION_TRANSPORTS: [DnsTransport; 4] = [
    DnsTransport::DoUdp,
    DnsTransport::DoT,
    DnsTransport::DoH,
    DnsTransport::DoQ,
];

/// Vantage points hosting population cohorts: the first four of the
/// study's six (EU, AS, NA, AF) — the continents with nontrivial
/// resolver presence.
pub const POPULATION_VPS: usize = 4;

/// Default total client count (the paper-scale population; 10⁶ works
/// but takes correspondingly longer).
pub const DEFAULT_CLIENTS: u64 = 100_000;

/// Campaign configuration. The seed doubles as the single-query
/// campaign seed so the degenerate campaign reproduces its samples
/// exactly.
#[derive(Debug, Clone)]
pub struct PopulationsCampaign {
    pub seed: u64,
    pub scale: Scale,
    /// Total simulated clients, split evenly over the cohorts.
    pub clients: u64,
    /// Zipf exponents swept (each rides the grid's `pages` axis).
    pub alphas: Vec<f64>,
    /// Mean queries per client over the window (~a day of stub load).
    pub queries_per_client: f64,
    /// Distinct names in the popularity table.
    pub domains: usize,
    /// Fraction of the table that is NXDOMAIN tail.
    pub nxdomain_tail: f64,
    /// The simulated day.
    pub window: Duration,
    /// Pool idle timeout on the stub's upstream connection.
    pub pool_idle: Duration,
    pub reconnect_max: u32,
    pub reconnect_backoff: Duration,
    /// Degenerate mode: 1 client, no cache, single-query units
    /// (bit-identical to [`crate::single_query`]).
    pub degenerate: bool,
    pub path_params: GeoPathParams,
}

/// Domain separation for population unit seeds (the degenerate campaign
/// deliberately does NOT use it).
const POP_SEED_DOMAIN: u64 = 0xC0_0817_2022;

impl PopulationsCampaign {
    pub fn new(scale: Scale) -> Self {
        let sq = SingleQueryCampaign::new(scale.clone());
        let clients = engine::env_clients(scale.clients.unwrap_or(DEFAULT_CLIENTS));
        PopulationsCampaign {
            seed: sq.seed,
            scale,
            clients,
            alphas: vec![0.75, 0.9, 1.05],
            queries_per_client: 100.0,
            domains: 1000,
            nxdomain_tail: 0.15,
            window: Duration::from_secs(86_400),
            pool_idle: Duration::from_secs(10),
            reconnect_max: 2,
            reconnect_backoff: Duration::from_millis(250),
            degenerate: false,
            path_params: GeoPathParams::default(),
        }
    }

    /// The degenerate campaign: one client, no cache, one query per
    /// unit — every unit is a plain single-query unit and reproduces
    /// that campaign's samples bit for bit.
    pub fn degenerate(scale: Scale) -> Self {
        PopulationsCampaign {
            degenerate: true,
            clients: 1,
            alphas: vec![0.9],
            ..PopulationsCampaign::new(scale)
        }
    }

    /// The single-query campaign the degenerate units embed.
    fn single_query(&self) -> SingleQueryCampaign {
        SingleQueryCampaign {
            seed: self.seed,
            scale: self.scale.clone(),
            use_resumption: true,
            enable_0rtt_resolvers: false,
            path_params: self.path_params.clone(),
        }
    }

    /// The client split across cohorts.
    pub fn population(&self) -> ClientPopulation {
        ClientPopulation::new(
            self.clients,
            (POPULATION_VPS * POPULATION_TRANSPORTS.len()) as u64,
        )
    }
}

/// One cohort's day: per-stub accounting plus the network-level totals
/// of its micro-simulation.
#[derive(Debug, Clone)]
pub struct PopulationSample {
    pub vp: usize,
    pub vp_name: &'static str,
    pub resolver: usize,
    pub alpha_idx: usize,
    pub alpha: f64,
    pub transport: DnsTransport,
    /// Clients behind this cohort's stub.
    pub clients: u64,
    /// Window length in (simulated) seconds.
    pub window_s: f64,
    /// The stub's client-side accounting.
    pub stats: StubStats,
    /// Cache-eviction count (lookups that found an expired entry).
    pub cache_expired: u64,
    /// Entries resident in the stub cache at the end of the day.
    pub cache_entries: usize,
    pub pool_reuses: u64,
    pub pool_evictions: u32,
    pub reconnects: u32,
    /// Queries the upstream resolver actually served — its load.
    pub resolver_queries: u64,
    /// Aggregate IP payload bytes the cohort's traffic moved.
    pub bytes_delivered: u64,
    pub packets_delivered: u64,
    /// Sparse client resolve-time histogram (`bucket_index` buckets;
    /// bucket 0 = zero-latency cache hits).
    pub resolve_hist: Vec<(u32, u64)>,
    /// Degenerate mode only: the embedded single-query sample.
    pub baseline: Option<SingleQuerySample>,
}

/// Pick the cohort's upstream resolver: the first profile on the
/// vantage point's own continent (every population vantage point has
/// one), falling back to the population head.
pub fn cohort_resolver<'a>(
    vp: &VantagePoint,
    population: &'a [ResolverProfile],
) -> &'a ResolverProfile {
    population
        .iter()
        .find(|p| p.continent == vp.continent)
        .unwrap_or(&population[0])
}

/// Extra simulated time after the window closes, letting in-flight
/// queries finish and the final idle eviction fire.
const DRAIN: Duration = Duration::from_secs(60);

/// Run one `[vp : alpha : transport]` cohort unit in a reusable
/// simulator arena.
pub fn run_population_unit(
    sim: &mut Simulator,
    campaign: &PopulationsCampaign,
    vp: &VantagePoint,
    profile: &ResolverProfile,
    alpha_idx: usize,
    transport: DnsTransport,
    rep: usize,
) -> PopulationSample {
    let alpha = campaign.alphas[alpha_idx];
    let clients = campaign.population().per_cohort();
    if campaign.degenerate {
        // One client, no cache, one query: exactly the single-query
        // unit, on that campaign's own seeds (run_unit_custom counts
        // the unit into telemetry itself).
        let sq = campaign.single_query();
        let out = run_unit_custom(
            sim,
            &sq,
            vp,
            profile,
            transport,
            rep,
            &UnitOptions::default(),
        );
        return PopulationSample {
            vp: vp.index,
            vp_name: vp.name,
            resolver: profile.index,
            alpha_idx,
            alpha,
            transport,
            clients: 1,
            window_s: 0.0,
            stats: StubStats::default(),
            cache_expired: 0,
            cache_entries: 0,
            pool_reuses: 0,
            pool_evictions: 0,
            reconnects: out.reconnects,
            resolver_queries: 0,
            bytes_delivered: 0,
            packets_delivered: 0,
            resolve_hist: Vec::new(),
            baseline: Some(out.sample),
        };
    }

    let seed = engine::unit_seed(
        campaign.seed ^ POP_SEED_DOMAIN,
        &[
            vp.index as u64,
            alpha_idx as u64,
            transport as u64,
            rep as u64,
        ],
    );
    let mut path = GeoPathModel::new(campaign.path_params.clone());
    let stub_ip = Ipv4Addr::new(10, 20, vp.index as u8 + 1, 1);
    path.place(stub_ip, vp.location);
    path.place(profile.ip, profile.location);
    sim.reset(seed, Box::new(path));

    let rid = sim.add_host(
        Box::new(ResolverHost::new(
            profile.server_config(),
            RecursionModel::default(),
        )),
        &[profile.ip],
    );
    let cfg = ClientConfig {
        pool_idle_timeout: Some(campaign.pool_idle),
        reconnect_max: campaign.reconnect_max,
        reconnect_backoff: campaign.reconnect_backoff,
        ..ClientConfig::default()
    };
    let spec = WorkloadSpec {
        clients,
        queries_per_client: campaign.queries_per_client,
        window: campaign.window,
        alpha,
        domains: campaign.domains,
        nxdomain_tail: campaign.nxdomain_tail,
    };
    let stub = StubResolverHost::new(
        transport,
        SocketAddr::new(stub_ip, 40_000),
        SocketAddr::new(profile.ip, transport.port()),
        &cfg,
        WorkloadGen::new(spec),
        true,
    );
    let sid = sim.add_host(Box::new(stub), &[stub_ip]);
    sim.with_host::<StubResolverHost, _>(sid, |s, ctx| s.prime(ctx));
    let start = sim.now();
    sim.run_until(start + campaign.window + DRAIN);

    let net = sim.stats();
    let resolver_queries = sim.host::<ResolverHost>(rid).queries_served;
    let stub = sim.host::<StubResolverHost>(sid);
    metrics::count(Counter::UnitsRun, 1);
    metrics::count(transport_byte_counter(transport), net.bytes_delivered);

    PopulationSample {
        vp: vp.index,
        vp_name: vp.name,
        resolver: profile.index,
        alpha_idx,
        alpha,
        transport,
        clients,
        window_s: campaign.window.as_secs_f64(),
        stats: stub.stats(),
        cache_expired: stub.cache().expired(),
        cache_entries: stub.cache().len(),
        pool_reuses: stub.upstream().pool_reuses(),
        pool_evictions: stub.upstream().pool_evictions(),
        reconnects: stub.upstream().reconnects(),
        resolver_queries,
        bytes_delivered: net.bytes_delivered,
        packets_delivered: net.packets_delivered,
        resolve_hist: stub.resolve_hist(),
        baseline: None,
    }
}

/// Run the campaign: every population vantage point x alpha x transport
/// cohort, scheduled by the work-stealing engine on per-worker
/// simulator arenas (alphas ride the grid's `pages` axis; each unit is
/// already a whole simulated day, so the repetition axis stays 1).
/// Output order and content are independent of thread count.
pub fn run_populations_campaign(
    campaign: &PopulationsCampaign,
    population: &[ResolverProfile],
) -> Vec<PopulationSample> {
    let all_vps = vantage_points();
    let vps = &all_vps[..POPULATION_VPS.min(all_vps.len())];
    let grid = engine::UnitGrid {
        vps: vps.len(),
        resolvers: 1,
        pages: campaign.alphas.len(),
        transports: POPULATION_TRANSPORTS.len(),
        reps: 1,
    };
    let units = grid.units();
    engine::run_units(
        engine::env_threads(campaign.scale.threads),
        &units,
        Simulator::arena,
        |sim, u, _| {
            run_population_unit(
                sim,
                campaign,
                &vps[u.vp],
                cohort_resolver(&vps[u.vp], population),
                u.page,
                POPULATION_TRANSPORTS[u.transport],
                u.rep,
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_query::run_unit_in;
    use doqlab_resolver::synthesize_dox_population;

    fn tiny_campaign() -> (PopulationsCampaign, Vec<ResolverProfile>) {
        let scale = Scale {
            clients: Some(256),
            threads: 2,
            ..Scale::quick()
        };
        let mut c = PopulationsCampaign::new(scale);
        // A compressed day keeps the test fast while preserving the
        // cacheable per-cohort rate (16 clients x 100 queries / 2 h).
        c.window = Duration::from_secs(7_200);
        (c, synthesize_dox_population(1))
    }

    #[test]
    fn campaign_produces_the_full_cohort_grid() {
        let (c, pop) = tiny_campaign();
        let samples = run_populations_campaign(&c, &pop);
        check_grid(&c, &samples);
        check_hit_ratio_grows_with_alpha(&c, &samples);
    }

    fn check_grid(c: &PopulationsCampaign, samples: &[PopulationSample]) {
        // 4 vps x 3 alphas x 4 transports.
        assert_eq!(samples.len(), 48);
        for s in samples {
            assert_eq!(s.clients, 16);
            assert!(s.stats.queries > 0, "{s:?}");
            // Conservation: every client query was a hit, a coalesced
            // join, an upstream query, or arrived while one of those
            // was still pending at day end.
            assert!(
                s.stats.cache_hits + s.stats.coalesced + s.stats.upstream_queries
                    == s.stats.queries,
                "{s:?}"
            );
            assert!(s.bytes_delivered > 0);
            assert!(s.resolver_queries > 0);
            assert!(!s.resolve_hist.is_empty());
            assert!(s.baseline.is_none());
        }
        // The stub cache must be doing real work somewhere.
        assert!(samples.iter().any(|s| s.stats.cache_hits > 0));
        assert!(samples.iter().any(|s| s.stats.negative_hits > 0));
        // Pooling must amortize handshakes on the encrypted transports.
        assert!(samples
            .iter()
            .filter(|s| s.transport != DnsTransport::DoUdp)
            .any(|s| s.pool_reuses > 0));
        let _ = c;
    }

    fn check_hit_ratio_grows_with_alpha(c: &PopulationsCampaign, samples: &[PopulationSample]) {
        let hit_ratio = |alpha_idx: usize| {
            let (hits, queries) = samples
                .iter()
                .filter(|s| s.alpha_idx == alpha_idx)
                .fold((0u64, 0u64), |(h, q), s| {
                    (h + s.stats.cache_hits, q + s.stats.queries)
                });
            hits as f64 / queries.max(1) as f64
        };
        let (lo, hi) = (hit_ratio(0), hit_ratio(2));
        assert!(lo > 0.0, "alpha {} produced no hits", c.alphas[0]);
        assert!(
            hi > lo,
            "hit ratio did not grow with alpha: {lo:.3} -> {hi:.3}"
        );
    }

    #[test]
    fn campaign_is_deterministic_and_thread_invariant() {
        let (mut c, pop) = tiny_campaign();
        // One alpha and a shorter day: the invariance contract doesn't
        // need the full sweep, and this test runs the campaign thrice.
        c.alphas = vec![0.9];
        c.window = Duration::from_secs(3_600);
        let mut c1 = c.clone();
        c1.scale.threads = 1;
        let mut c4 = c.clone();
        c4.scale.threads = 4;
        let a = run_populations_campaign(&c1, &pop);
        let b = run_populations_campaign(&c4, &pop);
        let again = run_populations_campaign(&c1, &pop);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "thread-variant output");
        assert_eq!(format!("{a:?}"), format!("{again:?}"), "run-variant output");
    }

    #[test]
    fn degenerate_campaign_reproduces_single_query_samples() {
        let scale = Scale {
            threads: 2,
            ..Scale::quick()
        };
        let c = PopulationsCampaign::degenerate(scale);
        let pop = synthesize_dox_population(1);
        let samples = run_populations_campaign(&c, &pop);
        // 4 vps x 1 alpha x 4 transports.
        assert_eq!(samples.len(), 16);
        let sq = c.single_query();
        let vps = vantage_points();
        let mut sim = Simulator::arena();
        for s in &samples {
            let profile = cohort_resolver(&vps[s.vp], &pop);
            assert_eq!(profile.index, s.resolver);
            let plain = run_unit_in(&mut sim, &sq, &vps[s.vp], profile, s.transport, 0);
            assert_eq!(
                format!("{:?}", s.baseline.as_ref().unwrap()),
                format!("{plain:?}"),
                "degenerate unit diverged from the single-query unit"
            );
        }
    }
}
