//! The mobility campaign: single-query measurements across mid-query
//! address changes (wifi → cellular) and cross-transport failover.
//!
//! Each unit is `[vantage point : resolver : regime : protocol :
//! repetition]` — the plain single-query unit of [`crate::single_query`]
//! re-run with a rebind schedule driven against the measured client: at
//! each scheduled offset from handshake completion the client's address
//! is moved onto a fresh "cellular" address with its own
//! [`PathProfile`] overlay, stranding whatever was still in flight to
//! the old address. DoQ survives by RFC 9000 §9 connection migration;
//! the TCP-based transports and DoUDP are stranded and either fail, or
//! recover via the reconnect budget or the cross-transport
//! happy-eyeballs ladder ([`FailoverPolicy`]), depending on the regime.
//!
//! Two reproducibility contracts, pinned by tests here and by the
//! engine invariance suite:
//!
//! * the campaign is bit-identical across thread counts and repeated
//!   runs at a fixed seed;
//! * the zero-rebind baseline regime uses the vanilla policy and the
//!   *single-query campaign's own* unit seeds, so its samples reproduce
//!   that campaign bit for bit.

use crate::engine;
use crate::single_query::{run_unit_custom, SingleQueryCampaign, SingleQuerySample, UnitOptions};
use crate::vantage::vantage_points;
use crate::Scale;
use doqlab_dox::{DnsTransport, FailoverPolicy, FailureKind};
use doqlab_resolver::ResolverProfile;
use doqlab_simnet::path::{GeoPathParams, PathProfile};
use doqlab_simnet::{Duration, Simulator};

/// Environment variable overriding the sweep's first rebind offset in
/// milliseconds from handshake completion ([`standard_mobility_sweep`]).
pub const REBIND_MS_ENV: &str = "DOQLAB_REBIND_MS";

/// Environment variable overriding the sweep's failover stagger in
/// milliseconds ([`standard_mobility_sweep`]).
pub const STAGGER_MS_ENV: &str = "DOQLAB_STAGGER_MS";

fn env_ms(var: &str, default_ms: u64) -> Duration {
    let ms = match std::env::var(var) {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => default_ms,
        },
        Err(_) => default_ms,
    };
    Duration::from_millis(ms)
}

/// One mobility regime: when the client's address changes, what the new
/// path looks like, and how the client fights back.
#[derive(Debug, Clone)]
pub struct MobilityRegime {
    pub name: String,
    /// Address rebinds as `(offset, new-path profile)`; offsets are
    /// from handshake completion (from the phase start for DoUDP).
    pub rebinds: Vec<(Duration, PathProfile)>,
    /// Cross-transport happy-eyeballs ladder (the unit's primary
    /// transport is filtered out of the ladder per unit).
    pub failover: Option<FailoverPolicy>,
    // Resilience policy for the measured connection.
    pub query_deadline: Option<Duration>,
    pub reconnect_max: u32,
    pub reconnect_backoff: Duration,
    /// How long the measured phase may run in simulated time.
    pub run_deadline: Duration,
}

impl MobilityRegime {
    /// The zero-rebind, vanilla-policy control regime.
    pub fn baseline() -> Self {
        MobilityRegime {
            name: "baseline".into(),
            rebinds: Vec::new(),
            failover: None,
            query_deadline: None,
            reconnect_max: 0,
            reconnect_backoff: Duration::from_millis(250),
            run_deadline: Duration::from_secs(20),
        }
    }

    /// No mobility configured: the unit must run on the vanilla
    /// single-query path (same seed, no rebind driver).
    pub fn is_zero(&self) -> bool {
        self.rebinds.is_empty() && self.failover.is_none()
    }
}

/// The default regime sweep: a zero-rebind control, a bare mid-query
/// rebind (the paper-motivating case: only DoQ survives), the same
/// rebind rescued by the reconnect budget, the same rebind rescued by
/// the cross-transport ladder, and a storm of repeated rebinds.
///
/// `DOQLAB_REBIND_MS` overrides the first rebind offset and
/// `DOQLAB_STAGGER_MS` the failover stagger.
pub fn standard_mobility_sweep() -> Vec<MobilityRegime> {
    let rebind_at = env_ms(REBIND_MS_ENV, 5);
    let stagger = env_ms(STAGGER_MS_ENV, 400);
    let cellular = PathProfile {
        extra_delay: Duration::from_millis(20),
        loss: None,
    };
    let rebind = MobilityRegime {
        name: "rebind".into(),
        rebinds: vec![(rebind_at, cellular)],
        query_deadline: Some(Duration::from_secs(15)),
        ..MobilityRegime::baseline()
    };
    let reconnect = MobilityRegime {
        name: "rebind-reconnect".into(),
        query_deadline: Some(Duration::from_secs(30)),
        reconnect_max: 2,
        reconnect_backoff: Duration::from_millis(500),
        run_deadline: Duration::from_secs(40),
        ..rebind.clone()
    };
    let failover = MobilityRegime {
        name: "rebind-failover".into(),
        failover: Some(FailoverPolicy {
            ladder: vec![DnsTransport::DoT, DnsTransport::DoUdp],
            stagger,
        }),
        ..rebind.clone()
    };
    let storm = MobilityRegime {
        name: "rebind-storm".into(),
        rebinds: vec![
            (rebind_at, cellular),
            (Duration::from_secs(1), PathProfile::default()),
            (
                Duration::from_secs(2),
                PathProfile {
                    extra_delay: Duration::from_millis(40),
                    loss: None,
                },
            ),
        ],
        query_deadline: Some(Duration::from_secs(20)),
        reconnect_max: 2,
        reconnect_backoff: Duration::from_millis(500),
        run_deadline: Duration::from_secs(30),
        ..MobilityRegime::baseline()
    };
    vec![
        MobilityRegime::baseline(),
        rebind,
        reconnect,
        failover,
        storm,
    ]
}

/// One mobile measurement: the single-query sample plus the mobility
/// verdict — did the query survive the address change(s), how long the
/// switchover took, and what the recovery cost.
#[derive(Debug, Clone)]
pub struct MobilitySample {
    pub regime: usize,
    pub regime_name: String,
    pub failure: Option<FailureKind>,
    pub reconnects: u32,
    /// Address rebinds actually applied to this unit.
    pub rebinds_applied: u32,
    /// The query produced a response.
    pub survived: bool,
    /// First rebind to response, in milliseconds (`None` when the query
    /// failed, answered before any rebind, or no rebind was applied).
    pub switchover_ms: Option<f64>,
    /// Bytes spent on dead primaries and losing failover rungs.
    pub wasted_bytes: u64,
    /// The transport that answered under a failover race.
    pub winner: Option<DnsTransport>,
    pub sample: SingleQuerySample,
}

/// Campaign configuration. The seed doubles as the single-query
/// campaign seed, so the baseline regime reproduces that campaign's
/// samples exactly.
#[derive(Debug, Clone)]
pub struct MobilityCampaign {
    pub seed: u64,
    pub scale: Scale,
    pub regimes: Vec<MobilityRegime>,
    pub use_resumption: bool,
    pub enable_0rtt_resolvers: bool,
    pub path_params: GeoPathParams,
}

impl MobilityCampaign {
    pub fn new(scale: Scale) -> Self {
        let sq = SingleQueryCampaign::new(scale.clone());
        MobilityCampaign {
            seed: sq.seed,
            scale,
            regimes: standard_mobility_sweep(),
            use_resumption: true,
            enable_0rtt_resolvers: false,
            path_params: GeoPathParams::default(),
        }
    }

    /// The single-query campaign every unit of this one embeds.
    fn single_query(&self) -> SingleQueryCampaign {
        SingleQueryCampaign {
            seed: self.seed,
            scale: self.scale.clone(),
            use_resumption: self.use_resumption,
            enable_0rtt_resolvers: self.enable_0rtt_resolvers,
            path_params: self.path_params.clone(),
        }
    }
}

/// Domain separation for mobile regimes' unit seeds. The baseline
/// regime deliberately does NOT use it: it runs on the single-query
/// campaign's own seeds to stay bit-identical with it.
const MOBILITY_SEED_DOMAIN: u64 = 0x3069_11E7_0D05_2022;

/// Run one `[vp : resolver : regime : protocol : repetition]` unit in a
/// reusable simulator arena.
pub fn run_mobility_unit(
    sim: &mut Simulator,
    campaign: &MobilityCampaign,
    vp: usize,
    profile: &ResolverProfile,
    regime_idx: usize,
    transport: DnsTransport,
    rep: usize,
) -> MobilitySample {
    let regime = &campaign.regimes[regime_idx];
    let sq = campaign.single_query();
    let opts = if regime.is_zero() {
        // The vanilla path: standard seed, no rebind driver, no extra
        // RNG draws — bit-identical to the single-query unit.
        UnitOptions::default()
    } else {
        UnitOptions {
            seed: Some(engine::unit_seed(
                campaign.seed ^ MOBILITY_SEED_DOMAIN,
                &[
                    regime_idx as u64,
                    vp as u64,
                    profile.index as u64,
                    transport as u64,
                    rep as u64,
                ],
            )),
            query_deadline: regime.query_deadline,
            reconnect_max: regime.reconnect_max,
            reconnect_backoff: regime.reconnect_backoff,
            run_deadline: regime.run_deadline,
            rebinds: regime.rebinds.clone(),
            failover: regime.failover.clone().map(|mut p| {
                p.ladder.retain(|t| *t != transport);
                p
            }),
            ..UnitOptions::default()
        }
    };
    let vps = vantage_points();
    let out = run_unit_custom(sim, &sq, &vps[vp], profile, transport, rep, &opts);
    let first_rebind_ms = out.first_rebind_at.map(|t| t.as_millis_f64());
    let response_ms = out
        .sample
        .resolve_ms
        .map(|ms| out.hs_done.unwrap_or(out.started).as_millis_f64() + ms);
    let switchover_ms = match (first_rebind_ms, response_ms) {
        (Some(rb), Some(resp)) if resp >= rb => Some(resp - rb),
        _ => None,
    };
    MobilitySample {
        regime: regime_idx,
        regime_name: regime.name.clone(),
        failure: out.failure,
        reconnects: out.reconnects,
        rebinds_applied: out.rebinds_applied,
        survived: !out.sample.failed,
        switchover_ms,
        wasted_bytes: out.wasted_bytes,
        winner: out.winner,
        sample: out.sample,
    }
}

/// Run the campaign: every vantage point x resolver x regime x protocol
/// x repetition, scheduled by the work-stealing engine on per-worker
/// simulator arenas (regimes ride the grid's `pages` axis). Output
/// order and content are independent of thread count.
pub fn run_mobility_campaign(
    campaign: &MobilityCampaign,
    population: &[ResolverProfile],
) -> Vec<MobilitySample> {
    let vps = vantage_points();
    let resolvers = campaign.scale.sample_resolvers(population);
    let grid = engine::UnitGrid {
        vps: vps.len(),
        resolvers: resolvers.len(),
        pages: campaign.regimes.len(),
        transports: DnsTransport::ALL.len(),
        reps: campaign.scale.repetitions,
    };
    let units = grid.units();
    engine::run_units(
        engine::env_threads(campaign.scale.threads),
        &units,
        Simulator::arena,
        |sim, u, _| {
            run_mobility_unit(
                sim,
                campaign,
                u.vp,
                resolvers[u.resolver],
                u.page,
                DnsTransport::ALL[u.transport],
                u.rep,
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_query::run_single_query_campaign;
    use doqlab_resolver::synthesize_dox_population;

    fn tiny_campaign() -> (MobilityCampaign, Vec<ResolverProfile>) {
        let scale = Scale {
            resolvers: Some(2),
            repetitions: 1,
            threads: 2,
            ..Scale::quick()
        };
        (MobilityCampaign::new(scale), synthesize_dox_population(1))
    }

    #[test]
    fn standard_sweep_leads_with_a_zero_baseline() {
        let sweep = standard_mobility_sweep();
        assert_eq!(sweep[0].name, "baseline");
        assert!(sweep[0].is_zero());
        assert_eq!(sweep[0].reconnect_max, 0);
        assert!(sweep[0].query_deadline.is_none());
        assert!(sweep.iter().skip(1).all(|r| !r.is_zero()));
        assert!(sweep.iter().skip(1).all(|r| !r.rebinds.is_empty()));
        assert!(sweep.iter().skip(1).all(|r| r.query_deadline.is_some()));
    }

    #[test]
    fn campaign_produces_the_full_regime_grid() {
        let (c, pop) = tiny_campaign();
        let samples = run_mobility_campaign(&c, &pop);
        // 6 vps x 2 resolvers x 5 regimes x 5 protocols x 1 rep.
        assert_eq!(samples.len(), 300);
        for (i, r) in c.regimes.iter().enumerate() {
            let of_r: Vec<_> = samples.iter().filter(|s| s.regime == i).collect();
            assert_eq!(of_r.len(), 60);
            assert!(of_r.iter().all(|s| s.regime_name == r.name));
        }
        // Survival is the inverse of failure; failed units carry a
        // taxonomy verdict, successes never do.
        for s in &samples {
            assert_eq!(s.survived, !s.sample.failed, "{s:?}");
            assert_eq!(s.sample.failed, s.failure.is_some(), "{s:?}");
        }
        // Every non-baseline unit that survived long enough got its
        // first rebind applied.
        for s in samples.iter().filter(|s| s.regime == 1) {
            assert!(s.rebinds_applied >= 1, "{s:?}");
        }
    }

    #[test]
    fn baseline_regime_reproduces_single_query_samples() {
        let (c, pop) = tiny_campaign();
        let mobile = run_mobility_campaign(&c, &pop);
        let sq = SingleQueryCampaign {
            seed: c.seed,
            scale: c.scale.clone(),
            use_resumption: c.use_resumption,
            enable_0rtt_resolvers: c.enable_0rtt_resolvers,
            path_params: c.path_params.clone(),
        };
        let plain = run_single_query_campaign(&sq, &pop);
        let baseline: Vec<_> = mobile.iter().filter(|s| s.regime == 0).collect();
        assert_eq!(baseline.len(), plain.len());
        for (b, p) in baseline.iter().zip(&plain) {
            assert_eq!(
                format!("{:?}", b.sample),
                format!("{p:?}"),
                "baseline diverged from the single-query campaign"
            );
            assert_eq!(b.reconnects, 0);
            assert_eq!(b.rebinds_applied, 0);
            assert_eq!(b.wasted_bytes, 0);
            assert!(b.winner.is_none());
        }
    }

    #[test]
    fn doq_survives_the_rebind_the_other_transports_do_not() {
        // The campaign's headline claim, pinned: under the bare-rebind
        // regime (no reconnects, no failover) the mid-query address
        // change strands every in-flight answer — only DoQ's connection
        // migration recovers it. Every DoQ unit survives with zero
        // failures; every DoUDP and DoT unit fails.
        let (c, pop) = tiny_campaign();
        let samples = run_mobility_campaign(&c, &pop);
        let rebind: Vec<_> = samples.iter().filter(|s| s.regime == 1).collect();
        assert!(!rebind.is_empty());
        for s in &rebind {
            match s.sample.transport {
                DnsTransport::DoQ => {
                    assert!(s.survived, "DoQ unit failed under rebind: {s:?}");
                    assert!(s.failure.is_none());
                    assert_eq!(s.reconnects, 0, "migration, not reconnection: {s:?}");
                    assert!(
                        s.switchover_ms.is_some(),
                        "DoQ answered before the rebind: {s:?}"
                    );
                }
                DnsTransport::DoUdp | DnsTransport::DoT => {
                    assert!(
                        !s.survived,
                        "{} survived a stranding rebind: {s:?}",
                        s.sample.transport
                    );
                    assert!(s.failure.is_some());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn failover_ladder_rescues_non_doq_transports() {
        let (c, pop) = tiny_campaign();
        let samples = run_mobility_campaign(&c, &pop);
        let failover: Vec<_> = samples.iter().filter(|s| s.regime == 3).collect();
        assert!(!failover.is_empty());
        // The ladder dials fresh rungs from the post-rebind address, so
        // stranded primaries recover; rescued units book the dead
        // primary's bytes as waste and report the winning transport.
        for s in &failover {
            assert!(s.survived, "failover left a unit dead: {s:?}");
            if s.winner.is_some_and(|w| w != s.sample.transport) {
                assert!(s.wasted_bytes > 0, "free rescue: {s:?}");
            }
        }
        let rescued = failover
            .iter()
            .filter(|s| s.winner.is_some_and(|w| w != s.sample.transport))
            .count();
        assert!(rescued > 0, "no unit needed the ladder");
    }

    #[test]
    fn reconnect_budget_rescues_stranded_transports() {
        let (c, pop) = tiny_campaign();
        let samples = run_mobility_campaign(&c, &pop);
        let reconnect: Vec<_> = samples.iter().filter(|s| s.regime == 2).collect();
        assert!(!reconnect.is_empty());
        // DoQ migrates without touching the budget; at least one
        // stranded transport redials from the new address and recovers.
        for s in reconnect
            .iter()
            .filter(|s| s.sample.transport == DnsTransport::DoQ && s.switchover_ms.is_some())
        {
            assert_eq!(s.reconnects, 0, "{s:?}");
        }
        let redialed = reconnect
            .iter()
            .filter(|s| s.survived && s.reconnects > 0)
            .count();
        assert!(redialed > 0, "no stranded unit recovered via reconnect");
    }
}
