//! The fault-injection campaign: single-query measurements under
//! deterministic network impairments.
//!
//! Each unit is `[vantage point : resolver : regime : protocol :
//! repetition]` — the plain single-query unit of [`crate::single_query`]
//! re-run with an [`ImpairmentSchedule`] installed for the measured
//! phase and a per-regime resilience policy (query deadline, reconnect
//! budget) on the measured connection. The cache-warming phase always
//! runs unimpaired, so every regime measures the same warmed resolver.
//!
//! Two reproducibility contracts, both pinned by the engine invariance
//! tests:
//!
//! * the campaign is bit-identical across thread counts and repeated
//!   runs at a fixed seed (all randomness flows through the unit's
//!   seeded RNG);
//! * the zero-impairment baseline regime uses the vanilla resilience
//!   policy and the *single-query campaign's own* unit seeds, so its
//!   samples reproduce that campaign bit for bit.

use crate::engine;
use crate::single_query::{run_unit_custom, SingleQueryCampaign, SingleQuerySample, UnitOptions};
use crate::vantage::vantage_points;
use crate::Scale;
use doqlab_dox::{DnsTransport, FailureKind};
use doqlab_resolver::ResolverProfile;
use doqlab_simnet::path::GeoPathParams;
use doqlab_simnet::{Duration, GilbertElliott, ImpairmentSchedule, SimTime, Simulator};

/// One impairment regime: what breaks on the path, and how hard the
/// client fights back.
#[derive(Debug, Clone)]
pub struct ImpairmentRegime {
    pub name: String,
    /// Gilbert–Elliott burst loss on every routed packet.
    pub burst: Option<GilbertElliott>,
    /// Blackhole windows as `(start, end)` offsets from the measured
    /// phase's first packet.
    pub outages: Vec<(Duration, Duration)>,
    /// Probability a delivered packet is held back by `reorder_extra`.
    pub reorder_prob: f64,
    pub reorder_extra: Duration,
    /// Probability a delivered packet arrives twice.
    pub duplicate_prob: f64,
    // Resilience policy for the measured connection.
    pub query_deadline: Option<Duration>,
    pub reconnect_max: u32,
    pub reconnect_backoff: Duration,
}

impl ImpairmentRegime {
    /// The zero-impairment, vanilla-policy control regime.
    pub fn baseline() -> Self {
        ImpairmentRegime {
            name: "baseline".into(),
            burst: None,
            outages: Vec::new(),
            reorder_prob: 0.0,
            reorder_extra: Duration::ZERO,
            duplicate_prob: 0.0,
            query_deadline: None,
            reconnect_max: 0,
            reconnect_backoff: Duration::from_millis(250),
        }
    }

    /// No impairment configured: the unit must run on the vanilla
    /// single-query path (same seed, no schedule installed).
    pub fn is_zero(&self) -> bool {
        self.burst.is_none()
            && self.outages.is_empty()
            && self.reorder_prob == 0.0
            && self.duplicate_prob == 0.0
    }

    /// Materialize the schedule for a measured phase starting at
    /// `start` (outage offsets become absolute windows).
    pub fn schedule_at(&self, start: SimTime) -> ImpairmentSchedule {
        let mut s = ImpairmentSchedule::new();
        if let Some(ge) = &self.burst {
            s = s.with_burst(ge.clone());
        }
        for (from, to) in &self.outages {
            s = s.with_outage(start + *from, start + *to);
        }
        if self.reorder_prob > 0.0 {
            s = s.with_reorder(self.reorder_prob, self.reorder_extra);
        }
        if self.duplicate_prob > 0.0 {
            s = s.with_duplicate(self.duplicate_prob);
        }
        s
    }
}

/// The default regime sweep: a zero-impairment control, two burst-loss
/// intensities (~1.5% and ~11% stationary loss), a mid-handshake
/// blackhole, and everything at once.
pub fn standard_sweep() -> Vec<ImpairmentRegime> {
    let impaired_policy = |mut r: ImpairmentRegime| {
        r.query_deadline = Some(Duration::from_secs(15));
        r.reconnect_max = 2;
        r.reconnect_backoff = Duration::from_millis(500);
        r
    };
    let loss_light = ImpairmentRegime {
        name: "loss-light".into(),
        burst: Some(GilbertElliott::new(0.01, 0.4, 0.0, 0.6)),
        ..ImpairmentRegime::baseline()
    };
    let loss_heavy = ImpairmentRegime {
        name: "loss-heavy".into(),
        burst: Some(GilbertElliott::new(0.05, 0.25, 0.01, 0.6)),
        ..ImpairmentRegime::baseline()
    };
    let outage = ImpairmentRegime {
        name: "outage".into(),
        outages: vec![(Duration::from_millis(100), Duration::from_millis(1100))],
        ..ImpairmentRegime::baseline()
    };
    let chaos = ImpairmentRegime {
        name: "chaos".into(),
        burst: Some(GilbertElliott::new(0.02, 0.3, 0.005, 0.5)),
        outages: vec![(Duration::from_millis(300), Duration::from_millis(800))],
        reorder_prob: 0.02,
        reorder_extra: Duration::from_millis(30),
        duplicate_prob: 0.01,
        ..ImpairmentRegime::baseline()
    };
    vec![
        ImpairmentRegime::baseline(),
        impaired_policy(loss_light),
        impaired_policy(loss_heavy),
        impaired_policy(outage),
        impaired_policy(chaos),
    ]
}

/// One impaired measurement: the single-query sample plus the
/// failure-taxonomy verdict and the reconnect count.
#[derive(Debug, Clone)]
pub struct ImpairmentSample {
    pub regime: usize,
    pub regime_name: String,
    pub failure: Option<FailureKind>,
    pub reconnects: u32,
    pub sample: SingleQuerySample,
}

/// Campaign configuration. The seed doubles as the single-query
/// campaign seed, so the baseline regime reproduces that campaign's
/// samples exactly.
#[derive(Debug, Clone)]
pub struct ImpairmentsCampaign {
    pub seed: u64,
    pub scale: Scale,
    pub regimes: Vec<ImpairmentRegime>,
    pub use_resumption: bool,
    pub enable_0rtt_resolvers: bool,
    pub path_params: GeoPathParams,
}

impl ImpairmentsCampaign {
    pub fn new(scale: Scale) -> Self {
        let sq = SingleQueryCampaign::new(scale.clone());
        ImpairmentsCampaign {
            seed: sq.seed,
            scale,
            regimes: standard_sweep(),
            use_resumption: true,
            enable_0rtt_resolvers: false,
            path_params: GeoPathParams::default(),
        }
    }

    /// The single-query campaign every unit of this one embeds.
    fn single_query(&self) -> SingleQueryCampaign {
        SingleQueryCampaign {
            seed: self.seed,
            scale: self.scale.clone(),
            use_resumption: self.use_resumption,
            enable_0rtt_resolvers: self.enable_0rtt_resolvers,
            path_params: self.path_params.clone(),
        }
    }
}

/// Domain separation for impaired regimes' unit seeds. The baseline
/// regime deliberately does NOT use it: it runs on the single-query
/// campaign's own seeds to stay bit-identical with it.
const IMPAIR_SEED_DOMAIN: u64 = 0xBAD_11E7_0F0F_2022;

/// Run one `[vp : resolver : regime : protocol : repetition]` unit in a
/// reusable simulator arena.
pub fn run_impairment_unit(
    sim: &mut Simulator,
    campaign: &ImpairmentsCampaign,
    vp: usize,
    profile: &ResolverProfile,
    regime_idx: usize,
    transport: DnsTransport,
    rep: usize,
) -> ImpairmentSample {
    let regime = &campaign.regimes[regime_idx];
    let sq = campaign.single_query();
    let opts = if regime.is_zero() {
        // The vanilla path: standard seed, no schedule installed, no
        // extra RNG draws — bit-identical to the single-query unit.
        UnitOptions::default()
    } else {
        let r = regime.clone();
        UnitOptions {
            seed: Some(engine::unit_seed(
                campaign.seed ^ IMPAIR_SEED_DOMAIN,
                &[
                    regime_idx as u64,
                    vp as u64,
                    profile.index as u64,
                    transport as u64,
                    rep as u64,
                ],
            )),
            impairment: Some(Box::new(move |start| r.schedule_at(start))),
            query_deadline: regime.query_deadline,
            reconnect_max: regime.reconnect_max,
            reconnect_backoff: regime.reconnect_backoff,
            run_deadline: Duration::from_secs(20),
            ..UnitOptions::default()
        }
    };
    let vps = vantage_points();
    let out = run_unit_custom(sim, &sq, &vps[vp], profile, transport, rep, &opts);
    ImpairmentSample {
        regime: regime_idx,
        regime_name: regime.name.clone(),
        failure: out.failure,
        reconnects: out.reconnects,
        sample: out.sample,
    }
}

/// Run the campaign: every vantage point x resolver x regime x protocol
/// x repetition, scheduled by the work-stealing engine on per-worker
/// simulator arenas (regimes ride the grid's `pages` axis). Output
/// order and content are independent of thread count.
pub fn run_impairments_campaign(
    campaign: &ImpairmentsCampaign,
    population: &[ResolverProfile],
) -> Vec<ImpairmentSample> {
    let vps = vantage_points();
    let resolvers = campaign.scale.sample_resolvers(population);
    let grid = engine::UnitGrid {
        vps: vps.len(),
        resolvers: resolvers.len(),
        pages: campaign.regimes.len(),
        transports: DnsTransport::ALL.len(),
        reps: campaign.scale.repetitions,
    };
    let units = grid.units();
    engine::run_units(
        engine::env_threads(campaign.scale.threads),
        &units,
        Simulator::arena,
        |sim, u, _| {
            run_impairment_unit(
                sim,
                campaign,
                u.vp,
                resolvers[u.resolver],
                u.page,
                DnsTransport::ALL[u.transport],
                u.rep,
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_query::run_single_query_campaign;
    use doqlab_resolver::synthesize_dox_population;

    fn tiny_campaign() -> (ImpairmentsCampaign, Vec<ResolverProfile>) {
        let scale = Scale {
            resolvers: Some(2),
            repetitions: 1,
            threads: 2,
            ..Scale::quick()
        };
        (
            ImpairmentsCampaign::new(scale),
            synthesize_dox_population(1),
        )
    }

    #[test]
    fn standard_sweep_leads_with_a_zero_baseline() {
        let sweep = standard_sweep();
        assert_eq!(sweep[0].name, "baseline");
        assert!(sweep[0].is_zero());
        assert_eq!(sweep[0].reconnect_max, 0);
        assert!(sweep[0].query_deadline.is_none());
        assert!(sweep.iter().skip(1).all(|r| !r.is_zero()));
        assert!(sweep.iter().skip(1).all(|r| r.query_deadline.is_some()));
    }

    #[test]
    fn campaign_produces_the_full_regime_grid() {
        let (c, pop) = tiny_campaign();
        let samples = run_impairments_campaign(&c, &pop);
        // 6 vps x 2 resolvers x 5 regimes x 5 protocols x 1 rep.
        assert_eq!(samples.len(), 300);
        for (i, r) in c.regimes.iter().enumerate() {
            let of_r: Vec<_> = samples.iter().filter(|s| s.regime == i).collect();
            assert_eq!(of_r.len(), 60);
            assert!(of_r.iter().all(|s| s.regime_name == r.name));
        }
        // Failed units carry a taxonomy verdict; successes never do.
        for s in &samples {
            assert_eq!(s.sample.failed, s.failure.is_some(), "{s:?}");
        }
    }

    #[test]
    fn baseline_regime_reproduces_single_query_samples() {
        let (c, pop) = tiny_campaign();
        let impaired = run_impairments_campaign(&c, &pop);
        let sq = SingleQueryCampaign {
            seed: c.seed,
            scale: c.scale.clone(),
            use_resumption: c.use_resumption,
            enable_0rtt_resolvers: c.enable_0rtt_resolvers,
            path_params: c.path_params.clone(),
        };
        let plain = run_single_query_campaign(&sq, &pop);
        let baseline: Vec<_> = impaired.iter().filter(|s| s.regime == 0).collect();
        assert_eq!(baseline.len(), plain.len());
        for (b, p) in baseline.iter().zip(&plain) {
            assert_eq!(
                format!("{:?}", b.sample),
                format!("{p:?}"),
                "baseline diverged from the single-query campaign"
            );
            assert_eq!(b.reconnects, 0);
        }
    }

    #[test]
    fn heavy_loss_degrades_at_least_some_units() {
        let (c, pop) = tiny_campaign();
        let samples = run_impairments_campaign(&c, &pop);
        let resolve_sum = |regime: usize| {
            samples
                .iter()
                .filter(|s| s.regime == regime)
                .filter_map(|s| s.sample.resolve_ms)
                .sum::<f64>()
        };
        // Heavy burst loss must visibly slow the sweep relative to the
        // baseline (retransmissions, handshake stalls).
        assert!(
            resolve_sum(2) > resolve_sum(0) * 1.05,
            "loss-heavy {} vs baseline {}",
            resolve_sum(2),
            resolve_sum(0)
        );
    }

    #[test]
    fn reconnect_after_outage_recovers_the_query() {
        // A 16 s blackhole outlives DoUDP's full retry budget (15 s):
        // the first connection dies inside the outage, the host dials a
        // replacement after backoff, and the re-issued query succeeds
        // once the outage lifts.
        let (c, pop) = tiny_campaign();
        let regime = ImpairmentRegime {
            name: "blackhole".into(),
            outages: vec![(Duration::ZERO, Duration::from_secs(16))],
            query_deadline: Some(Duration::from_secs(35)),
            reconnect_max: 2,
            reconnect_backoff: Duration::from_millis(500),
            ..ImpairmentRegime::baseline()
        };
        let r = regime.clone();
        let opts = UnitOptions {
            seed: Some(0xD1A1),
            impairment: Some(Box::new(move |start| r.schedule_at(start))),
            query_deadline: regime.query_deadline,
            reconnect_max: regime.reconnect_max,
            reconnect_backoff: regime.reconnect_backoff,
            run_deadline: Duration::from_secs(40),
            ..UnitOptions::default()
        };
        let mut sim = Simulator::arena();
        let vps = vantage_points();
        let out = run_unit_custom(
            &mut sim,
            &c.single_query(),
            &vps[0],
            &pop[0],
            DnsTransport::DoUdp,
            0,
            &opts,
        );
        assert!(out.reconnects >= 1, "no replacement connection dialed");
        assert!(
            !out.sample.failed,
            "query did not recover: {:?}",
            out.failure
        );
        assert!(out.failure.is_none());
        // The replacement dialed at ~15.5 s still had its first send
        // blackholed (outage ends at 16 s); only its 5 s retry got
        // through, so the resolve time carries that full retry wait.
        assert!(out.sample.resolve_ms.unwrap() > 4_000.0);
    }

    #[test]
    fn permanent_blackhole_is_deadline_classified() {
        // An outage covering the whole run plus a 5 s deadline: the
        // transport has not yet diagnosed anything when the deadline
        // fires, so the verdict is deadline-exceeded.
        let (c, pop) = tiny_campaign();
        let regime = ImpairmentRegime {
            name: "dead".into(),
            outages: vec![(Duration::ZERO, Duration::from_secs(60))],
            query_deadline: Some(Duration::from_secs(5)),
            reconnect_max: 0,
            ..ImpairmentRegime::baseline()
        };
        let r = regime.clone();
        let opts = UnitOptions {
            seed: Some(0xDEAD),
            impairment: Some(Box::new(move |start| r.schedule_at(start))),
            query_deadline: regime.query_deadline,
            reconnect_max: 0,
            reconnect_backoff: regime.reconnect_backoff,
            run_deadline: Duration::from_secs(20),
            ..UnitOptions::default()
        };
        let mut sim = Simulator::arena();
        let vps = vantage_points();
        let out = run_unit_custom(
            &mut sim,
            &c.single_query(),
            &vps[0],
            &pop[0],
            DnsTransport::DoUdp,
            0,
            &opts,
        );
        assert!(out.sample.failed);
        assert_eq!(out.failure, Some(FailureKind::DeadlineExceeded));
        assert_eq!(out.reconnects, 0);
    }

    #[test]
    fn outage_regime_recovers_or_classifies_failures() {
        let (c, pop) = tiny_campaign();
        let samples = run_impairments_campaign(&c, &pop);
        let outage: Vec<_> = samples.iter().filter(|s| s.regime == 3).collect();
        assert!(!outage.is_empty());
        // Every unit either produced a response (possibly after a
        // reconnect) or carries a failure classification.
        for s in &outage {
            assert!(
                !s.sample.failed || s.failure.is_some(),
                "unclassified failure: {s:?}"
            );
        }
        let ok = outage.iter().filter(|s| !s.sample.failed).count();
        assert!(
            ok as f64 / outage.len() as f64 > 0.5,
            "outage recovery too weak: {ok}/{}",
            outage.len()
        );
    }
}
