//! §3.1 — the single-query campaign.
//!
//! One measurement unit is `[vantage point : resolver : protocol :
//! repetition]`. Following §2's methodology, each unit runs in its own
//! micro-simulation:
//!
//! 1. a **cache-warming query** for `google.com` over a fresh
//!    connection: the resolver recurses and caches; the client captures
//!    the TLS session ticket, the QUIC NEW_TOKEN and the negotiated
//!    QUIC version;
//! 2. the **measured query** over a new connection that presents the
//!    captured material (Session Resumption + token, per the DoQ RFC's
//!    recommendation), answered from the warm cache.
//!
//! The sample records the handshake time (first transport packet ->
//! session established), the resolve time (first DNS-query packet ->
//! valid response) and the per-direction, per-phase IP payload bytes
//! of Table 1.

use crate::vantage::{vantage_points, VantagePoint};
use crate::Scale;
use doqlab_dnswire::{Message, Name, RecordType};
use doqlab_dox::{ClientConfig, ConnMetadata, DnsClientHost, DnsTransport, SessionState};
use doqlab_resolver::{RecursionModel, ResolverHost, ResolverProfile};
use doqlab_simnet::geo::Continent;
use doqlab_simnet::path::{GeoPathModel, GeoPathParams};
use doqlab_simnet::{Duration, Ipv4Addr, SimTime, Simulator, SocketAddr};

/// Byte totals per phase and direction (IP payload, like Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBytes {
    pub handshake_c2r: usize,
    pub handshake_r2c: usize,
    pub query_c2r: usize,
    pub response_r2c: usize,
}

impl PhaseBytes {
    pub fn total(&self) -> usize {
        self.handshake_c2r + self.handshake_r2c + self.query_c2r + self.response_r2c
    }
}

/// One measurement.
#[derive(Debug, Clone)]
pub struct SingleQuerySample {
    pub vp: usize,
    pub vp_continent: Continent,
    pub resolver: usize,
    pub resolver_continent: Continent,
    pub transport: DnsTransport,
    /// `None` for DoUDP (connectionless) and for failed handshakes.
    pub handshake_ms: Option<f64>,
    /// First DNS-query packet to valid response.
    pub resolve_ms: Option<f64>,
    pub bytes: PhaseBytes,
    pub metadata: ConnMetadata,
    pub failed: bool,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct SingleQueryCampaign {
    pub seed: u64,
    pub scale: Scale,
    /// Present captured session material on the measured connection
    /// (disable to reproduce the preliminary study's amplification
    /// penalty — ablation A1).
    pub use_resumption: bool,
    /// Upgrade every resolver to support 0-RTT (future-work ablation A3).
    pub enable_0rtt_resolvers: bool,
    pub path_params: GeoPathParams,
}

impl SingleQueryCampaign {
    pub fn new(scale: Scale) -> Self {
        SingleQueryCampaign {
            seed: 0xD05_2022,
            scale,
            use_resumption: true,
            enable_0rtt_resolvers: false,
            path_params: GeoPathParams::default(),
        }
    }
}

fn unit_seed(seed: u64, vp: usize, resolver: usize, transport: usize, rep: usize) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for v in [vp as u64, resolver as u64, transport as u64, rep as u64] {
        h ^= v.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = h.rotate_left(27).wrapping_mul(5).wrapping_add(0x52DC_E729);
    }
    h
}

/// Run a single measurement unit.
pub fn run_unit(
    campaign: &SingleQueryCampaign,
    vp: &VantagePoint,
    profile: &ResolverProfile,
    transport: DnsTransport,
    rep: usize,
) -> SingleQuerySample {
    let seed = unit_seed(campaign.seed, vp.index, profile.index, transport as usize, rep);
    let mut path = GeoPathModel::new(campaign.path_params.clone());
    let warm_ip = Ipv4Addr::new(10, 10, vp.index as u8 + 1, 2);
    let meas_ip = Ipv4Addr::new(10, 10, vp.index as u8 + 1, 3);
    path.place(warm_ip, vp.location);
    path.place(meas_ip, vp.location);
    path.place(profile.ip, profile.location);
    let mut sim = Simulator::new(seed, Box::new(path));
    sim.enable_trace();

    let mut server_cfg = profile.server_config();
    if campaign.enable_0rtt_resolvers {
        server_cfg.enable_0rtt = true;
    }
    sim.add_host(
        Box::new(ResolverHost::new(server_cfg, RecursionModel::default())),
        &[profile.ip],
    );

    let query = Message::query(0x5151, Name::parse("google.com").unwrap(), RecordType::A);
    let remote = SocketAddr::new(profile.ip, transport.port());

    // --- cache warming ----------------------------------------------------
    let warm = DnsClientHost::new(
        transport,
        SocketAddr::new(warm_ip, 40_000),
        remote,
        &ClientConfig::default(),
    );
    let wid = sim.add_host(Box::new(warm), &[warm_ip]);
    sim.with_host::<DnsClientHost, _>(wid, |c, ctx| c.start_with_query(ctx, &query));
    let warm_deadline = sim.now() + Duration::from_secs(20);
    sim.run_until(warm_deadline);
    let session = {
        let warm = sim.host_mut::<DnsClientHost>(wid);
        if warm.responses.is_empty() {
            SessionState::default()
        } else {
            warm.session_state()
        }
    };

    // --- measured query -----------------------------------------------------
    let meas_cfg = ClientConfig {
        session: if campaign.use_resumption { session } else { SessionState::default() },
        ..ClientConfig::default()
    };
    let meas = DnsClientHost::new(
        transport,
        SocketAddr::new(meas_ip, 40_000),
        remote,
        &meas_cfg,
    );
    let mid = sim.add_host(Box::new(meas), &[meas_ip]);
    let started = sim.now();
    sim.with_host::<DnsClientHost, _>(mid, |c, ctx| c.start_with_query(ctx, &query));
    sim.run_until(started + Duration::from_secs(20));

    let meas = sim.host::<DnsClientHost>(mid);
    let hs_done = meas.conn.handshake_done_at();
    let response_at = meas.responses.first().map(|(t, _)| *t);
    let metadata = meas.conn.metadata();
    let failed = response_at.is_none();
    let handshake_ms = match transport {
        DnsTransport::DoUdp => None,
        _ => hs_done.map(|t| (t - started).as_secs_f64() * 1000.0),
    };
    let resolve_from = hs_done.unwrap_or(started);
    let resolve_ms = response_at.map(|t| (t - resolve_from).as_secs_f64() * 1000.0);

    // --- byte accounting --------------------------------------------------
    let trace = sim.trace().expect("enabled");
    let bytes = if transport == DnsTransport::DoQ {
        // QUIC: the handshake phase is exactly the long-header
        // (Initial/Handshake) datagrams; 1-RTT short-header datagrams
        // carry the query and response. This matches how the paper's
        // traces split DoQ's padded flights.
        let mut b = PhaseBytes::default();
        for rec in trace.records() {
            if rec.sent_at < started {
                continue;
            }
            let long = rec.first_byte.is_some_and(|fb| fb & 0x80 != 0);
            let c2r = rec.src.ip == meas_ip && rec.dst.ip == profile.ip;
            let r2c = rec.src.ip == profile.ip && rec.dst.ip == meas_ip;
            match (c2r, r2c, long) {
                (true, _, true) => b.handshake_c2r += rec.ip_payload_len,
                (true, _, false) => b.query_c2r += rec.ip_payload_len,
                (_, true, true) => b.handshake_r2c += rec.ip_payload_len,
                (_, true, false) => b.response_r2c += rec.ip_payload_len,
                _ => {}
            }
        }
        b
    } else {
        let c = SocketAddr::new(meas_ip, 0);
        let r = SocketAddr::new(profile.ip, 0);
        let split =
            hs_done.filter(|_| transport != DnsTransport::DoUdp).unwrap_or(started);
        let far = SimTime::from_secs(1_000_000);
        PhaseBytes {
            handshake_c2r: trace.bytes_between(c, r, started, split),
            handshake_r2c: trace.bytes_between(r, c, started, split),
            query_c2r: trace.bytes_between(c, r, split, far),
            response_r2c: trace.bytes_between(r, c, split, far),
        }
    };

    SingleQuerySample {
        vp: vp.index,
        vp_continent: vp.continent,
        resolver: profile.index,
        resolver_continent: profile.continent,
        transport,
        handshake_ms,
        resolve_ms,
        bytes,
        metadata,
        failed,
    }
}

/// Run the full campaign: every vantage point x resolver x protocol x
/// repetition, sharded across threads.
pub fn run_single_query_campaign(
    campaign: &SingleQueryCampaign,
    population: &[ResolverProfile],
) -> Vec<SingleQuerySample> {
    let vps = vantage_points();
    // Subsample with a stride so a reduced set still spans all
    // continents (the population is ordered by continent).
    let resolvers: Vec<&ResolverProfile> = match campaign.scale.resolvers {
        Some(n) if n < population.len() => {
            let stride = population.len() / n.max(1);
            population.iter().step_by(stride.max(1)).take(n).collect()
        }
        _ => population.iter().collect(),
    };
    let mut units: Vec<(usize, usize, DnsTransport, usize)> = Vec::new();
    for vp in &vps {
        for r in &resolvers {
            for t in DnsTransport::ALL {
                for rep in 0..campaign.scale.repetitions {
                    units.push((vp.index, r.index, t, rep));
                }
            }
        }
    }
    let threads = campaign.scale.threads.max(1);
    let chunk = units.len().div_ceil(threads);
    let mut samples: Vec<SingleQuerySample> = Vec::with_capacity(units.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = units
            .chunks(chunk.max(1))
            .map(|chunk| {
                let vps = &vps;
                let resolvers = &resolvers;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|&(vp, r, t, rep)| {
                            let profile = resolvers
                                .iter()
                                .find(|p| p.index == r)
                                .expect("listed");
                            run_unit(campaign, &vps[vp], profile, t, rep)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            samples.extend(h.join().expect("worker panicked"));
        }
    });
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use doqlab_resolver::synthesize_dox_population;

    fn tiny_campaign() -> (SingleQueryCampaign, Vec<ResolverProfile>) {
        let scale = Scale { resolvers: Some(3), repetitions: 1, threads: 2, ..Scale::quick() };
        (SingleQueryCampaign::new(scale), synthesize_dox_population(1))
    }

    #[test]
    fn campaign_produces_all_units() {
        let (c, pop) = tiny_campaign();
        let samples = run_single_query_campaign(&c, &pop);
        // 6 vps x 3 resolvers x 5 protocols x 1 rep.
        assert_eq!(samples.len(), 90);
        let ok = samples.iter().filter(|s| !s.failed).count();
        assert!(ok as f64 / samples.len() as f64 > 0.95, "ok = {ok}/90");
    }

    #[test]
    fn handshake_ordering_matches_paper() {
        let (c, pop) = tiny_campaign();
        let samples = run_single_query_campaign(&c, &pop);
        let med = |t: DnsTransport| {
            crate::stats::median(
                &samples
                    .iter()
                    .filter(|s| s.transport == t && !s.failed)
                    .filter_map(|s| s.handshake_ms)
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        let (tcp, doq, dot, doh) = (
            med(DnsTransport::DoTcp),
            med(DnsTransport::DoQ),
            med(DnsTransport::DoT),
            med(DnsTransport::DoH),
        );
        // Fig. 2a: DoTCP ~ DoQ ~ half of DoT ~ DoH.
        assert!((doq / tcp - 1.0).abs() < 0.2, "DoQ {doq} vs DoTCP {tcp}");
        assert!(dot / doq > 1.6, "DoT {dot} vs DoQ {doq}");
        assert!(doh / doq > 1.6, "DoH {doh} vs DoQ {doq}");
        assert!((dot / doh - 1.0).abs() < 0.2, "DoT {dot} vs DoH {doh}");
    }

    #[test]
    fn resolve_times_similar_across_protocols() {
        let (c, pop) = tiny_campaign();
        let samples = run_single_query_campaign(&c, &pop);
        let med = |t: DnsTransport| {
            crate::stats::median(
                &samples
                    .iter()
                    .filter(|s| s.transport == t)
                    .filter_map(|s| s.resolve_ms)
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        let meds: Vec<f64> = DnsTransport::ALL.iter().map(|t| med(*t)).collect();
        let max = meds.iter().cloned().fold(f64::MIN, f64::max);
        let min = meds.iter().cloned().fold(f64::MAX, f64::min);
        // Fig. 2b: cached answers -> all protocols within ~1 RTT band.
        assert!(max / min < 1.5, "medians spread too wide: {meds:?}");
    }

    #[test]
    fn doq_uses_resumption_and_remembered_version() {
        let (c, pop) = tiny_campaign();
        let samples = run_single_query_campaign(&c, &pop);
        let doq: Vec<_> =
            samples.iter().filter(|s| s.transport == DnsTransport::DoQ && !s.failed).collect();
        assert!(!doq.is_empty());
        assert!(doq.iter().all(|s| s.metadata.resumed), "all DoQ measured queries resume");
        assert!(doq.iter().all(|s| s.metadata.quic_version.is_some()));
        assert!(doq.iter().all(|s| s.metadata.doq_alpn.is_some()));
    }

    #[test]
    fn byte_shape_matches_table1() {
        let (c, pop) = tiny_campaign();
        let samples = run_single_query_campaign(&c, &pop);
        let med_total = |t: DnsTransport| {
            crate::stats::median(
                &samples
                    .iter()
                    .filter(|s| s.transport == t && !s.failed)
                    .map(|s| s.bytes.total() as f64)
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        let udp = med_total(DnsTransport::DoUdp);
        let tcp = med_total(DnsTransport::DoTcp);
        let doq = med_total(DnsTransport::DoQ);
        let doh = med_total(DnsTransport::DoH);
        let dot = med_total(DnsTransport::DoT);
        assert!(udp < tcp && tcp < dot && dot < doh && doh < doq,
            "Table 1 ordering: udp {udp} tcp {tcp} dot {dot} doh {doh} doq {doq}");
        // DoQ handshake roughly doubles DoH's total (1200-byte padding).
        assert!(doq / doh > 1.5, "doq {doq} vs doh {doh}");
    }

    #[test]
    fn no_resumption_ablation_increases_doq_handshake_sometimes() {
        let scale = Scale { resolvers: Some(8), repetitions: 1, threads: 2, ..Scale::quick() };
        let pop = synthesize_dox_population(1);
        let with = SingleQueryCampaign::new(scale.clone());
        let without = SingleQueryCampaign { use_resumption: false, ..SingleQueryCampaign::new(scale) };
        let s_with = run_single_query_campaign(&with, &pop);
        let s_without = run_single_query_campaign(&without, &pop);
        let med = |ss: &[SingleQuerySample]| {
            crate::stats::median(
                &ss.iter()
                    .filter(|s| s.transport == DnsTransport::DoQ)
                    .filter_map(|s| s.handshake_ms)
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        // Without resumption, large certificates hit the amplification
        // limit: the handshake median rises.
        assert!(med(&s_without) > med(&s_with) * 1.1,
            "without {} vs with {}", med(&s_without), med(&s_with));
    }
}
