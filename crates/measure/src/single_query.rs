//! §3.1 — the single-query campaign.
//!
//! One measurement unit is `[vantage point : resolver : protocol :
//! repetition]`. Following §2's methodology, each unit runs in its own
//! micro-simulation:
//!
//! 1. a **cache-warming query** for `google.com` over a fresh
//!    connection: the resolver recurses and caches; the client captures
//!    the TLS session ticket, the QUIC NEW_TOKEN and the negotiated
//!    QUIC version;
//! 2. the **measured query** over a new connection that presents the
//!    captured material (Session Resumption + token, per the DoQ RFC's
//!    recommendation), answered from the warm cache.
//!
//! The sample records the handshake time (first transport packet ->
//! session established), the resolve time (first DNS-query packet ->
//! valid response) and the per-direction, per-phase IP payload bytes
//! of Table 1. Byte accounting is streaming: a [`PhaseByteTap`]
//! classifies packets as the simulator routes them, so a unit never
//! retains its full packet trace. The campaign itself is a unit grid
//! executed by [`crate::engine`] on reusable simulator arenas.

use crate::engine;
use crate::vantage::{vantage_points, VantagePoint};
use crate::Scale;
use doqlab_dnswire::{Message, Name, RecordType};
use doqlab_dox::{
    ClientConfig, ConnMetadata, DnsClientHost, DnsTransport, FailoverPolicy, FailureKind,
    SessionState,
};
use doqlab_resolver::{RecursionModel, ResolverHost, ResolverProfile};
use doqlab_simnet::geo::Continent;
use doqlab_simnet::path::{GeoPathModel, GeoPathParams, PathProfile};
use doqlab_simnet::{
    Duration, ImpairmentSchedule, Ipv4Addr, PacketRecord, PacketTap, SimTime, Simulator, SocketAddr,
};
use doqlab_telemetry::metrics::{self, Counter, Series};

/// Byte totals per phase and direction (IP payload, like Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBytes {
    pub handshake_c2r: usize,
    pub handshake_r2c: usize,
    pub query_c2r: usize,
    pub response_r2c: usize,
}

impl PhaseBytes {
    pub fn total(&self) -> usize {
        self.handshake_c2r + self.handshake_r2c + self.query_c2r + self.response_r2c
    }
}

/// Streaming Table-1 byte accounting.
///
/// Installed as the simulator's [`PacketTap`] for the measured phase of
/// a unit, it classifies every client<->resolver packet into the four
/// [`PhaseBytes`] buckets the moment it is routed. It replaces the
/// retained [`doqlab_simnet::PacketTrace`] + post-hoc scan the campaign
/// used to do per unit, and produces bit-identical totals:
///
/// * **DoQ** — the long-header bit of the first payload byte marks
///   Initial/Handshake datagrams; short headers carry the 1-RTT query
///   and response.
/// * **Stream transports** — packets sent before the handshake
///   completed are handshake bytes. Until completion is observed the
///   split is unknown, so packets buffer in `pending` (a handful of
///   handshake flights at most) and are classified when
///   [`PhaseByteTap::set_split`] delivers the completion time. If the
///   handshake never completes, [`PhaseByteTap::finish`] classifies
///   everything as query/response — exactly the historical
///   `split = started` accounting for failed handshakes, and for
///   connectionless DoUDP.
#[derive(Debug)]
pub struct PhaseByteTap {
    /// Client addresses, in bind order: the measured client's original
    /// address plus any it rebound to mid-run (mobility units). Almost
    /// always length 1.
    clients: Vec<Ipv4Addr>,
    resolver: Ipv4Addr,
    mode: TapMode,
    /// `(sent_at, client-to-resolver, ip_payload_len)` of packets seen
    /// before the time split is known.
    pending: Vec<(SimTime, bool, usize)>,
    bytes: PhaseBytes,
}

#[derive(Debug, Clone, Copy)]
enum TapMode {
    /// QUIC: classify by the long-header bit, no time split needed.
    QuicHeader,
    /// Stream transports: classify by send time against the handshake
    /// completion instant (`None` while still unobserved).
    TimeSplit(Option<SimTime>),
}

impl PhaseByteTap {
    /// Accounting for DoQ (long/short header classification).
    pub fn quic(client: Ipv4Addr, resolver: Ipv4Addr) -> Self {
        PhaseByteTap {
            clients: vec![client],
            resolver,
            mode: TapMode::QuicHeader,
            pending: Vec::new(),
            bytes: PhaseBytes::default(),
        }
    }

    /// Accounting for stream transports and DoUDP: the handshake/data
    /// split instant is delivered later via [`PhaseByteTap::set_split`].
    pub fn deferred_split(client: Ipv4Addr, resolver: Ipv4Addr) -> Self {
        PhaseByteTap {
            clients: vec![client],
            resolver,
            mode: TapMode::TimeSplit(None),
            pending: Vec::new(),
            bytes: PhaseBytes::default(),
        }
    }

    /// Register an additional client address (a mid-run rebind): bytes
    /// to and from it keep counting toward the same unit.
    pub fn add_client(&mut self, ip: Ipv4Addr) {
        if !self.clients.contains(&ip) {
            self.clients.push(ip);
        }
    }

    /// Deliver the handshake completion instant: buffered packets sent
    /// strictly before `split` are handshake bytes, the rest (and all
    /// subsequent packets) are query/response bytes.
    pub fn set_split(&mut self, split: SimTime) {
        if let TapMode::TimeSplit(slot @ None) = &mut self.mode {
            *slot = Some(split);
            for (sent_at, c2r, len) in std::mem::take(&mut self.pending) {
                self.account(sent_at >= split, c2r, len);
            }
        }
    }

    /// Finalize and return the totals. Packets still pending — the
    /// handshake never completed — all count as query/response, which
    /// is what the historical trace scan did (`split = started`).
    pub fn finish(&mut self) -> PhaseBytes {
        for (_, c2r, len) in std::mem::take(&mut self.pending) {
            self.account(true, c2r, len);
        }
        self.bytes
    }

    fn account(&mut self, app: bool, c2r: bool, len: usize) {
        match (app, c2r) {
            (false, true) => self.bytes.handshake_c2r += len,
            (false, false) => self.bytes.handshake_r2c += len,
            (true, true) => self.bytes.query_c2r += len,
            (true, false) => self.bytes.response_r2c += len,
        }
    }
}

impl PacketTap for PhaseByteTap {
    fn on_packet(&mut self, rec: &PacketRecord) {
        let c2r = self.clients.contains(&rec.src.ip) && rec.dst.ip == self.resolver;
        let r2c = rec.src.ip == self.resolver && self.clients.contains(&rec.dst.ip);
        if !c2r && !r2c {
            return;
        }
        match self.mode {
            TapMode::QuicHeader => {
                self.account(!rec.is_quic_long_header(), c2r, rec.ip_payload_len);
            }
            TapMode::TimeSplit(Some(split)) => {
                self.account(rec.sent_at >= split, c2r, rec.ip_payload_len);
            }
            TapMode::TimeSplit(None) => {
                self.pending.push((rec.sent_at, c2r, rec.ip_payload_len));
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One measurement.
#[derive(Debug, Clone)]
pub struct SingleQuerySample {
    pub vp: usize,
    pub vp_continent: Continent,
    pub resolver: usize,
    pub resolver_continent: Continent,
    pub transport: DnsTransport,
    /// `None` for DoUDP (connectionless) and for failed handshakes.
    pub handshake_ms: Option<f64>,
    /// First DNS-query packet to valid response.
    pub resolve_ms: Option<f64>,
    pub bytes: PhaseBytes,
    pub metadata: ConnMetadata,
    pub failed: bool,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct SingleQueryCampaign {
    pub seed: u64,
    pub scale: Scale,
    /// Present captured session material on the measured connection
    /// (disable to reproduce the preliminary study's amplification
    /// penalty — ablation A1).
    pub use_resumption: bool,
    /// Upgrade every resolver to support 0-RTT (future-work ablation A3).
    pub enable_0rtt_resolvers: bool,
    pub path_params: GeoPathParams,
}

impl SingleQueryCampaign {
    pub fn new(scale: Scale) -> Self {
        SingleQueryCampaign {
            seed: 0xD05_2022,
            scale,
            use_resumption: true,
            enable_0rtt_resolvers: false,
            path_params: GeoPathParams::default(),
        }
    }
}

/// Per-unit overrides, used by the impairments campaign
/// ([`crate::impairments`]). The default is the vanilla unit: standard
/// seed, no impairment, no resilience policy — under which
/// [`run_unit_custom`] is bit-identical to the plain unit runner.
pub struct UnitOptions {
    /// Seed override (`None` → the campaign's standard unit seed).
    pub seed: Option<u64>,
    /// Impairment for the measured phase, built from its start instant
    /// (regimes specify outage windows as offsets from that start).
    /// The warm phase always runs unimpaired.
    pub impairment: Option<Box<dyn Fn(SimTime) -> ImpairmentSchedule>>,
    /// Per-query deadline for the measured connection.
    pub query_deadline: Option<Duration>,
    /// Reconnect budget for the measured connection.
    pub reconnect_max: u32,
    pub reconnect_backoff: Duration,
    /// How long the measured phase may run in simulated time.
    pub run_deadline: Duration,
    /// Mobility schedule: address rebinds applied to the measured
    /// client, each `(offset, profile)` an offset from handshake
    /// completion (from the phase start for DoUDP) onto a fresh address
    /// with the given path overlay. Empty → no mobility, bit-identical
    /// to the vanilla unit.
    pub rebinds: Vec<(Duration, PathProfile)>,
    /// Cross-transport happy-eyeballs ladder for the measured
    /// connection.
    pub failover: Option<FailoverPolicy>,
    /// TCP Fast Open (RFC 7413): the resolver issues cookies, both
    /// clients request them, and the measured DoTCP connection puts the
    /// query on the SYN using the cookie the warming connection cached
    /// — carried even when the campaign disables TLS resumption, since
    /// TFO is an independent mechanism.
    pub tfo: bool,
    /// edns-tcp-keepalive (RFC 7828): the measured client asks the
    /// resolver to hold the DoTCP connection open and the resolver
    /// grants a timeout instead of closing after the first response.
    pub keepalive: bool,
    /// Run DoH units as DNS over HTTP/3 (DoH3) against an
    /// HTTP/3-capable resolver, leaving the other transports untouched.
    /// The unit seed is derived from the nominal transport, so a DoH3
    /// unit pairs bit-for-bit with its DoH baseline.
    pub doh3: bool,
}

impl Default for UnitOptions {
    fn default() -> Self {
        let cfg = ClientConfig::default();
        UnitOptions {
            seed: None,
            impairment: None,
            query_deadline: cfg.query_deadline,
            reconnect_max: cfg.reconnect_max,
            reconnect_backoff: cfg.reconnect_backoff,
            run_deadline: Duration::from_secs(20),
            rebinds: Vec::new(),
            failover: None,
            tfo: false,
            keepalive: false,
            doh3: false,
        }
    }
}

/// Everything a unit run produces beyond the sample itself.
pub struct UnitOutcome {
    pub sample: SingleQuerySample,
    /// The failure taxonomy verdict for the measured query, `None` on
    /// success.
    pub failure: Option<FailureKind>,
    /// Replacement connections the measured client dialed.
    pub reconnects: u32,
    /// When the measured phase started.
    pub started: SimTime,
    /// When the measured handshake completed.
    pub hs_done: Option<SimTime>,
    /// Address rebinds actually applied (a schedule entry past the run
    /// deadline is skipped).
    pub rebinds_applied: u32,
    /// When the first rebind landed.
    pub first_rebind_at: Option<SimTime>,
    /// Bytes spent on losing failover rungs and dead primaries.
    pub wasted_bytes: u64,
    /// The transport that delivered the answer under a failover race.
    pub winner: Option<DnsTransport>,
}

/// Run a single measurement unit in a simulator of its own.
pub fn run_unit(
    campaign: &SingleQueryCampaign,
    vp: &VantagePoint,
    profile: &ResolverProfile,
    transport: DnsTransport,
    rep: usize,
) -> SingleQuerySample {
    let mut sim = Simulator::arena();
    run_unit_in(&mut sim, campaign, vp, profile, transport, rep)
}

/// Run a single measurement unit in a reusable simulator arena: the
/// arena is reset (reusing its allocations) and left holding the
/// unit's final state.
pub fn run_unit_in(
    sim: &mut Simulator,
    campaign: &SingleQueryCampaign,
    vp: &VantagePoint,
    profile: &ResolverProfile,
    transport: DnsTransport,
    rep: usize,
) -> SingleQuerySample {
    run_unit_inner(sim, campaign, vp, profile, transport, rep).0
}

/// The unit body; also returns the measured-phase start and handshake
/// completion instants so tests can replay the historical trace-based
/// byte accounting against the tap's.
fn run_unit_inner(
    sim: &mut Simulator,
    campaign: &SingleQueryCampaign,
    vp: &VantagePoint,
    profile: &ResolverProfile,
    transport: DnsTransport,
    rep: usize,
) -> (SingleQuerySample, SimTime, Option<SimTime>) {
    let o = run_unit_custom(
        sim,
        campaign,
        vp,
        profile,
        transport,
        rep,
        &UnitOptions::default(),
    );
    (o.sample, o.started, o.hs_done)
}

/// The parameterized unit body: the plain single-query unit plus the
/// [`UnitOptions`] overrides (seed, measured-phase impairment,
/// resilience policy). With default options this is exactly the vanilla
/// unit — no extra RNG draws, identical samples.
#[allow(clippy::too_many_arguments)] // the unit tuple is the argument list
pub fn run_unit_custom(
    sim: &mut Simulator,
    campaign: &SingleQueryCampaign,
    vp: &VantagePoint,
    profile: &ResolverProfile,
    transport: DnsTransport,
    rep: usize,
    opts: &UnitOptions,
) -> UnitOutcome {
    let seed = opts.seed.unwrap_or_else(|| {
        engine::unit_seed(
            campaign.seed,
            &[
                vp.index as u64,
                profile.index as u64,
                transport as u64,
                rep as u64,
            ],
        )
    });
    // The DoH3 toggle substitutes the transport *after* the seed is
    // derived from the nominal one, so a DoH3 unit shares its seed —
    // path draws, jitter, everything — with the DoH unit it
    // counterfactually replaces.
    let transport = if opts.doh3 && transport == DnsTransport::DoH {
        DnsTransport::DoH3
    } else {
        transport
    };
    let mut path = GeoPathModel::new(campaign.path_params.clone());
    let warm_ip = Ipv4Addr::new(10, 10, vp.index as u8 + 1, 2);
    let meas_ip = Ipv4Addr::new(10, 10, vp.index as u8 + 1, 3);
    path.place(warm_ip, vp.location);
    path.place(meas_ip, vp.location);
    path.place(profile.ip, profile.location);
    if !opts.rebinds.is_empty() {
        // Pre-place the cellular-side addresses the mobility schedule
        // will rebind onto (gated so a vanilla unit's path model is
        // untouched).
        for k in 0..opts.rebinds.len() {
            path.place(rebind_ip(vp.index, k), vp.location);
        }
    }
    sim.reset(seed, Box::new(path));

    let mut server_cfg = profile.server_config();
    if campaign.enable_0rtt_resolvers {
        server_cfg.enable_0rtt = true;
    }
    if opts.tfo {
        server_cfg.enable_tfo = true;
    }
    if opts.keepalive {
        server_cfg.tcp_keepalive = true;
        server_cfg.close_tcp_after_response = false;
    }
    if opts.doh3 {
        server_cfg.supports_doh3 = true;
    }
    sim.add_host(
        Box::new(ResolverHost::new(server_cfg, RecursionModel::default())),
        &[profile.ip],
    );

    let query = Message::query(0x5151, Name::parse("google.com").unwrap(), RecordType::A);
    let remote = SocketAddr::new(profile.ip, transport.port());

    // --- cache warming ----------------------------------------------------
    let warm_cfg = ClientConfig {
        enable_tfo: opts.tfo,
        ..ClientConfig::default()
    };
    let warm = DnsClientHost::new(
        transport,
        SocketAddr::new(warm_ip, 40_000),
        remote,
        &warm_cfg,
    );
    let wid = sim.add_host(Box::new(warm), &[warm_ip]);
    sim.with_host::<DnsClientHost, _>(wid, |c, ctx| c.start_with_query(ctx, &query));
    let warm_deadline = sim.now() + Duration::from_secs(20);
    sim.run_until(warm_deadline);
    // Harvest the warming connection's resumption material through the
    // host's per-resolver session cache, as a long-lived stub would.
    let sessions = {
        let warm = sim.host_mut::<DnsClientHost>(wid);
        if warm.responses.is_empty() {
            doqlab_dox::SessionCache::default()
        } else {
            warm.export_sessions()
        }
    };
    let session = sessions.get(remote).cloned().unwrap_or_default();

    // --- measured query -----------------------------------------------------
    let tap = match transport {
        DnsTransport::DoQ => PhaseByteTap::quic(meas_ip, profile.ip),
        _ => PhaseByteTap::deferred_split(meas_ip, profile.ip),
    };
    sim.set_tap(Box::new(tap));
    let meas_session = if campaign.use_resumption {
        session
    } else {
        // TFO is independent of TLS resumption: the cookie carries even
        // under the no-resumption ablation, like a kernel's TFO cache
        // surviving a cleared TLS session store.
        SessionState {
            tfo_cookie: session.tfo_cookie.filter(|_| opts.tfo),
            ..SessionState::default()
        }
    };
    let meas_cfg = ClientConfig {
        session: meas_session,
        enable_tfo: opts.tfo,
        request_tcp_keepalive: opts.keepalive,
        query_deadline: opts.query_deadline,
        reconnect_max: opts.reconnect_max,
        reconnect_backoff: opts.reconnect_backoff,
        failover: opts.failover.clone(),
        ..ClientConfig::default()
    };
    let meas = DnsClientHost::new(
        transport,
        SocketAddr::new(meas_ip, 40_000),
        remote,
        &meas_cfg,
    );
    let mid = sim.add_host(Box::new(meas), &[meas_ip]);
    let started = sim.now();
    // The impairment covers the measured phase only: installed before
    // the measured client's first flight, torn down once the phase ends.
    if let Some(build) = &opts.impairment {
        sim.set_impairment(Box::new(build(started)));
    }
    sim.with_host::<DnsClientHost, _>(mid, |c, ctx| c.start_with_query(ctx, &query));
    let deadline = started + opts.run_deadline;
    let mut hs_at = None;
    if transport != DnsTransport::DoQ || !opts.rebinds.is_empty() {
        // Step one event at a time until the handshake completes, then
        // hand the tap its phase split (a no-op for the DoQ tap, which
        // splits on header form). Stepping dispatches in exactly
        // run_until's order, so the simulation is unchanged. A mobility
        // schedule needs the instant too: its offsets anchor there.
        loop {
            let hs = sim.host::<DnsClientHost>(mid).conn.handshake_done_at();
            if let Some(t) = hs {
                if let Some(tap) = sim.tap_mut::<PhaseByteTap>() {
                    tap.set_split(t);
                }
                hs_at = Some(t);
                break;
            }
            if !sim.step_until(deadline) {
                break;
            }
        }
    }
    let mut rebinds_applied = 0u32;
    let mut first_rebind_at = None;
    if let (false, Some(hs)) = (opts.rebinds.is_empty(), hs_at) {
        // Drive the mobility schedule: run to each rebind instant, move
        // the client onto the next address, and tell the tap so byte
        // accounting follows the host across paths.
        let mut cur_ip = meas_ip;
        for (k, (offset, profile)) in opts.rebinds.iter().enumerate() {
            let at = hs + *offset;
            if at >= deadline {
                break;
            }
            sim.run_until(at);
            let new_ip = rebind_ip(vp.index, k);
            sim.rebind_host(mid, cur_ip, new_ip, *profile);
            sim.with_host::<DnsClientHost, _>(mid, |c, ctx| c.rebind_local(ctx, new_ip));
            if let Some(tap) = sim.tap_mut::<PhaseByteTap>() {
                tap.add_client(new_ip);
            }
            first_rebind_at.get_or_insert(at);
            rebinds_applied += 1;
            cur_ip = new_ip;
        }
    }
    sim.run_until(deadline);
    if opts.impairment.is_some() {
        sim.clear_impairment();
    }

    let meas = sim.host::<DnsClientHost>(mid);
    let hs_done = meas.conn.handshake_done_at();
    let response_at = meas.responses.first().map(|(t, _)| *t);
    let metadata = meas.conn.metadata();
    let failure = meas.failure();
    let reconnects = meas.reconnects();
    let wasted_bytes = meas.wasted_bytes();
    let winner = meas.winner();
    let failed = response_at.is_none();
    let handshake_ms = match transport {
        DnsTransport::DoUdp => None,
        _ => hs_done.map(|t| (t - started).as_secs_f64() * 1000.0),
    };
    let resolve_from = hs_done.unwrap_or(started);
    let resolve_ms = response_at.map(|t| (t - resolve_from).as_secs_f64() * 1000.0);

    let mut tap = sim.take_tap().expect("tap installed for measured phase");
    let bytes = tap
        .as_any_mut()
        .downcast_mut::<PhaseByteTap>()
        .expect("phase-byte tap")
        .finish();

    metrics::count(Counter::UnitsRun, 1);
    if failed {
        metrics::count(Counter::UnitsFailed, 1);
    }
    if let Some(kind) = failure {
        metrics::count(failure_counter(kind), 1);
    }
    if transport != DnsTransport::DoUdp {
        if let Some(t) = hs_done {
            metrics::record(Series::HandshakeNs, (t - started).as_nanos() as u64);
        }
    }
    if let Some(t) = response_at {
        metrics::record(Series::ResolveNs, (t - resolve_from).as_nanos() as u64);
    }
    metrics::count(transport_byte_counter(transport), bytes.total() as u64);
    // 0-RTT bookkeeping: the measured connection attempted early data
    // iff it presented a ticket that permits it; the connection
    // metadata says whether the server accepted or forced the replay.
    let attempted_early = meas_cfg.enable_0rtt
        && meas_cfg
            .session
            .tls_ticket
            .as_ref()
            .is_some_and(|t| t.allows_early_data);
    if attempted_early {
        metrics::count(
            if metadata.zero_rtt {
                Counter::ZeroRttAccepted
            } else {
                Counter::ZeroRttRejected
            },
            1,
        );
    }

    let sample = SingleQuerySample {
        vp: vp.index,
        vp_continent: vp.continent,
        resolver: profile.index,
        resolver_continent: profile.continent,
        transport,
        handshake_ms,
        resolve_ms,
        bytes,
        metadata,
        failed,
    };
    UnitOutcome {
        sample,
        failure,
        reconnects,
        started,
        hs_done,
        rebinds_applied,
        first_rebind_at,
        wasted_bytes,
        winner,
    }
}

/// The k-th address a mobility schedule rebinds the measured client
/// onto (the "cellular" side of the vantage point).
fn rebind_ip(vp_index: usize, k: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 10, vp_index as u8 + 1, 4 + k as u8)
}

/// The failure-taxonomy counter a unit's terminal verdict folds into.
fn failure_counter(kind: FailureKind) -> Counter {
    match kind {
        FailureKind::Timeout => Counter::FailTimeout,
        FailureKind::Reset => Counter::FailReset,
        FailureKind::HandshakeFail => Counter::FailHandshake,
        FailureKind::DeadlineExceeded => Counter::FailDeadline,
    }
}

/// The per-transport byte-total counter a unit's traffic folds into.
pub(crate) fn transport_byte_counter(transport: DnsTransport) -> Counter {
    match transport {
        DnsTransport::DoUdp => Counter::BytesDoUdp,
        DnsTransport::DoTcp => Counter::BytesDoTcp,
        DnsTransport::DoT => Counter::BytesDoT,
        DnsTransport::DoH | DnsTransport::DoH3 => Counter::BytesDoH,
        DnsTransport::DoQ => Counter::BytesDoQ,
    }
}

/// The pre-tap byte accounting: scan a retained trace after the run.
/// Kept (test-only) as the reference the streaming tap must match.
#[cfg(test)]
fn trace_phase_bytes(
    trace: &doqlab_simnet::PacketTrace,
    transport: DnsTransport,
    meas_ip: Ipv4Addr,
    resolver_ip: Ipv4Addr,
    started: SimTime,
    hs_done: Option<SimTime>,
) -> PhaseBytes {
    if transport == DnsTransport::DoQ {
        let mut b = PhaseBytes::default();
        for rec in trace.records() {
            if rec.sent_at < started {
                continue;
            }
            let long = rec.is_quic_long_header();
            let c2r = rec.src.ip == meas_ip && rec.dst.ip == resolver_ip;
            let r2c = rec.src.ip == resolver_ip && rec.dst.ip == meas_ip;
            match (c2r, r2c, long) {
                (true, _, true) => b.handshake_c2r += rec.ip_payload_len,
                (true, _, false) => b.query_c2r += rec.ip_payload_len,
                (_, true, true) => b.handshake_r2c += rec.ip_payload_len,
                (_, true, false) => b.response_r2c += rec.ip_payload_len,
                _ => {}
            }
        }
        b
    } else {
        let c = SocketAddr::new(meas_ip, 0);
        let r = SocketAddr::new(resolver_ip, 0);
        let split = hs_done
            .filter(|_| transport != DnsTransport::DoUdp)
            .unwrap_or(started);
        let far = SimTime::from_secs(1_000_000);
        PhaseBytes {
            handshake_c2r: trace.bytes_between(c, r, started, split),
            handshake_r2c: trace.bytes_between(r, c, started, split),
            query_c2r: trace.bytes_between(c, r, split, far),
            response_r2c: trace.bytes_between(r, c, split, far),
        }
    }
}

/// Run the full campaign: every vantage point x resolver x protocol x
/// repetition, scheduled by the work-stealing engine on per-worker
/// simulator arenas. Output order (and content) is independent of
/// thread count.
pub fn run_single_query_campaign(
    campaign: &SingleQueryCampaign,
    population: &[ResolverProfile],
) -> Vec<SingleQuerySample> {
    let vps = vantage_points();
    let resolvers = campaign.scale.sample_resolvers(population);
    let grid = engine::UnitGrid {
        vps: vps.len(),
        resolvers: resolvers.len(),
        pages: 1,
        transports: DnsTransport::ALL.len(),
        reps: campaign.scale.repetitions,
    };
    let units = grid.units();
    engine::run_units(
        engine::env_threads(campaign.scale.threads),
        &units,
        Simulator::arena,
        |sim, u, _| {
            run_unit_in(
                sim,
                campaign,
                &vps[u.vp],
                resolvers[u.resolver],
                DnsTransport::ALL[u.transport],
                u.rep,
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use doqlab_resolver::synthesize_dox_population;

    fn tiny_campaign() -> (SingleQueryCampaign, Vec<ResolverProfile>) {
        let scale = Scale {
            resolvers: Some(3),
            repetitions: 1,
            threads: 2,
            ..Scale::quick()
        };
        (
            SingleQueryCampaign::new(scale),
            synthesize_dox_population(1),
        )
    }

    #[test]
    fn campaign_produces_all_units() {
        let (c, pop) = tiny_campaign();
        let samples = run_single_query_campaign(&c, &pop);
        // 6 vps x 3 resolvers x 5 protocols x 1 rep.
        assert_eq!(samples.len(), 90);
        let ok = samples.iter().filter(|s| !s.failed).count();
        assert!(ok as f64 / samples.len() as f64 > 0.95, "ok = {ok}/90");
    }

    #[test]
    fn handshake_ordering_matches_paper() {
        let (c, pop) = tiny_campaign();
        let samples = run_single_query_campaign(&c, &pop);
        let med = |t: DnsTransport| {
            crate::stats::median(
                &samples
                    .iter()
                    .filter(|s| s.transport == t && !s.failed)
                    .filter_map(|s| s.handshake_ms)
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        let (tcp, doq, dot, doh) = (
            med(DnsTransport::DoTcp),
            med(DnsTransport::DoQ),
            med(DnsTransport::DoT),
            med(DnsTransport::DoH),
        );
        // Fig. 2a: DoTCP ~ DoQ ~ half of DoT ~ DoH.
        assert!((doq / tcp - 1.0).abs() < 0.2, "DoQ {doq} vs DoTCP {tcp}");
        assert!(dot / doq > 1.6, "DoT {dot} vs DoQ {doq}");
        assert!(doh / doq > 1.6, "DoH {doh} vs DoQ {doq}");
        assert!((dot / doh - 1.0).abs() < 0.2, "DoT {dot} vs DoH {doh}");
    }

    #[test]
    fn resolve_times_similar_across_protocols() {
        let (c, pop) = tiny_campaign();
        let samples = run_single_query_campaign(&c, &pop);
        let med = |t: DnsTransport| {
            crate::stats::median(
                &samples
                    .iter()
                    .filter(|s| s.transport == t)
                    .filter_map(|s| s.resolve_ms)
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        let meds: Vec<f64> = DnsTransport::ALL.iter().map(|t| med(*t)).collect();
        let max = meds.iter().cloned().fold(f64::MIN, f64::max);
        let min = meds.iter().cloned().fold(f64::MAX, f64::min);
        // Fig. 2b: cached answers -> all protocols within ~1 RTT band.
        assert!(max / min < 1.5, "medians spread too wide: {meds:?}");
    }

    #[test]
    fn doq_uses_resumption_and_remembered_version() {
        let (c, pop) = tiny_campaign();
        let samples = run_single_query_campaign(&c, &pop);
        let doq: Vec<_> = samples
            .iter()
            .filter(|s| s.transport == DnsTransport::DoQ && !s.failed)
            .collect();
        assert!(!doq.is_empty());
        assert!(
            doq.iter().all(|s| s.metadata.resumed),
            "all DoQ measured queries resume"
        );
        assert!(doq.iter().all(|s| s.metadata.quic_version.is_some()));
        assert!(doq.iter().all(|s| s.metadata.doq_alpn.is_some()));
    }

    #[test]
    fn byte_shape_matches_table1() {
        let (c, pop) = tiny_campaign();
        let samples = run_single_query_campaign(&c, &pop);
        let med_total = |t: DnsTransport| {
            crate::stats::median(
                &samples
                    .iter()
                    .filter(|s| s.transport == t && !s.failed)
                    .map(|s| s.bytes.total() as f64)
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        let udp = med_total(DnsTransport::DoUdp);
        let tcp = med_total(DnsTransport::DoTcp);
        let doq = med_total(DnsTransport::DoQ);
        let doh = med_total(DnsTransport::DoH);
        let dot = med_total(DnsTransport::DoT);
        assert!(
            udp < tcp && tcp < dot && dot < doh && doh < doq,
            "Table 1 ordering: udp {udp} tcp {tcp} dot {dot} doh {doh} doq {doq}"
        );
        // DoQ handshake roughly doubles DoH's total (1200-byte padding).
        assert!(doq / doh > 1.5, "doq {doq} vs doh {doh}");
    }

    #[test]
    fn no_resumption_ablation_increases_doq_handshake_sometimes() {
        let scale = Scale {
            resolvers: Some(8),
            repetitions: 1,
            threads: 2,
            ..Scale::quick()
        };
        let pop = synthesize_dox_population(1);
        let with = SingleQueryCampaign::new(scale.clone());
        let without = SingleQueryCampaign {
            use_resumption: false,
            ..SingleQueryCampaign::new(scale)
        };
        let s_with = run_single_query_campaign(&with, &pop);
        let s_without = run_single_query_campaign(&without, &pop);
        let med = |ss: &[SingleQuerySample]| {
            crate::stats::median(
                &ss.iter()
                    .filter(|s| s.transport == DnsTransport::DoQ)
                    .filter_map(|s| s.handshake_ms)
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        // Without resumption, large certificates hit the amplification
        // limit: the handshake median rises.
        assert!(
            med(&s_without) > med(&s_with) * 1.1,
            "without {} vs with {}",
            med(&s_without),
            med(&s_with)
        );
    }

    #[test]
    fn tap_accounting_matches_retained_trace() {
        // The streaming PhaseByteTap must reproduce, bit for bit, the
        // retained-trace scan it replaced — for every transport,
        // including DoUDP (no handshake) and across arena reuse.
        let (c, pop) = tiny_campaign();
        let vps = vantage_points();
        let mut sim = Simulator::arena();
        sim.enable_trace();
        for t in DnsTransport::ALL {
            for profile in pop.iter().step_by(37).take(3) {
                let (sample, started, hs_done) =
                    run_unit_inner(&mut sim, &c, &vps[1], profile, t, 0);
                let meas_ip = Ipv4Addr::new(10, 10, 2, 3);
                let trace = sim.trace().expect("trace enabled on the arena");
                let legacy = trace_phase_bytes(trace, t, meas_ip, profile.ip, started, hs_done);
                assert_eq!(
                    sample.bytes, legacy,
                    "tap vs trace mismatch: {t:?} resolver {}",
                    profile.index
                );
                assert!(sample.bytes.total() > 0, "{t:?} moved no bytes");
            }
        }
    }

    #[test]
    fn failed_handshake_bytes_all_count_as_query_phase() {
        // A tap whose split never arrives classifies everything as
        // query/response — the historical `split = started` rule.
        let client = Ipv4Addr::new(10, 0, 0, 1);
        let resolver = Ipv4Addr::new(10, 0, 0, 2);
        let mut tap = PhaseByteTap::deferred_split(client, resolver);
        let rec = |src: Ipv4Addr, dst: Ipv4Addr, len: usize| PacketRecord {
            sent_at: SimTime::from_millis(5),
            src: SocketAddr::new(src, 1),
            dst: SocketAddr::new(dst, 2),
            transport: doqlab_simnet::Transport::Tcp,
            ip_payload_len: len,
            first_byte: Some(0x16),
            dropped: false,
        };
        tap.on_packet(&rec(client, resolver, 100));
        tap.on_packet(&rec(resolver, client, 60));
        // Unrelated traffic is ignored entirely.
        tap.on_packet(&rec(Ipv4Addr::new(10, 0, 0, 9), resolver, 999));
        let bytes = tap.finish();
        assert_eq!(bytes.handshake_c2r + bytes.handshake_r2c, 0);
        assert_eq!(bytes.query_c2r, 100);
        assert_eq!(bytes.response_r2c, 60);
    }
}
