//! # doqlab-measure — the measurement harness
//!
//! Reproduces the paper's three campaigns over the simulated substrate:
//!
//! * [`discovery`] — the ZMap-style scan (version-0 QUIC probes on UDP
//!   784/853/8853, ALPN verification, per-protocol support checks)
//!   yielding the 1,216 → 313 funnel of §2 and Fig. 1's geography.
//! * [`single_query`] — §3.1: cache-warming + measured single queries
//!   from 6 vantage points to every verified resolver over all five
//!   transports, with Session Resumption; produces handshake times,
//!   resolve times, per-phase byte counts (Table 1, Fig. 2) and the
//!   protocol-version overview of §3.
//! * [`webperf`] — §3.2: Tranco top-10 page loads through the DNS
//!   proxy per [vantage point x resolver x protocol], median of N cold
//!   loads, relative FCP/PLT differences (Fig. 3, Fig. 4).
//! * [`impairments`] — the fault-injection sweep: single-query units
//!   re-run under deterministic burst loss, outages, reordering and
//!   duplication regimes, reporting failure rates and response-time
//!   CDFs per regime and transport.
//! * [`populations`] — the population-scale campaign: whole client
//!   cohorts behind shared stub caches and pooled connections, issuing
//!   Zipf-popular queries over a simulated day; reports cache hit
//!   ratios, resolver load, client resolve-time quantiles and
//!   aggregate bytes per transport.
//! * [`mobility`] — the mobility sweep: single-query units re-run
//!   across mid-query address changes (wifi → cellular), reporting
//!   which transports survive by connection migration, switchover
//!   latency, and the cost of reconnect and cross-transport failover
//!   recovery strategies.
//! * [`whatif`] — the counterfactual sweep: single-query units re-run
//!   with dormant capabilities switched on (TLS/QUIC 0-RTT, TCP Fast
//!   Open, edns-tcp-keepalive, DoH3) on the *same* unit seeds as the
//!   all-off baseline, reporting the resolve-time deltas the paper
//!   could not measure.
//!
//! [`stats`] holds the estimators (median, percentiles, CDFs) and
//! [`report`] renders tables that mirror the paper's layout. Campaign
//! size is controlled by [`Scale`]; `Scale::paper()` matches the
//! study's sample counts, `Scale::quick()` is for tests and examples.

pub mod discovery;
pub mod engine;
pub mod impairments;
pub mod mobility;
pub mod populations;
pub mod report;
pub mod single_query;
pub mod stats;
pub mod trace;
pub mod vantage;
pub mod webperf;
pub mod whatif;

pub use discovery::{run_discovery, DiscoveryReport};
pub use impairments::{
    run_impairments_campaign, ImpairmentRegime, ImpairmentSample, ImpairmentsCampaign,
};
pub use mobility::{run_mobility_campaign, MobilityCampaign, MobilityRegime, MobilitySample};
pub use populations::{run_populations_campaign, PopulationSample, PopulationsCampaign};
pub use single_query::{run_single_query_campaign, SingleQueryCampaign, SingleQuerySample};
pub use stats::{cdf_points, median, percentile, Cdf};
pub use trace::{trace_single_query, TraceRun};
pub use vantage::{vantage_points, VantagePoint};
pub use webperf::{run_webperf_campaign, WebperfCampaign, WebperfSample};
pub use whatif::{run_whatif_campaign, WhatifCampaign, WhatifRegime, WhatifSample};

/// Campaign scale knobs.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Use only the first N resolvers (None = all 313).
    pub resolvers: Option<usize>,
    /// Single-query repetitions per [vp x resolver x protocol]
    /// (paper: every 2 h for a week = 84).
    pub repetitions: usize,
    /// Web-performance rounds per [vp x resolver x page x protocol]
    /// (paper: every 48 h for a week = 3).
    pub rounds: usize,
    /// Cold-start loads per round, of which the median is the sample
    /// (paper: 4).
    pub loads_per_round: usize,
    /// Pages (None = all ten).
    pub pages: Option<usize>,
    /// Simulated clients for the population campaign (None = the
    /// campaign's 10⁵ default; `DOQLAB_CLIENTS` overrides either way
    /// via [`engine::env_clients`]).
    pub clients: Option<u64>,
    /// OS threads to shard vantage points / units across.
    pub threads: usize,
}

impl Scale {
    /// The paper's full sample counts (~157k single-query samples and
    /// ~56k Web samples per protocol).
    pub fn paper() -> Scale {
        Scale {
            resolvers: None,
            repetitions: 84,
            rounds: 3,
            loads_per_round: 4,
            pages: None,
            clients: None,
            threads: Scale::default_threads(),
        }
    }

    /// Small but fully representative (for tests and examples).
    pub fn quick() -> Scale {
        Scale {
            resolvers: Some(12),
            repetitions: 1,
            rounds: 1,
            loads_per_round: 1,
            pages: Some(4),
            clients: Some(2_000),
            threads: Scale::default_threads(),
        }
    }

    /// A mid-size run: full resolver set, reduced repetitions.
    pub fn medium() -> Scale {
        Scale {
            resolvers: None,
            repetitions: 4,
            rounds: 1,
            loads_per_round: 2,
            pages: None,
            clients: Some(20_000),
            threads: Scale::default_threads(),
        }
    }

    /// One worker per available core (`DOQLAB_THREADS` overrides this
    /// at campaign time via [`engine::env_threads`]).
    pub fn default_threads() -> usize {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    }

    /// The resolver subset a campaign runs against. The population is
    /// ordered by continent, so a reduced set is stride-subsampled —
    /// rather than truncated — to keep spanning all continents the way
    /// the full 313-resolver set does.
    pub fn sample_resolvers<'a, T>(&self, population: &'a [T]) -> Vec<&'a T> {
        match self.resolvers {
            None => population.iter().collect(),
            Some(n) => {
                let stride = population.len() / n.max(1);
                population.iter().step_by(stride.max(1)).take(n).collect()
            }
        }
    }

    /// The page subset a webperf campaign loads (the Tranco list is
    /// already rank-ordered, so a reduced set is a prefix).
    pub fn sample_pages<'a, T>(&self, pages: &'a [T]) -> Vec<&'a T> {
        match self.pages {
            None => pages.iter().collect(),
            Some(n) => pages.iter().take(n).collect(),
        }
    }
}
