//! §3.2 — the Web-performance campaign.
//!
//! One sample is the median FCP/PLT of `loads_per_round` cold-start
//! page loads for a `[vantage point : resolver : page : protocol]`
//! combination (the paper runs four loads per combination and repeats
//! every 48 hours). Relative differences against DoUDP (Fig. 3) and
//! against DoQ (Fig. 4) are computed per `[vantage point : resolver]`
//! pair by the experiment drivers.

use crate::engine;
use crate::vantage::vantage_points;
use crate::Scale;
use doqlab_dox::DnsTransport;
use doqlab_resolver::ResolverProfile;
use doqlab_simnet::geo::Continent;
use doqlab_simnet::path::GeoPathParams;
use doqlab_simnet::{Duration, Simulator};
use doqlab_telemetry::metrics::{self, Counter};
use doqlab_webperf::{run_page_load_in, PageLoadConfig, PageProfile};

/// One Web-performance sample (already the median over the round's
/// loads).
#[derive(Debug, Clone)]
pub struct WebperfSample {
    pub vp: usize,
    pub vp_continent: Continent,
    pub resolver: usize,
    pub page: usize,
    pub page_name: String,
    pub page_dns_queries: usize,
    pub transport: DnsTransport,
    pub round: usize,
    pub fcp_ms: f64,
    pub plt_ms: f64,
    pub proxy_connections: u32,
    /// No load of the round succeeded (the medians are NaN).
    pub failed: bool,
    /// How many of the round's loads failed. Partially-failed rounds
    /// used to be silently absorbed into the medians (a failed load's
    /// NaN FCP/PLT is ignored by [`crate::stats::median`]), biasing
    /// results low; now failed loads are excluded explicitly and
    /// counted here.
    pub loads_failed: usize,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct WebperfCampaign {
    pub seed: u64,
    pub scale: Scale,
    /// Reproduce the dnsproxy DoT reconnect bug (ablation A2 turns it
    /// off).
    pub dot_bug: bool,
    /// Upgrade resolvers to 0-RTT (ablation A3).
    pub enable_0rtt_resolvers: bool,
    /// Run DoH units as DNS over HTTP/3 against an HTTP/3-capable
    /// resolver (the what-if campaign's doh3 counterfactual).
    pub use_doh3: bool,
    pub path_params: GeoPathParams,
}

impl WebperfCampaign {
    pub fn new(scale: Scale) -> Self {
        WebperfCampaign {
            seed: 0x3EB_2022,
            scale,
            dot_bug: true,
            enable_0rtt_resolvers: false,
            use_doh3: false,
            path_params: GeoPathParams::default(),
        }
    }
}

/// Domain separation from the single-query campaign's seeds.
const WEBPERF_SEED_DOMAIN: u64 = 0xA5A5_5A5A_DEAD_BEEF;

/// Per-unit RNG seed: every coordinate of the `[vp : resolver : page :
/// protocol : round]` tuple is hashed separately. (An earlier version
/// packed page and protocol into one integer as `pi * 16 + t`, which
/// collides as soon as the page list outgrows the packing radix.)
fn unit_seed(
    seed: u64,
    vp: usize,
    resolver: usize,
    page: usize,
    t: DnsTransport,
    round: usize,
) -> u64 {
    engine::unit_seed(
        seed ^ WEBPERF_SEED_DOMAIN,
        &[
            vp as u64,
            resolver as u64,
            page as u64,
            t as u64,
            round as u64,
        ],
    )
}

/// Run one `[vp : resolver : page : protocol : round]` unit in a
/// reusable simulator arena.
#[allow(clippy::too_many_arguments)] // the unit tuple is the argument list
pub fn run_webperf_unit(
    sim: &mut Simulator,
    campaign: &WebperfCampaign,
    vp: usize,
    profile: &ResolverProfile,
    pi: usize,
    page: &PageProfile,
    t: DnsTransport,
    round: usize,
) -> WebperfSample {
    let vps = vantage_points();
    let mut resolver_cfg = profile.server_config();
    if campaign.enable_0rtt_resolvers {
        resolver_cfg.enable_0rtt = true;
    }
    // The unit seed derives from the nominal transport BEFORE any DoH3
    // substitution: a doh3 unit replays the exact draws of its DoH
    // twin, so FCP/PLT deltas are attributable to HTTP/3 alone.
    let seed = unit_seed(campaign.seed, vp, profile.index, pi, t, round);
    let t = if campaign.use_doh3 && t == DnsTransport::DoH {
        resolver_cfg.supports_doh3 = true;
        DnsTransport::DoH3
    } else {
        t
    };
    let cfg = PageLoadConfig {
        seed,
        transport: t,
        page: page.clone(),
        resolver: resolver_cfg,
        recursion: Default::default(),
        vp_location: vps[vp].location,
        resolver_location: profile.location,
        dot_bug: campaign.dot_bug,
        enable_0rtt: true,
        tcp_keepalive_client: false,
        measured_loads: campaign.scale.loads_per_round,
        load_timeout: Duration::from_secs(30),
        path_params: campaign.path_params.clone(),
    };
    metrics::count(Counter::UnitsRun, 1);
    let loads = run_page_load_in(sim, &cfg);
    // Medians over the successful loads only: a failed load must not
    // contribute a partial FCP/PLT, and its NaNs must not be silently
    // dropped as if the round were smaller than configured.
    let ok_loads: Vec<_> = loads.iter().filter(|l| !l.failed).collect();
    let loads_failed = loads.len() - ok_loads.len();
    let fcp = crate::stats::median(&ok_loads.iter().map(|l| l.fcp_ms).collect::<Vec<_>>());
    let plt = crate::stats::median(&ok_loads.iter().map(|l| l.plt_ms).collect::<Vec<_>>());
    let failed = ok_loads.is_empty() || fcp.is_none() || plt.is_none();
    WebperfSample {
        vp,
        vp_continent: vps[vp].continent,
        resolver: profile.index,
        page: pi,
        page_name: page.name.clone(),
        page_dns_queries: page.dns_query_count(),
        transport: t,
        round,
        fcp_ms: fcp.unwrap_or(f64::NAN),
        plt_ms: plt.unwrap_or(f64::NAN),
        proxy_connections: loads.iter().map(|l| l.proxy_connections).max().unwrap_or(0),
        failed,
        loads_failed,
    }
}

/// Run the campaign: every vantage point x resolver x page x protocol
/// x round, scheduled by the work-stealing engine on per-worker
/// simulator arenas. Output order (and content) is independent of
/// thread count.
pub fn run_webperf_campaign(
    campaign: &WebperfCampaign,
    population: &[ResolverProfile],
    pages: &[PageProfile],
) -> Vec<WebperfSample> {
    let vps = vantage_points();
    let resolvers = campaign.scale.sample_resolvers(population);
    let pages = campaign.scale.sample_pages(pages);
    let grid = engine::UnitGrid {
        vps: vps.len(),
        resolvers: resolvers.len(),
        pages: pages.len(),
        transports: DnsTransport::ALL.len(),
        reps: campaign.scale.rounds,
    };
    let units = grid.units();
    engine::run_units(
        engine::env_threads(campaign.scale.threads),
        &units,
        Simulator::arena,
        |sim, u, _| {
            run_webperf_unit(
                sim,
                campaign,
                u.vp,
                resolvers[u.resolver],
                u.page,
                pages[u.page],
                DnsTransport::ALL[u.transport],
                u.rep,
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use doqlab_resolver::synthesize_dox_population;
    use doqlab_webperf::tranco_top10;

    #[test]
    fn quick_campaign_produces_expected_grid() {
        let scale = Scale {
            resolvers: Some(2),
            pages: Some(2),
            rounds: 1,
            loads_per_round: 1,
            threads: 4,
            ..Scale::quick()
        };
        let campaign = WebperfCampaign::new(scale);
        let pop = synthesize_dox_population(1);
        let pages = tranco_top10();
        let samples = run_webperf_campaign(&campaign, &pop, &pages);
        // 6 vps x 2 resolvers x 2 pages x 5 protocols x 1 round.
        assert_eq!(samples.len(), 120);
        let ok = samples.iter().filter(|s| !s.failed).count();
        assert!(ok as f64 / samples.len() as f64 > 0.9, "ok = {ok}/120");
        // Simple page (wikipedia) has exactly 1 DNS query recorded.
        assert!(samples
            .iter()
            .filter(|s| s.page == 0)
            .all(|s| s.page_dns_queries == 1));
        // Failed-load accounting: with one load per round, a sample is
        // failed exactly when its only load failed; successful samples
        // carry finite medians and a zero failed-load count.
        for s in &samples {
            if s.failed {
                assert_eq!(s.loads_failed, 1);
                assert!(s.fcp_ms.is_nan() && s.plt_ms.is_nan());
            } else {
                assert_eq!(s.loads_failed, 0);
                assert!(s.fcp_ms.is_finite() && s.plt_ms.is_finite());
            }
        }
    }

    #[test]
    fn doh3_toggle_upgrades_doh_units_and_leaves_the_rest_alone() {
        let scale = Scale {
            resolvers: Some(1),
            pages: Some(1),
            rounds: 1,
            loads_per_round: 1,
            threads: 2,
            ..Scale::quick()
        };
        let mut campaign = WebperfCampaign::new(scale);
        campaign.use_doh3 = true;
        let pop = synthesize_dox_population(1);
        let pages = tranco_top10();
        let samples = run_webperf_campaign(&campaign, &pop, &pages);
        // 6 vps x 1 resolver x 1 page x 5 protocols x 1 round.
        assert_eq!(samples.len(), 30);
        let h3: Vec<_> = samples
            .iter()
            .filter(|s| s.transport == DnsTransport::DoH3)
            .collect();
        assert_eq!(h3.len(), 6, "every DoH unit became DoH3");
        assert!(samples.iter().all(|s| s.transport != DnsTransport::DoH));
        assert!(h3.iter().all(|s| !s.failed), "DoH3 page loads succeed");
    }
}
