//! The counterfactual ("what-if") campaign: feature-flag sweeps over
//! the resolver population reporting the resolve-time deltas the paper
//! could not measure (§5's discussion of where DoQ's remaining cost
//! goes, and §4's future work).
//!
//! Each unit is `[vantage point : resolver : regime : protocol :
//! repetition]` — the plain single-query unit of [`crate::single_query`]
//! re-run with one dormant capability switched on:
//!
//! * **resumption** — TLS 1.3 session-ticket resumption (and the QUIC
//!   address-validation token) on the measured connection;
//! * **0rtt** — resumption plus early data: resolvers issue
//!   early-data-capable tickets and the measured DoQ/DoT/DoH query
//!   rides the first flight (reject falls back to the 1-RTT replay);
//! * **tfo** — TCP Fast Open (RFC 7413): the measured DoTCP query
//!   rides the SYN, using the cookie the warming connection cached;
//! * **keepalive** — edns-tcp-keepalive (RFC 7828): the client asks,
//!   the resolver grants a hold-open timeout instead of closing after
//!   the first response (§5's fresh-2-RTT-per-query cost);
//! * **doh3** — DoH units run as DNS over HTTP/3 against an
//!   HTTP/3-capable resolver.
//!
//! Unlike the mobility sweep, the non-baseline regimes deliberately
//! reuse the baseline's unit seeds: a regime unit is the *same* unit —
//! same path draws, same resolver — with only the feature flag
//! changed, so per-unit deltas are genuine counterfactuals rather than
//! resampled noise.
//!
//! Reproducibility contracts, pinned by tests here and by the engine
//! invariance suite:
//!
//! * the campaign is bit-identical across thread counts and repeated
//!   runs at a fixed seed;
//! * the all-off baseline regime runs the vanilla unit path and
//!   reproduces the single-query campaign (resumption disabled) bit
//!   for bit.

use crate::engine;
use crate::single_query::{run_unit_custom, SingleQueryCampaign, SingleQuerySample, UnitOptions};
use crate::vantage::vantage_points;
use crate::Scale;
use doqlab_dox::{DnsTransport, FailureKind};
use doqlab_resolver::ResolverProfile;
use doqlab_simnet::path::GeoPathParams;
use doqlab_simnet::Simulator;

/// One counterfactual regime: which dormant capability is switched on.
#[derive(Debug, Clone)]
pub struct WhatifRegime {
    pub name: String,
    /// Present captured session material (TLS ticket, QUIC token) on
    /// the measured connection.
    pub resumption: bool,
    /// Resolvers issue early-data-capable tickets and the measured
    /// query attempts 0-RTT (implies resumption-grade material).
    pub zero_rtt: bool,
    /// TCP Fast Open: the measured DoTCP query rides the SYN.
    pub tfo: bool,
    /// edns-tcp-keepalive: request and honor hold-open timeouts.
    pub keepalive: bool,
    /// Run DoH units as DNS over HTTP/3.
    pub doh3: bool,
}

impl WhatifRegime {
    /// The all-off control regime: no resumption, no early data, no
    /// TFO, no keepalive, HTTP/2 DoH — the paper's measured world.
    pub fn baseline() -> Self {
        WhatifRegime {
            name: "baseline".into(),
            resumption: false,
            zero_rtt: false,
            tfo: false,
            keepalive: false,
            doh3: false,
        }
    }

    /// Every flag is off: the unit must run on the vanilla
    /// single-query path.
    pub fn is_baseline(&self) -> bool {
        !self.resumption && !self.zero_rtt && !self.tfo && !self.keepalive && !self.doh3
    }
}

/// The default sweep: the all-off baseline, then each capability
/// switched on alone (0-RTT implies resumption — early data needs a
/// ticket to ride on).
pub fn standard_whatif_sweep() -> Vec<WhatifRegime> {
    vec![
        WhatifRegime::baseline(),
        WhatifRegime {
            name: "resumption".into(),
            resumption: true,
            ..WhatifRegime::baseline()
        },
        WhatifRegime {
            name: "0rtt".into(),
            resumption: true,
            zero_rtt: true,
            ..WhatifRegime::baseline()
        },
        WhatifRegime {
            name: "tfo".into(),
            tfo: true,
            ..WhatifRegime::baseline()
        },
        WhatifRegime {
            name: "keepalive".into(),
            keepalive: true,
            ..WhatifRegime::baseline()
        },
        WhatifRegime {
            name: "doh3".into(),
            doh3: true,
            ..WhatifRegime::baseline()
        },
    ]
}

/// One counterfactual measurement: the single-query sample under a
/// regime's flags. Samples of the same unit coordinates across regimes
/// share their seed, so differences are attributable to the flags.
#[derive(Debug, Clone)]
pub struct WhatifSample {
    pub regime: usize,
    pub regime_name: String,
    pub failure: Option<FailureKind>,
    pub sample: SingleQuerySample,
}

/// Campaign configuration. The seed doubles as the single-query
/// campaign seed, so the baseline regime reproduces that campaign's
/// samples exactly (with resumption disabled to match the all-off
/// world).
#[derive(Debug, Clone)]
pub struct WhatifCampaign {
    pub seed: u64,
    pub scale: Scale,
    pub regimes: Vec<WhatifRegime>,
    pub path_params: GeoPathParams,
}

impl WhatifCampaign {
    pub fn new(scale: Scale) -> Self {
        let sq = SingleQueryCampaign::new(scale.clone());
        WhatifCampaign {
            seed: sq.seed,
            scale,
            regimes: standard_whatif_sweep(),
            path_params: GeoPathParams::default(),
        }
    }

    /// The single-query campaign a regime's units embed: the flags that
    /// live on the campaign (resumption, 0-RTT-capable resolvers) come
    /// from the regime; everything else is shared.
    fn single_query(&self, regime: &WhatifRegime) -> SingleQueryCampaign {
        SingleQueryCampaign {
            seed: self.seed,
            scale: self.scale.clone(),
            use_resumption: regime.resumption,
            enable_0rtt_resolvers: regime.zero_rtt,
            path_params: self.path_params.clone(),
        }
    }
}

/// Run one `[vp : resolver : regime : protocol : repetition]` unit in a
/// reusable simulator arena. No seed override: every regime runs the
/// *same* unit seed as the baseline, so the delta between a regime
/// sample and its baseline twin is the capability's causal effect.
pub fn run_whatif_unit(
    sim: &mut Simulator,
    campaign: &WhatifCampaign,
    vp: usize,
    profile: &ResolverProfile,
    regime_idx: usize,
    transport: DnsTransport,
    rep: usize,
) -> WhatifSample {
    let regime = &campaign.regimes[regime_idx];
    let sq = campaign.single_query(regime);
    let opts = UnitOptions {
        tfo: regime.tfo,
        keepalive: regime.keepalive,
        doh3: regime.doh3,
        ..UnitOptions::default()
    };
    let vps = vantage_points();
    let out = run_unit_custom(sim, &sq, &vps[vp], profile, transport, rep, &opts);
    WhatifSample {
        regime: regime_idx,
        regime_name: regime.name.clone(),
        failure: out.failure,
        sample: out.sample,
    }
}

/// Run the campaign: every vantage point x resolver x regime x protocol
/// x repetition, scheduled by the work-stealing engine on per-worker
/// simulator arenas (regimes ride the grid's `pages` axis). Output
/// order and content are independent of thread count.
pub fn run_whatif_campaign(
    campaign: &WhatifCampaign,
    population: &[ResolverProfile],
) -> Vec<WhatifSample> {
    let vps = vantage_points();
    let resolvers = campaign.scale.sample_resolvers(population);
    let grid = engine::UnitGrid {
        vps: vps.len(),
        resolvers: resolvers.len(),
        pages: campaign.regimes.len(),
        transports: DnsTransport::ALL.len(),
        reps: campaign.scale.repetitions,
    };
    let units = grid.units();
    engine::run_units(
        engine::env_threads(campaign.scale.threads),
        &units,
        Simulator::arena,
        |sim, u, _| {
            run_whatif_unit(
                sim,
                campaign,
                u.vp,
                resolvers[u.resolver],
                u.page,
                DnsTransport::ALL[u.transport],
                u.rep,
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_query::run_single_query_campaign;
    use doqlab_resolver::synthesize_dox_population;
    use doqlab_telemetry::metrics::{self, Counter};

    fn tiny_campaign() -> (WhatifCampaign, Vec<ResolverProfile>) {
        let scale = Scale {
            resolvers: Some(2),
            repetitions: 1,
            threads: 2,
            ..Scale::quick()
        };
        (WhatifCampaign::new(scale), synthesize_dox_population(1))
    }

    /// A jitter- and loss-free path: unit timing becomes a pure
    /// function of the flags, so paired regimes differ by exact RTTs.
    fn exact_params() -> GeoPathParams {
        GeoPathParams {
            jitter_frac: 0.0,
            loss: 0.0,
            egress_bps: None,
            ..GeoPathParams::default()
        }
    }

    /// handshake + resolve: first transport packet to answered query.
    fn total_ms(s: &SingleQuerySample) -> f64 {
        s.handshake_ms.unwrap_or(0.0) + s.resolve_ms.expect("unit answered")
    }

    #[test]
    fn standard_sweep_leads_with_an_all_off_baseline() {
        let sweep = standard_whatif_sweep();
        assert_eq!(sweep[0].name, "baseline");
        assert!(sweep[0].is_baseline());
        assert!(sweep.iter().skip(1).all(|r| !r.is_baseline()));
        // 0-RTT implies resumption: early data needs a ticket.
        let zrtt = sweep.iter().find(|r| r.zero_rtt).expect("0rtt regime");
        assert!(zrtt.resumption);
        let names: Vec<&str> = sweep.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            ["baseline", "resumption", "0rtt", "tfo", "keepalive", "doh3"]
        );
    }

    #[test]
    fn campaign_produces_the_full_regime_grid() {
        let (c, pop) = tiny_campaign();
        let samples = run_whatif_campaign(&c, &pop);
        // 6 vps x 2 resolvers x 6 regimes x 5 protocols x 1 rep.
        assert_eq!(samples.len(), 360);
        for (i, r) in c.regimes.iter().enumerate() {
            let of_r: Vec<_> = samples.iter().filter(|s| s.regime == i).collect();
            assert_eq!(of_r.len(), 60);
            assert!(of_r.iter().all(|s| s.regime_name == r.name));
        }
        // The doh3 regime substitutes DoH3 for every DoH unit and
        // leaves the other transports alone.
        let doh3_regime: Vec<_> = samples.iter().filter(|s| s.regime_name == "doh3").collect();
        let h3 = doh3_regime
            .iter()
            .filter(|s| s.sample.transport == DnsTransport::DoH3)
            .count();
        assert_eq!(h3, 12, "6 vps x 2 resolvers of DoH3");
        assert!(doh3_regime
            .iter()
            .all(|s| s.sample.transport != DnsTransport::DoH));
        // No other regime runs DoH3.
        assert!(samples
            .iter()
            .filter(|s| s.regime_name != "doh3")
            .all(|s| s.sample.transport != DnsTransport::DoH3));
        // Failure taxonomy is consistent with the samples.
        for s in &samples {
            assert_eq!(s.sample.failed, s.failure.is_some(), "{s:?}");
        }
    }

    #[test]
    fn baseline_regime_reproduces_single_query_samples() {
        let (c, pop) = tiny_campaign();
        let whatif = run_whatif_campaign(&c, &pop);
        let sq = SingleQueryCampaign {
            seed: c.seed,
            scale: c.scale.clone(),
            use_resumption: false,
            enable_0rtt_resolvers: false,
            path_params: c.path_params.clone(),
        };
        let plain = run_single_query_campaign(&sq, &pop);
        let baseline: Vec<_> = whatif.iter().filter(|s| s.regime == 0).collect();
        assert_eq!(baseline.len(), plain.len());
        for (b, p) in baseline.iter().zip(&plain) {
            assert_eq!(
                format!("{:?}", b.sample),
                format!("{p:?}"),
                "baseline diverged from the single-query campaign"
            );
        }
    }

    #[test]
    fn zero_rtt_doq_saves_exactly_one_rtt_over_resumed_1rtt() {
        // The campaign's headline claim, pinned: on the same unit (same
        // seed, same path, jitter-free), a warm-resumption 0-RTT DoQ
        // query resolves exactly one RTT faster than its 1-RTT resumed
        // twin — the query rides the first flight instead of waiting
        // for the handshake round trip.
        let (mut c, pop) = tiny_campaign();
        c.path_params = exact_params();
        let resolvers = c.scale.sample_resolvers(&pop);
        let mut sim = Simulator::arena();
        let resumed = run_whatif_unit(&mut sim, &c, 0, resolvers[0], 1, DnsTransport::DoQ, 0);
        let zrtt = run_whatif_unit(&mut sim, &c, 0, resolvers[0], 2, DnsTransport::DoQ, 0);
        assert!(!resumed.sample.failed && !zrtt.sample.failed);
        assert!(resumed.sample.metadata.resumed && zrtt.sample.metadata.resumed);
        assert!(
            !resumed.sample.metadata.zero_rtt,
            "no early data without a 0-RTT ticket"
        );
        assert!(
            zrtt.sample.metadata.zero_rtt,
            "0-RTT regime accepted early data"
        );
        // The resumed handshake is exactly one RTT; the 0-RTT unit
        // finishes exactly that much sooner.
        let rtt = resumed.sample.handshake_ms.expect("DoQ handshakes");
        let saved = total_ms(&resumed.sample) - total_ms(&zrtt.sample);
        assert!(
            (saved - rtt).abs() < 1e-6,
            "0-RTT saved {saved} ms, expected exactly one RTT = {rtt} ms"
        );
    }

    #[test]
    fn tfo_puts_the_dotcp_query_on_the_syn_and_saves_a_round_trip() {
        metrics::set_enabled(true);
        let (mut c, pop) = tiny_campaign();
        c.path_params = exact_params();
        let resolvers = c.scale.sample_resolvers(&pop);
        let before = metrics::snapshot().counter(Counter::TfoSynData);
        let mut sim = Simulator::arena();
        let base = run_whatif_unit(&mut sim, &c, 0, resolvers[0], 0, DnsTransport::DoTcp, 0);
        let tfo = run_whatif_unit(&mut sim, &c, 0, resolvers[0], 3, DnsTransport::DoTcp, 0);
        assert!(!base.sample.failed && !tfo.sample.failed);
        assert!(
            metrics::snapshot().counter(Counter::TfoSynData) > before,
            "the measured SYN carried data"
        );
        let saved = total_ms(&base.sample) - total_ms(&tfo.sample);
        let rtt = base.sample.handshake_ms.expect("DoTCP handshakes");
        assert!(
            (saved - rtt).abs() < 1e-6,
            "TFO saved {saved} ms, expected exactly one RTT = {rtt} ms"
        );
    }

    #[test]
    fn keepalive_grants_are_requested_and_honored() {
        metrics::set_enabled(true);
        let (mut c, pop) = tiny_campaign();
        c.path_params = exact_params();
        let resolvers = c.scale.sample_resolvers(&pop);
        let before = metrics::snapshot().counter(Counter::KeepaliveHonored);
        let mut sim = Simulator::arena();
        let ka = run_whatif_unit(&mut sim, &c, 0, resolvers[0], 4, DnsTransport::DoTcp, 0);
        assert!(!ka.sample.failed);
        assert!(
            metrics::snapshot().counter(Counter::KeepaliveHonored) > before,
            "the resolver granted the keepalive and the client honored it"
        );
    }

    #[test]
    fn zero_rtt_telemetry_counts_accepts() {
        metrics::set_enabled(true);
        let (mut c, pop) = tiny_campaign();
        c.path_params = exact_params();
        let resolvers = c.scale.sample_resolvers(&pop);
        let before = metrics::snapshot().counter(Counter::ZeroRttAccepted);
        let mut sim = Simulator::arena();
        for t in [DnsTransport::DoQ, DnsTransport::DoT, DnsTransport::DoH] {
            let s = run_whatif_unit(&mut sim, &c, 0, resolvers[0], 2, t, 0);
            assert!(s.sample.metadata.zero_rtt, "{t:?} accepted early data");
        }
        assert!(
            metrics::snapshot().counter(Counter::ZeroRttAccepted) >= before + 3,
            "every encrypted transport counted its accepted 0-RTT"
        );
    }
}
