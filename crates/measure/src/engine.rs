//! The shared campaign-execution engine.
//!
//! All three campaigns (§2 discovery, §3.1 single-query, §3.2 webperf)
//! are embarrassingly parallel sweeps over a deterministic unit grid.
//! Before this module existed each campaign reimplemented the same
//! three pieces; they now share:
//!
//! * [`UnitGrid`] — the `[vantage point × resolver × page × transport ×
//!   repetition]` enumeration in one canonical order (page and any
//!   other unused axis collapse to a single slot);
//! * [`run_units`] — a work-stealing scheduler: workers pull unit
//!   indices from a shared atomic cursor (no static `chunks()`
//!   pre-partitioning, so a straggler unit never idles the other
//!   workers) and results are merged back in unit-grid order, making
//!   campaign output **byte-identical at any thread count**;
//! * per-worker **simulator arenas** — each worker owns one
//!   [`doqlab_simnet::Simulator`] created by the `init` hook and
//!   [`doqlab_simnet::Simulator::reset`] between units, reusing the
//!   event-queue, host-table and trace allocations across the
//!   thousands of units it executes;
//! * [`unit_seed`] — the per-unit RNG domain separation, and the
//!   [`env_threads`]/[`env_seed`] overrides (`DOQLAB_THREADS`,
//!   `DOQLAB_SEED`) that the experiment binaries route through.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker-thread count of every
/// campaign run ([`env_threads`]).
pub const THREADS_ENV: &str = "DOQLAB_THREADS";

/// Environment variable overriding the experiment binaries' campaign
/// seed ([`env_seed`]).
pub const SEED_ENV: &str = "DOQLAB_SEED";

/// The worker-thread count to use: `DOQLAB_THREADS` if set to a
/// positive integer, otherwise `configured`.
pub fn env_threads(configured: usize) -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => configured,
        },
        Err(_) => configured,
    }
}

/// The campaign seed to use: `DOQLAB_SEED` if set to an integer,
/// otherwise `configured`.
pub fn env_seed(configured: u64) -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(v) => v.trim().parse::<u64>().unwrap_or(configured),
        Err(_) => configured,
    }
}

/// Environment variable overriding the population campaign's simulated
/// client count ([`env_clients`]).
pub const CLIENTS_ENV: &str = "DOQLAB_CLIENTS";

/// The simulated client count to use: `DOQLAB_CLIENTS` if set to a
/// positive integer, otherwise `configured`.
pub fn env_clients(configured: u64) -> u64 {
    match std::env::var(CLIENTS_ENV) {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => configured,
        },
        Err(_) => configured,
    }
}

/// Mix a campaign seed and a unit coordinate tuple into the unit's RNG
/// seed (splitmix64-style finalization per part). Hashing every part —
/// rather than packing parts into one integer — means coordinates can
/// never collide however large an axis grows.
pub fn unit_seed(seed: u64, parts: &[u64]) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &v in parts {
        h ^= v
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = h.rotate_left(27).wrapping_mul(5).wrapping_add(0x52DC_E729);
    }
    h
}

/// One cell of a campaign's unit grid. All coordinates are *slot*
/// positions (indices into the campaign's subsampled lists); campaigns
/// map slots back to vantage points, resolver profiles, pages and
/// transports themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridUnit {
    /// Position in deterministic grid order (also the result slot).
    pub index: usize,
    pub vp: usize,
    pub resolver: usize,
    pub page: usize,
    pub transport: usize,
    pub rep: usize,
}

/// Axis sizes of a campaign's unit grid. Unused axes are size 1.
#[derive(Debug, Clone, Copy)]
pub struct UnitGrid {
    pub vps: usize,
    pub resolvers: usize,
    pub pages: usize,
    pub transports: usize,
    pub reps: usize,
}

impl UnitGrid {
    pub fn len(&self) -> usize {
        self.vps * self.resolvers * self.pages * self.transports * self.reps
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerate every unit in canonical order: repetition fastest,
    /// then transport, page, resolver, and vantage point slowest — the
    /// nesting every campaign historically used.
    pub fn units(&self) -> Vec<GridUnit> {
        let mut units = Vec::with_capacity(self.len());
        for vp in 0..self.vps {
            for resolver in 0..self.resolvers {
                for page in 0..self.pages {
                    for transport in 0..self.transports {
                        for rep in 0..self.reps {
                            units.push(GridUnit {
                                index: units.len(),
                                vp,
                                resolver,
                                page,
                                transport,
                                rep,
                            });
                        }
                    }
                }
            }
        }
        units
    }
}

/// Execute `run` for every unit on a pool of `threads` workers.
///
/// Scheduling is work-stealing: a shared atomic cursor hands out unit
/// indices first-come first-served, so slow units (a 30 s page-load
/// timeout, say) never leave the rest of a pre-assigned chunk idle.
/// Each worker calls `init` once to build its private state — the
/// reusable simulator arena — and threads it through every unit it
/// executes. Results are written into their unit's slot and returned
/// in grid order: the output is independent of thread count and
/// scheduling, so a campaign's samples are byte-identical whether it
/// ran on 1 thread or 64.
pub fn run_units<U, W, S>(
    threads: usize,
    units: &[U],
    init: impl Fn() -> W + Sync,
    run: impl Fn(&mut W, &U, usize) -> S + Sync,
) -> Vec<S>
where
    U: Sync,
    S: Send,
{
    let threads = threads.max(1).min(units.len().max(1));
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<S>> = Vec::with_capacity(units.len());
    slots.resize_with(units.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let init = &init;
                let run = &run;
                scope.spawn(move || {
                    // Register this worker's metrics shard so per-unit
                    // counters merge at campaign end (no-op when
                    // telemetry is disabled).
                    let _telemetry = doqlab_telemetry::metrics::worker_guard();
                    let mut worker = init();
                    let mut done: Vec<(usize, S)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(unit) = units.get(i) else { break };
                        done.push((i, run(&mut worker, unit, i)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, sample) in handle.join().expect("campaign worker panicked") {
                slots[i] = Some(sample);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every unit executed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_seed_matches_historical_single_query_hash() {
        // The exact value the pre-engine single_query::unit_seed
        // produced for (seed 0xD05_2022, vp 3, resolver 141, transport
        // 4, rep 7); pinned so refactors keep every sample's RNG
        // stream.
        let reference = {
            let mut h = 0xD05_2022u64 ^ 0x9E37_79B9_7F4A_7C15;
            for v in [3u64, 141, 4, 7] {
                h ^= v
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h = h.rotate_left(27).wrapping_mul(5).wrapping_add(0x52DC_E729);
            }
            h
        };
        assert_eq!(unit_seed(0xD05_2022, &[3, 141, 4, 7]), reference);
    }

    #[test]
    fn unit_seed_separates_coordinates() {
        // The webperf bug this replaces: packing `pi * 16 + t` collided
        // once pi crossed the packing radix. Hashed parts never do.
        let a = unit_seed(1, &[0, 0, 1, 0, 0]);
        let b = unit_seed(1, &[0, 0, 0, 16, 0]);
        assert_ne!(a, b);
        assert_ne!(unit_seed(1, &[2, 3]), unit_seed(1, &[3, 2]));
        assert_ne!(unit_seed(1, &[5]), unit_seed(2, &[5]));
    }

    #[test]
    fn grid_enumerates_in_canonical_order_with_indices() {
        let grid = UnitGrid {
            vps: 2,
            resolvers: 3,
            pages: 1,
            transports: 2,
            reps: 2,
        };
        let units = grid.units();
        assert_eq!(units.len(), grid.len());
        assert_eq!(units.len(), 24);
        for (i, u) in units.iter().enumerate() {
            assert_eq!(u.index, i);
        }
        // Repetition varies fastest, vantage point slowest.
        assert_eq!((units[0].vp, units[0].transport, units[0].rep), (0, 0, 0));
        assert_eq!((units[1].vp, units[1].transport, units[1].rep), (0, 0, 1));
        assert_eq!((units[2].vp, units[2].transport, units[2].rep), (0, 1, 0));
        assert_eq!(units[23].vp, 1);
        assert_eq!(units[12].vp, 1);
    }

    #[test]
    fn run_units_returns_grid_order_at_any_thread_count() {
        let units: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = units.iter().map(|u| u * u).collect();
        for threads in [1, 2, 4, 8, 16] {
            let results = run_units(
                threads,
                &units,
                || (),
                |(), &u, i| {
                    assert_eq!(u, i);
                    u * u
                },
            );
            assert_eq!(results, expected, "threads = {threads}");
        }
    }

    #[test]
    fn run_units_worker_state_persists_across_units() {
        // Each worker counts the units it ran; the total must cover the
        // grid exactly once even with more threads than units.
        let units: Vec<usize> = (0..10).collect();
        let results = run_units(
            32,
            &units,
            || 0usize,
            |count, &u, _| {
                *count += 1;
                (u, *count)
            },
        );
        assert_eq!(results.iter().map(|(u, _)| *u).collect::<Vec<_>>(), units);
        // Worker-local counters only ever increase along a worker's
        // sequence of units; every unit reports a positive count.
        assert!(results.iter().all(|&(_, c)| c >= 1));
    }

    #[test]
    fn env_parsing_falls_back_on_garbage() {
        // Can't mutate the process environment safely in a test binary
        // running other threads, so exercise only the fallback paths.
        assert_eq!(env_threads(7), 7);
        assert_eq!(env_seed(2022), 2022);
    }
}
