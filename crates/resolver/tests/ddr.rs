//! DDR (RFC 9462) tests: resolvers advertise their encrypted
//! transports via `_dns.resolver.arpa`/SVCB — the upgrade-discovery
//! path §4 of the paper describes for DoH3.

use doqlab_dnswire::{Message, Name, RData, RecordType, SvcParam};
use doqlab_dox::{ClientConfig, DnsClientHost, DnsTransport, ServerConfig};
use doqlab_resolver::{RecursionModel, ResolverHost};
use doqlab_simnet::path::FixedPathModel;
use doqlab_simnet::{Duration, Ipv4Addr, SimTime, Simulator, SocketAddr};

fn ddr_alpns(server: ServerConfig) -> Vec<String> {
    let resolver_ip = server.ip;
    let client_ip = Ipv4Addr::new(10, 0, 0, 1);
    let mut sim = Simulator::new(5, Box::new(FixedPathModel::new(Duration::from_millis(10))));
    sim.add_host(
        Box::new(ResolverHost::new(server, RecursionModel::default())),
        &[resolver_ip],
    );
    let client = DnsClientHost::new(
        DnsTransport::DoUdp,
        SocketAddr::new(client_ip, 40_000),
        SocketAddr::new(resolver_ip, 53),
        &ClientConfig::default(),
    );
    let cid = sim.add_host(Box::new(client), &[client_ip]);
    let q = Message::query(
        1,
        Name::parse("_dns.resolver.arpa").unwrap(),
        RecordType::Svcb,
    );
    sim.with_host::<DnsClientHost, _>(cid, |c, ctx| c.start_with_query(ctx, &q));
    sim.run_until(SimTime::from_secs(5));
    let client = sim.host::<DnsClientHost>(cid);
    let (_, resp) = client.responses.first().expect("DDR answered").clone();
    let mut alpns = Vec::new();
    for rr in &resp.answers {
        if let RData::Svcb { params, .. } = &rr.rdata {
            for p in params {
                if let SvcParam::Alpn(list) = p {
                    for a in list {
                        alpns.push(String::from_utf8(a.clone()).unwrap());
                    }
                }
            }
        }
    }
    alpns
}

#[test]
fn study_era_resolver_advertises_doq_doh_dot_but_not_h3() {
    let alpns = ddr_alpns(ServerConfig::default());
    assert!(alpns.contains(&"doq".to_string()));
    assert!(alpns.contains(&"h2".to_string()));
    assert!(alpns.contains(&"dot".to_string()));
    assert!(
        !alpns.contains(&"h3".to_string()),
        "DoH3 not deployed yet: {alpns:?}"
    );
}

#[test]
fn doh3_resolver_includes_h3_like_cloudflare() {
    let alpns = ddr_alpns(ServerConfig {
        supports_doh3: true,
        ..ServerConfig::default()
    });
    assert!(alpns.contains(&"h3".to_string()), "{alpns:?}");
    assert!(alpns.contains(&"doq".to_string()));
}

#[test]
fn doq_only_resolver_advertises_only_doq() {
    let server = ServerConfig {
        supports_doh: false,
        supports_dot: false,
        ..ServerConfig::default()
    };
    let alpns = ddr_alpns(server);
    assert_eq!(alpns, vec!["doq".to_string()]);
}
