//! The population-side stub resolver: a simulator host multiplexing a
//! whole client cohort behind one shared cache and one pooled upstream
//! connection.
//!
//! Real client populations do not talk to public resolvers directly —
//! they sit behind a stub/forwarder (the OS resolver, a home router, an
//! enterprise forwarder) whose cache absorbs the popular head of the
//! Zipf workload and whose connection pool amortizes the TLS/QUIC
//! handshake across queries. [`StubResolverHost`] models exactly that
//! front-end:
//!
//! * a [`WorkloadGen`] drives deterministic client arrivals;
//! * a shared [`DnsCache`] answers repeats — positive entries and
//!   RFC 2308 negative verdicts alike — without upstream traffic;
//! * identical concurrent misses are **coalesced** onto one in-flight
//!   upstream query;
//! * misses ride a pooled [`DnsClientHost`]
//!   ([`ClientConfig::pool_idle_timeout`]), so handshakes happen on
//!   first use and after idle evictions, not per query;
//! * per-client resolve times land in a local logarithmic histogram
//!   (the same buckets as `doqlab-telemetry`), cache hits counting as
//!   zero-latency resolutions.

use crate::cache::{CachedAnswer, DnsCache};
use crate::host::NEGATIVE_TTL;
use crate::workload::WorkloadGen;
use doqlab_dnswire::{Message, NameId, RData, Rcode, RecordType};
use doqlab_dox::client::{ClientConfig, DnsTransport};
use doqlab_dox::host::DnsClientHost;
use doqlab_simnet::{Ctx, Host, Packet, SimTime, SocketAddr};
use doqlab_telemetry::metrics::bucket_index;
use std::any::Any;

/// Per-cohort accounting, exported into the campaign sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StubStats {
    /// Client queries presented to the stub.
    pub queries: u64,
    /// Served from the shared cache (positive or negative entry).
    pub cache_hits: u64,
    /// Subset of `cache_hits` served from a negative entry.
    pub negative_hits: u64,
    /// Misses that joined an already in-flight upstream query.
    pub coalesced: u64,
    /// Queries actually sent upstream.
    pub upstream_queries: u64,
    /// Upstream answers received (positive or negative).
    pub upstream_answered: u64,
    /// Client queries abandoned because the pool gave up on them.
    pub failed: u64,
}

/// One in-flight upstream query and the client arrivals waiting on it.
#[derive(Debug)]
struct Inflight {
    id: u16,
    /// Interned handle from the workload generator — coalescing
    /// compares 4-byte ids, not heap label vectors.
    name_id: NameId,
    rtype: RecordType,
    /// Issue time of every waiting client query (first = the one that
    /// triggered the upstream query, rest = coalesced joiners).
    waiters: Vec<SimTime>,
}

/// The stub/forwarder simulator host.
pub struct StubResolverHost {
    upstream: DnsClientHost,
    cache: DnsCache,
    cache_enabled: bool,
    gen: WorkloadGen,
    next_arrival: Option<SimTime>,
    inflight: Vec<Inflight>,
    next_id: u16,
    stats: StubStats,
    /// Logarithmic resolve-time histogram (`bucket_index` buckets),
    /// grown on demand.
    hist: Vec<u64>,
}

impl StubResolverHost {
    /// Build a stub for one cohort. `cfg` should carry a
    /// `pool_idle_timeout` so the upstream connection is pooled;
    /// `cache_enabled: false` degrades the stub to a pure forwarder
    /// (every query goes upstream).
    pub fn new(
        transport: DnsTransport,
        local: SocketAddr,
        remote: SocketAddr,
        cfg: &ClientConfig,
        gen: WorkloadGen,
        cache_enabled: bool,
    ) -> Self {
        StubResolverHost {
            upstream: DnsClientHost::new(transport, local, remote, cfg),
            cache: DnsCache::new(),
            cache_enabled,
            gen,
            next_arrival: None,
            inflight: Vec::new(),
            next_id: 1,
            stats: StubStats::default(),
            hist: Vec::new(),
        }
    }

    /// Anchor the workload window at the current simulated time and arm
    /// the first arrival. Call once, right after adding the host:
    /// without it the stub never wakes up.
    pub fn prime(&mut self, ctx: &mut Ctx<'_>) {
        self.gen.anchor(ctx.now);
        self.next_arrival = self.gen.next_arrival(ctx.now, ctx.rng);
    }

    pub fn stats(&self) -> StubStats {
        self.stats
    }

    pub fn cache(&self) -> &DnsCache {
        &self.cache
    }

    pub fn upstream(&self) -> &DnsClientHost {
        &self.upstream
    }

    /// The resolve-time histogram as sparse `(bucket, count)` pairs.
    /// Cache hits are recorded as zero-latency resolutions (bucket 0).
    pub fn resolve_hist(&self) -> Vec<(u32, u64)> {
        self.hist
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    fn record_resolve(&mut self, ns: u64) {
        let i = bucket_index(ns);
        if i >= self.hist.len() {
            self.hist.resize(i + 1, 0);
        }
        self.hist[i] += 1;
    }

    fn alloc_id(&mut self) -> u16 {
        loop {
            let id = self.next_id;
            self.next_id = self.next_id.wrapping_add(1).max(1);
            if !self.inflight.iter().any(|f| f.id == id) {
                return id;
            }
        }
    }

    /// One client query arrives: try the cache, then coalesce onto an
    /// in-flight upstream query, then go upstream.
    fn on_client_query(&mut self, ctx: &mut Ctx<'_>) {
        self.stats.queries += 1;
        let rank = self.gen.sample_rank(ctx.rng);
        let (name_id, rtype) = self.gen.query_id_for_rank(rank);
        if self.cache_enabled {
            match self.cache.get_answer_id(ctx.now, name_id, rtype) {
                Some(CachedAnswer::Records(_)) => {
                    self.stats.cache_hits += 1;
                    self.record_resolve(0);
                    return;
                }
                Some(CachedAnswer::Negative(_)) => {
                    self.stats.cache_hits += 1;
                    self.stats.negative_hits += 1;
                    self.record_resolve(0);
                    return;
                }
                None => {}
            }
        }
        if let Some(f) = self
            .inflight
            .iter_mut()
            .find(|f| f.rtype == rtype && f.name_id == name_id)
        {
            f.waiters.push(ctx.now);
            self.stats.coalesced += 1;
            return;
        }
        let id = self.alloc_id();
        // The one place an owned Name is needed: the wire query.
        let msg = Message::query(id, self.gen.name_of(name_id).clone(), rtype);
        self.inflight.push(Inflight {
            id,
            name_id,
            rtype,
            waiters: vec![ctx.now],
        });
        self.stats.upstream_queries += 1;
        self.upstream.start_with_query(ctx, &msg);
    }

    /// Negative TTL for a response, RFC 2308 style: `min(SOA TTL, SOA
    /// MINIMUM)` from the authority section, defaulting to the
    /// simulated zone's [`NEGATIVE_TTL`].
    fn negative_ttl(resp: &Message) -> u32 {
        resp.authorities
            .iter()
            .find_map(|rr| match &rr.rdata {
                RData::Soa { minimum, .. } => Some(rr.ttl.min(*minimum)),
                _ => None,
            })
            .unwrap_or(NEGATIVE_TTL)
    }

    /// Fold upstream progress back into the stub: retire answered
    /// in-flight queries (filling the cache, timing every waiter) and
    /// fail the ones the pool abandoned.
    fn collect_upstream(&mut self) {
        for (at, resp) in std::mem::take(&mut self.upstream.responses) {
            let Some(pos) = self.inflight.iter().position(|f| f.id == resp.header.id) else {
                continue;
            };
            let f = self.inflight.swap_remove(pos);
            self.stats.upstream_answered += 1;
            if self.cache_enabled {
                match (resp.header.rcode, resp.answers.is_empty()) {
                    (Rcode::NoError, false) => {
                        self.cache
                            .put_id(at, f.name_id, f.rtype, resp.answers.clone());
                    }
                    (Rcode::NoError, true) | (Rcode::NxDomain, _) => {
                        self.cache.put_negative_id(
                            at,
                            f.name_id,
                            f.rtype,
                            resp.header.rcode,
                            Self::negative_ttl(&resp),
                        );
                    }
                    // Other rcodes (FORMERR, SERVFAIL …) are not
                    // cacheable verdicts.
                    _ => {}
                }
            }
            for issued in f.waiters {
                self.record_resolve((at - issued).as_nanos() as u64);
            }
        }
        for q in self.upstream.take_abandoned() {
            if let Some(pos) = self.inflight.iter().position(|f| f.id == q.header.id) {
                let f = self.inflight.swap_remove(pos);
                self.stats.failed += f.waiters.len() as u64;
            }
        }
    }
}

impl Host for StubResolverHost {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        self.upstream.on_packet(ctx, pkt);
        self.collect_upstream();
    }

    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        // Issue every arrival that is due; ctx.now is exactly the
        // armed arrival time unless upstream timers coincided.
        while let Some(t) = self.next_arrival {
            if t > ctx.now {
                break;
            }
            self.on_client_query(ctx);
            self.next_arrival = self.gen.next_arrival(t, ctx.rng);
        }
        self.upstream.on_wakeup(ctx);
        self.collect_upstream();
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        match (self.next_arrival, self.upstream.next_wakeup()) {
            (Some(a), Some(u)) => Some(a.min(u)),
            (a, u) => a.or(u),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{RecursionModel, ResolverHost};
    use crate::workload::WorkloadSpec;
    use doqlab_dox::server::ServerConfig;
    use doqlab_simnet::path::FixedPathModel;
    use doqlab_simnet::{Duration, Ipv4Addr, Simulator};

    #[derive(Debug, PartialEq)]
    struct RunOutcome {
        stats: StubStats,
        cache: (u64, u64),
        negative: u64,
        reuses: u64,
        evictions: u32,
        reconnects: u32,
        hist: Vec<(u32, u64)>,
    }

    fn run_population(
        transport: DnsTransport,
        spec: WorkloadSpec,
        cache_enabled: bool,
        seed: u64,
    ) -> RunOutcome {
        let resolver_ip = Ipv4Addr::new(192, 0, 2, 1);
        let stub_ip = Ipv4Addr::new(10, 0, 0, 1);
        let mut sim = Simulator::new(
            seed,
            Box::new(FixedPathModel::new(Duration::from_millis(10))),
        );
        let resolver = ResolverHost::new(
            ServerConfig {
                ip: resolver_ip,
                ..ServerConfig::default()
            },
            RecursionModel::default(),
        );
        sim.add_host(Box::new(resolver), &[resolver_ip]);
        let cfg = ClientConfig {
            pool_idle_timeout: Some(std::time::Duration::from_secs(10)),
            reconnect_max: 2,
            ..ClientConfig::default()
        };
        let window = spec.window;
        let gen = WorkloadGen::new(spec);
        let stub = StubResolverHost::new(
            transport,
            SocketAddr::new(stub_ip, 40_000),
            SocketAddr::new(resolver_ip, transport.port()),
            &cfg,
            gen,
            cache_enabled,
        );
        let sid = sim.add_host(Box::new(stub), &[stub_ip]);
        sim.with_host::<StubResolverHost, _>(sid, |s, ctx| s.prime(ctx));
        sim.run_until(SimTime::ZERO + window + Duration::from_secs(60));
        let stub = sim.host::<StubResolverHost>(sid);
        RunOutcome {
            stats: stub.stats(),
            cache: stub.cache().stats(),
            negative: stub.cache().negative_hits(),
            reuses: stub.upstream().pool_reuses(),
            evictions: stub.upstream().pool_evictions(),
            reconnects: stub.upstream().reconnects(),
            hist: stub.resolve_hist(),
        }
    }

    fn busy_spec() -> WorkloadSpec {
        WorkloadSpec {
            clients: 20,
            queries_per_client: 30.0,
            window: Duration::from_secs(600),
            alpha: 1.0,
            domains: 40,
            nxdomain_tail: 0.25,
        }
    }

    #[test]
    fn cohort_day_hits_cache_and_reuses_connections() {
        let out = run_population(DnsTransport::DoT, busy_spec(), true, 42);
        // ~600 expected queries at 1/s against TTL-300 records: the
        // popular head must hit, misses must coalesce or pool.
        let expect = 20.0 * 30.0;
        let n = out.stats.queries as f64;
        assert!(n > 0.8 * expect && n < 1.2 * expect, "{:?}", out.stats);
        assert!(out.stats.cache_hits > 0, "no cache hits: {:?}", out.stats);
        assert!(
            out.stats.upstream_queries < out.stats.queries,
            "{:?}",
            out.stats
        );
        assert_eq!(
            out.stats.queries,
            out.stats.cache_hits + out.stats.coalesced + out.stats.upstream_queries,
            "{:?}",
            out.stats
        );
        assert!(out.reuses > 0, "pool never reused a connection");
        assert!(!out.hist.is_empty());
        // Bucket 0 = zero-latency cache hits.
        assert_eq!(out.hist[0].0, 0);
        assert!(out.hist[0].1 >= out.stats.cache_hits);
    }

    #[test]
    fn idle_eviction_is_not_a_reconnect() {
        // After the window's last response the connection sits idle and
        // must be evicted — bookkept as an eviction, never a reconnect.
        // DoUDP on a clean network cannot fail, so any nonzero
        // reconnect count here could only be a miscounted eviction.
        let out = run_population(DnsTransport::DoUdp, busy_spec(), true, 42);
        assert!(out.evictions >= 1, "no idle eviction: {out:?}");
        assert_eq!(out.reconnects, 0, "eviction counted as reconnect");
    }

    #[test]
    fn nxdomain_tail_populates_the_negative_cache() {
        let spec = WorkloadSpec {
            clients: 50,
            queries_per_client: 20.0,
            window: Duration::from_secs(120),
            alpha: 1.2,
            domains: 10,
            nxdomain_tail: 0.9,
        };
        let out = run_population(DnsTransport::DoUdp, spec, true, 7);
        assert!(out.negative > 0, "no negative hits: {out:?}");
    }

    #[test]
    fn disabling_the_cache_forwards_everything() {
        let out = run_population(DnsTransport::DoUdp, busy_spec(), false, 42);
        assert_eq!(out.cache, (0, 0));
        assert_eq!(out.stats.cache_hits, 0);
        // Every query either went upstream or coalesced onto one.
        assert_eq!(
            out.stats.queries,
            out.stats.upstream_queries + out.stats.coalesced
        );
    }

    #[test]
    fn cohort_runs_are_deterministic() {
        let a = run_population(DnsTransport::DoQ, busy_spec(), true, 1234);
        let b = run_population(DnsTransport::DoQ, busy_spec(), true, 1234);
        assert_eq!(a, b);
        let c = run_population(DnsTransport::DoQ, busy_spec(), true, 1235);
        assert_ne!(a, c);
    }
}
