//! Synthesis of the study's resolver population.
//!
//! §2/§3 of the paper pin down the population we must reproduce:
//!
//! * 313 verified DoX resolvers — EU 130, AS 128, NA 49, AF 2, OC 2,
//!   SA 2 — across 107 ASes (ORACLE 47, DIGITALOCEAN 20, MNGTNET 18,
//!   OVHCLOUD 16, the rest ≤ 12 each);
//! * every resolver supports TLS 1.3 Session Resumption with 7-day
//!   tickets; none supports 0-RTT, TFO or edns-tcp-keepalive; ~1% of
//!   measurements negotiate TLS 1.2;
//! * QUIC versions observed: v1 89.1%, draft-34 8.5%, draft-32 1.8%,
//!   draft-29 0.6%; DoQ ALPNs: doq-i02 87.4%, doq-i03 10.8%,
//!   doq-i00 1.8%;
//! * the discovery funnel: 1,216 DoQ resolvers, of which 548 also do
//!   DoUDP, 706 DoTCP, 1,149 DoT, 732 DoH — full intersection 313.

use doqlab_dox::alpn::DoqAlpn;
use doqlab_dox::server::ServerConfig;
use doqlab_netstack::quic::{draft_version, QUIC_V1};
use doqlab_netstack::tls::TlsVersion;
use doqlab_simnet::geo::Continent;
use doqlab_simnet::{Coord, Ipv4Addr, SimRng};
use serde::Serialize;

/// Paper §2: verified DoX resolvers per continent, in row order.
pub const DOX_PER_CONTINENT: [(Continent, usize); 6] = [
    (Continent::Europe, 130),
    (Continent::Asia, 128),
    (Continent::NorthAmerica, 49),
    (Continent::Africa, 2),
    (Continent::Oceania, 2),
    (Continent::SouthAmerica, 2),
];

/// Paper §2: total verified DoX resolvers.
pub const DOX_TOTAL: usize = 313;

/// Paper §2: discovery funnel sizes.
pub const DOQ_TOTAL: usize = 1216;
pub const DOQ_WITH_DOUDP: usize = 548;
pub const DOQ_WITH_DOTCP: usize = 706;
pub const DOQ_WITH_DOT: usize = 1149;
pub const DOQ_WITH_DOH: usize = 732;

/// One verified DoX resolver.
#[derive(Debug, Clone, Serialize)]
pub struct ResolverProfile {
    pub index: usize,
    #[serde(skip)]
    pub ip: Ipv4Addr,
    pub continent: Continent,
    pub location: Coord,
    /// Synthetic AS name.
    pub asn: String,
    #[serde(skip)]
    pub tls_versions: Vec<TlsVersion>,
    #[serde(skip)]
    pub quic_versions: Vec<u32>,
    #[serde(skip)]
    pub doq_alpns: Vec<DoqAlpn>,
    /// Certificate chain size — decides whether the full QUIC handshake
    /// exceeds the anti-amplification budget.
    pub cert_chain_len: u16,
    /// Serve DoH3 on UDP 443 (off in the study-era population; the
    /// `doh3_preview` experiment flips it).
    #[serde(skip)]
    pub serve_doh3: bool,
}

impl ResolverProfile {
    /// Server configuration for this resolver (optionally overriding
    /// the paper's observed feature gaps for ablations).
    pub fn server_config(&self) -> ServerConfig {
        ServerConfig {
            ip: self.ip,
            server_id: 0x0d0_0000 + self.index as u64,
            tls_versions: self.tls_versions.clone(),
            cert_chain_len: self.cert_chain_len,
            quic_versions: self.quic_versions.clone(),
            doq_alpns: self.doq_alpns.clone(),
            supports_doh3: self.serve_doh3,
            ..ServerConfig::default()
        }
    }
}

/// AS distribution from §2 (the remainder is spread over small ASes so
/// that the total is 107 distinct ASes).
fn assign_asns(rng: &mut SimRng, n: usize) -> Vec<String> {
    let mut pool: Vec<String> = Vec::new();
    for (name, count) in [
        ("ORACLE", 47),
        ("DIGITALOCEAN", 20),
        ("MNGTNET", 18),
        ("OVHCLOUD", 16),
    ] {
        pool.extend(std::iter::repeat_n(name.to_string(), count));
    }
    // 103 more ASes for the remaining 212 resolvers, each <= 12.
    let remaining = n - pool.len();
    let small_as_count = 103;
    let mut sizes = vec![1usize; small_as_count];
    let mut left = remaining - small_as_count;
    while left > 0 {
        let i = rng.below(small_as_count as u64) as usize;
        if sizes[i] < 12 {
            sizes[i] += 1;
            left -= 1;
        }
    }
    for (i, size) in sizes.iter().enumerate() {
        pool.extend(std::iter::repeat_n(format!("AS-{:03}", i + 1), *size));
    }
    debug_assert_eq!(pool.len(), n);
    rng.shuffle(&mut pool);
    pool
}

/// Scatter a resolver around its continent's centre.
fn scatter(rng: &mut SimRng, c: Continent) -> Coord {
    let center = c.center();
    Coord::new(
        (center.lat + rng.normal_with(0.0, 8.0)).clamp(-60.0, 70.0),
        center.lon + rng.normal_with(0.0, 12.0),
    )
}

/// Synthesize the 313 verified DoX resolvers.
pub fn synthesize_dox_population(seed: u64) -> Vec<ResolverProfile> {
    let mut rng = SimRng::new(seed ^ 0xD0A_D0A);
    let mut asns = assign_asns(&mut rng, DOX_TOTAL);
    let mut out = Vec::with_capacity(DOX_TOTAL);
    let mut index = 0usize;
    for (continent, count) in DOX_PER_CONTINENT {
        for _ in 0..count {
            // ~1% of resolvers are TLS 1.2-only (matching the ~1% of
            // measurements on TLS 1.2).
            let tls_versions = if rng.chance(0.01) {
                vec![TlsVersion::Tls12]
            } else {
                vec![TlsVersion::Tls13]
            };
            // QUIC version support per the observed measurement shares.
            let quic_versions = match rng.pick_weighted(&[89.1, 8.5, 1.8, 0.6]) {
                0 => vec![
                    QUIC_V1,
                    draft_version(34),
                    draft_version(32),
                    draft_version(29),
                ],
                1 => vec![draft_version(34), draft_version(32), draft_version(29)],
                2 => vec![draft_version(32), draft_version(29)],
                _ => vec![draft_version(29)],
            };
            // DoQ ALPN per the observed shares.
            let doq_alpns = match rng.pick_weighted(&[87.4, 10.8, 1.8]) {
                0 => vec![DoqAlpn::Draft(2), DoqAlpn::Draft(0)],
                1 => vec![DoqAlpn::Draft(3), DoqAlpn::Draft(2)],
                _ => vec![DoqAlpn::Draft(0)],
            };
            // Chain sizes straddle the 3x1200-byte amplification budget
            // so that, without resumption, a sizeable fraction of full
            // handshakes stall (the preliminary study saw ~40%).
            let cert_chain_len = rng.normal_with(2650.0, 550.0).clamp(1500.0, 4600.0) as u16;
            out.push(ResolverProfile {
                index,
                ip: Ipv4Addr::new(203, ((index + 256) >> 8) as u8, (index & 0xFF) as u8, 53),
                continent,
                location: scatter(&mut rng, continent),
                asn: asns.pop().expect("sized for DOX_TOTAL"),
                tls_versions,
                quic_versions,
                doq_alpns,
                cert_chain_len,
                serve_doh3: false,
            });
            index += 1;
        }
    }
    out
}

/// A host in the wider IPv4 scan population.
#[derive(Debug, Clone)]
pub struct ScannedHost {
    pub ip: Ipv4Addr,
    /// Responds to QUIC on these UDP ports (784/853/8853 subset).
    pub quic_ports: Vec<u16>,
    /// Accepts the DoQ ALPN (i.e. is a DoQ resolver at all).
    pub speaks_doq: bool,
    pub supports_udp: bool,
    pub supports_tcp: bool,
    pub supports_dot: bool,
    pub supports_doh: bool,
}

impl ScannedHost {
    pub fn is_full_dox(&self) -> bool {
        self.speaks_doq
            && self.supports_udp
            && self.supports_tcp
            && self.supports_dot
            && self.supports_doh
    }

    pub fn server_config(&self, server_id: u64) -> ServerConfig {
        ServerConfig {
            ip: self.ip,
            server_id,
            supports_udp: self.supports_udp,
            supports_tcp: self.supports_tcp,
            supports_dot: self.supports_dot,
            supports_doh: self.supports_doh,
            // Any QUIC endpoint answers Version Negotiation (that is
            // what the scan detects); whether it is *DoQ* is decided by
            // the ALPN list below.
            supports_doq: !self.quic_ports.is_empty(),
            doq_ports: self.quic_ports.clone(),
            doq_alpns: if self.speaks_doq {
                vec![DoqAlpn::Draft(2)]
            } else {
                vec![] // QUIC host that is not DoQ (e.g. HTTP/3)
            },
            ..ServerConfig::default()
        }
    }
}

/// Exact-marginal boolean column: `ones` true values among `n`.
fn exact_column(rng: &mut SimRng, n: usize, ones: usize) -> Vec<bool> {
    let mut v = vec![false; n];
    for slot in v.iter_mut().take(ones) {
        *slot = true;
    }
    rng.shuffle(&mut v);
    v
}

/// Synthesize the scan population behind the discovery funnel:
/// `extra_quic` QUIC-but-not-DoQ hosts plus exactly [`DOQ_TOTAL`] DoQ
/// resolvers whose partial protocol support reproduces the paper's
/// marginals with a full intersection of exactly [`DOX_TOTAL`].
pub fn synthesize_scan_population(seed: u64, extra_quic: usize) -> Vec<ScannedHost> {
    let mut rng = SimRng::new(seed ^ 0x5CA_7715);
    let mut hosts = Vec::new();
    // The 313 full-DoX resolvers.
    for i in 0..DOX_TOTAL {
        hosts.push(ScannedHost {
            ip: Ipv4Addr::new(203, ((i + 256) >> 8) as u8, (i & 0xFF) as u8, 53),
            quic_ports: vec![853, 784, 8853],
            speaks_doq: true,
            supports_udp: true,
            supports_tcp: true,
            supports_dot: true,
            supports_doh: true,
        });
    }
    // The remaining DoQ resolvers with partial support; exact marginals.
    let rest = DOQ_TOTAL - DOX_TOTAL;
    let udp = exact_column(&mut rng, rest, DOQ_WITH_DOUDP - DOX_TOTAL);
    let tcp = exact_column(&mut rng, rest, DOQ_WITH_DOTCP - DOX_TOTAL);
    let dot = exact_column(&mut rng, rest, DOQ_WITH_DOT - DOX_TOTAL);
    let doh = exact_column(&mut rng, rest, DOQ_WITH_DOH - DOX_TOTAL);
    let mut cols: Vec<[bool; 4]> = (0..rest)
        .map(|i| [udp[i], tcp[i], dot[i], doh[i]])
        .collect();
    // No row outside the 313 may support everything: swap a flag from
    // any all-true row into a row missing that flag (marginals kept).
    for i in 0..cols.len() {
        if cols[i].iter().all(|b| *b) {
            // Move this row's DoUDP bit to a row that lacks it and that
            // will not itself become all-true.
            if let Some(j) =
                (0..cols.len()).find(|&j| !(cols[j][0] || cols[j][1] && cols[j][2] && cols[j][3]))
            {
                cols[i][0] = false;
                cols[j][0] = true;
            }
        }
    }
    for (i, c) in cols.iter().enumerate() {
        let n = DOX_TOTAL + i;
        // DoQ ports: most listen on all three, some only on a subset.
        let quic_ports = match rng.pick_weighted(&[70.0, 15.0, 10.0, 5.0]) {
            0 => vec![853, 784, 8853],
            1 => vec![853],
            2 => vec![784],
            _ => vec![8853],
        };
        hosts.push(ScannedHost {
            ip: Ipv4Addr::new(203, ((n + 256) >> 8) as u8, (n & 0xFF) as u8, 53),
            quic_ports,
            speaks_doq: true,
            supports_udp: c[0],
            supports_tcp: c[1],
            supports_dot: c[2],
            supports_doh: c[3],
        });
    }
    // QUIC hosts that are not DoQ (HTTP/3 web servers and the like):
    // they send Version Negotiation but refuse the DoQ ALPN.
    for i in 0..extra_quic {
        let n = DOQ_TOTAL + i;
        hosts.push(ScannedHost {
            ip: Ipv4Addr::new(198, (n >> 8) as u8, (n & 0xFF) as u8, 80),
            quic_ports: vec![853],
            speaks_doq: false,
            supports_udp: false,
            supports_tcp: false,
            supports_dot: false,
            supports_doh: false,
        });
    }
    hosts
}

/// The client side of a population campaign: how many simulated clients
/// sit behind the stubs, split evenly across the vantage × transport
/// cohorts.
///
/// The interesting scales run 10⁵–10⁶ clients; tests and CI smokes use
/// a few hundred. Splitting is exact-or-ceiling so no cohort is ever
/// empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ClientPopulation {
    /// Total simulated clients across all cohorts.
    pub clients: u64,
    /// Number of cohorts the clients are divided among (one stub per
    /// vantage × transport combination).
    pub cohorts: u64,
}

impl ClientPopulation {
    pub fn new(clients: u64, cohorts: u64) -> Self {
        ClientPopulation {
            clients: clients.max(1),
            cohorts: cohorts.max(1),
        }
    }

    /// Clients multiplexed behind one cohort's stub (ceiling division,
    /// so every cohort has at least one client).
    pub fn per_cohort(&self) -> u64 {
        self.clients.div_ceil(self.cohorts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn dox_population_matches_continent_counts() {
        let pop = synthesize_dox_population(1);
        assert_eq!(pop.len(), DOX_TOTAL);
        let mut counts: HashMap<Continent, usize> = HashMap::new();
        for r in &pop {
            *counts.entry(r.continent).or_default() += 1;
        }
        for (c, n) in DOX_PER_CONTINENT {
            assert_eq!(counts[&c], n, "{c}");
        }
    }

    #[test]
    fn dox_population_has_107_ases_with_paper_heads() {
        let pop = synthesize_dox_population(1);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for r in &pop {
            *counts.entry(r.asn.as_str()).or_default() += 1;
        }
        assert_eq!(counts.len(), 107);
        assert_eq!(counts["ORACLE"], 47);
        assert_eq!(counts["DIGITALOCEAN"], 20);
        assert_eq!(counts["MNGTNET"], 18);
        assert_eq!(counts["OVHCLOUD"], 16);
        assert!(counts
            .iter()
            .filter(|(k, _)| k.starts_with("AS-"))
            .all(|(_, v)| *v <= 12));
    }

    #[test]
    fn dox_population_is_deterministic_and_ips_unique() {
        let a = synthesize_dox_population(1);
        let b = synthesize_dox_population(1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.cert_chain_len, y.cert_chain_len);
        }
        let ips: HashSet<_> = a.iter().map(|r| r.ip).collect();
        assert_eq!(ips.len(), DOX_TOTAL);
    }

    #[test]
    fn version_shares_are_near_paper_values() {
        let pop = synthesize_dox_population(1);
        let v1 = pop
            .iter()
            .filter(|r| r.quic_versions.contains(&QUIC_V1))
            .count();
        // 89.1% of a 313 draw: allow generous sampling slack.
        let frac = v1 as f64 / pop.len() as f64;
        assert!((0.82..=0.96).contains(&frac), "v1 share {frac}");
        let i02 = pop
            .iter()
            .filter(|r| r.doq_alpns.first() == Some(&DoqAlpn::Draft(2)))
            .count() as f64
            / pop.len() as f64;
        assert!((0.80..=0.94).contains(&i02), "doq-i02 share {i02}");
        let tls12 = pop
            .iter()
            .filter(|r| r.tls_versions == vec![TlsVersion::Tls12])
            .count();
        assert!(tls12 <= 12, "tls1.2-only resolvers: {tls12}");
    }

    #[test]
    fn nobody_supports_0rtt_tfo_or_keepalive() {
        for r in synthesize_dox_population(1) {
            let cfg = r.server_config();
            assert!(!cfg.enable_0rtt);
            assert!(!cfg.enable_tfo);
            assert!(!cfg.tcp_keepalive);
        }
    }

    #[test]
    fn scan_population_reproduces_funnel_marginals() {
        let pop = synthesize_scan_population(1, 500);
        let doq: Vec<_> = pop.iter().filter(|h| h.speaks_doq).collect();
        assert_eq!(doq.len(), DOQ_TOTAL);
        assert_eq!(
            doq.iter().filter(|h| h.supports_udp).count(),
            DOQ_WITH_DOUDP
        );
        assert_eq!(
            doq.iter().filter(|h| h.supports_tcp).count(),
            DOQ_WITH_DOTCP
        );
        assert_eq!(doq.iter().filter(|h| h.supports_dot).count(), DOQ_WITH_DOT);
        assert_eq!(doq.iter().filter(|h| h.supports_doh).count(), DOQ_WITH_DOH);
        assert_eq!(doq.iter().filter(|h| h.is_full_dox()).count(), DOX_TOTAL);
        assert_eq!(pop.len(), DOQ_TOTAL + 500);
    }

    #[test]
    fn scan_population_ips_unique() {
        let pop = synthesize_scan_population(1, 500);
        let ips: HashSet<_> = pop.iter().map(|h| h.ip).collect();
        assert_eq!(ips.len(), pop.len());
    }

    #[test]
    fn cert_chain_spread_straddles_amplification_budget() {
        let pop = synthesize_dox_population(1);
        let over = pop.iter().filter(|r| r.cert_chain_len > 2800).count() as f64 / pop.len() as f64;
        assert!(
            (0.25..=0.55).contains(&over),
            "fraction over budget: {over}"
        );
    }
}
