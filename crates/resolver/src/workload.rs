//! Deterministic population workload generation: what a vantage point's
//! client population asks its stub resolver, and when.
//!
//! Two classic empirical regularities drive the model:
//!
//! * **Zipf popularity** — the i-th most popular name receives queries
//!   proportional to `1 / i^alpha` (alpha ≈ 0.9 for DNS workloads).
//!   The exponent controls how cacheable the workload is: a higher
//!   alpha concentrates queries on few names, raising hit ratios.
//! * **Diurnal load** — query rate follows the day: a sinusoid with a
//!   night-time trough at the window start and a midday peak halfway
//!   through. Arrivals are a non-homogeneous Poisson process sampled by
//!   exponential thinning against the peak rate.
//!
//! Everything is a pure function of the seeded [`SimRng`] and simulated
//! time — no wall clock, no global state — so a cohort's entire day is
//! reproducible from its unit seed.

use doqlab_dnswire::{Name, NameId, NameInterner, RecordType};
use doqlab_simnet::{Duration, SimRng, SimTime};

/// Peak-to-mean swing of the diurnal sinusoid: the midday peak runs at
/// `1 + A` times the mean rate, the night trough at `1 - A`.
pub const DIURNAL_AMPLITUDE: f64 = 0.45;

/// Shape of one cohort's query workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Logical clients multiplexed behind the stub.
    pub clients: u64,
    /// Mean queries per client over the whole window.
    pub queries_per_client: f64,
    /// The simulated window (the "day").
    pub window: Duration,
    /// Zipf exponent alpha.
    pub alpha: f64,
    /// Distinct names in the popularity table.
    pub domains: usize,
    /// Fraction of the table (taken from the unpopular tail) that does
    /// not exist: queries there come back NXDOMAIN and exercise the
    /// stub's negative cache.
    pub nxdomain_tail: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            clients: 1,
            queries_per_client: 100.0,
            window: Duration::from_secs(86_400),
            alpha: 0.9,
            domains: 1000,
            nxdomain_tail: 0.15,
        }
    }
}

/// A seeded, anchored workload generator: popularity table plus arrival
/// process. Build it, [`anchor`](WorkloadGen::anchor) it at the window
/// start, then pull arrivals and queries.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    spec: WorkloadSpec,
    /// Cumulative normalized Zipf weights; sampled by binary search.
    cum: Vec<f64>,
    /// Ranks at and past this index are nonexistent names.
    nx_from: usize,
    /// Mean query rate over the window, queries per second.
    base_rate: f64,
    start: SimTime,
    end: SimTime,
    /// All rank names, interned once at construction; the per-query hot
    /// path hands out copy-cheap [`NameId`]s instead of re-parsing
    /// `d<rank>.pop.doqlab.test` strings.
    interner: NameInterner,
    /// rank -> interned id; ids are dense and assigned in rank order.
    rank_ids: Vec<NameId>,
}

impl WorkloadGen {
    pub fn new(spec: WorkloadSpec) -> Self {
        let n = spec.domains.max(1);
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(spec.alpha);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        let nx = ((n as f64) * spec.nxdomain_tail.clamp(0.0, 1.0)).round() as usize;
        let nx_from = n - nx.min(n);
        let window_s = spec.window.as_secs_f64().max(1e-9);
        let base_rate = spec.clients as f64 * spec.queries_per_client / window_s;
        let mut interner = NameInterner::new();
        let mut rank_ids = Vec::with_capacity(n);
        for rank in 0..n {
            let name = if rank >= nx_from {
                Name::parse(&format!("nx-{rank}.pop.doqlab.test")).expect("synthetic name")
            } else {
                Name::parse(&format!("d{rank}.pop.doqlab.test")).expect("synthetic name")
            };
            rank_ids.push(interner.intern(&name));
        }
        WorkloadGen {
            spec,
            cum,
            nx_from,
            base_rate,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            interner,
            rank_ids,
        }
    }

    /// Pin the window to simulated time: `[start, start + window)`.
    pub fn anchor(&mut self, start: SimTime) {
        self.start = start;
        self.end = start + self.spec.window;
    }

    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Expected total queries over the window.
    pub fn expected_queries(&self) -> f64 {
        self.spec.clients as f64 * self.spec.queries_per_client
    }

    /// Instantaneous arrival rate (queries/s): the diurnal sinusoid,
    /// trough at the window start, peak halfway through. Its mean over
    /// the window is exactly `base_rate`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        if t < self.start || t >= self.end {
            return 0.0;
        }
        let x = (t - self.start).as_secs_f64() / self.spec.window.as_secs_f64().max(1e-9);
        self.base_rate * (1.0 - DIURNAL_AMPLITUDE * (std::f64::consts::TAU * x).cos())
    }

    /// Next arrival strictly after `t`, or `None` once the window is
    /// over. Non-homogeneous Poisson sampling by thinning: candidates
    /// are drawn at the peak rate and accepted with probability
    /// `rate(t) / peak`.
    pub fn next_arrival(&self, t: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        let peak = self.base_rate * (1.0 + DIURNAL_AMPLITUDE);
        if peak <= 0.0 || self.end <= self.start {
            return None;
        }
        let mut t = t.max(self.start);
        loop {
            let gap_s = rng.exponential(1.0 / peak);
            // At least one nanosecond forward, so time always advances.
            let gap_ns = (gap_s * 1e9).clamp(1.0, 1e18);
            t += Duration::from_nanos(gap_ns as u64);
            if t >= self.end {
                return None;
            }
            if rng.f64() < self.rate_at(t) / peak {
                return Some(t);
            }
        }
    }

    /// Sample a popularity rank (0 = most popular).
    pub fn sample_rank(&self, rng: &mut SimRng) -> usize {
        let x = rng.f64();
        let i = self.cum.partition_point(|&c| c < x);
        i.min(self.cum.len() - 1)
    }

    /// The query a rank maps to. Existing ranks resolve as `d<rank>`
    /// A-records; tail ranks are `nx-<rank>` names the authoritative
    /// refuses to know (NXDOMAIN — see
    /// [`authoritative_answer`](crate::host::authoritative_answer)).
    ///
    /// Allocates a fresh `Name`; the per-query hot path should use
    /// [`query_id_for_rank`](WorkloadGen::query_id_for_rank) instead.
    pub fn query_for_rank(&self, rank: usize) -> (Name, RecordType) {
        let (id, rtype) = self.query_id_for_rank(rank);
        (self.interner.resolve(id).clone(), rtype)
    }

    /// [`query_for_rank`](WorkloadGen::query_for_rank) without the
    /// allocation: a copy-cheap interned handle from the table built at
    /// construction. Resolve it via [`name_of`](WorkloadGen::name_of)
    /// only when an owned `Name` is really needed (upstream misses).
    pub fn query_id_for_rank(&self, rank: usize) -> (NameId, RecordType) {
        let rank = rank.min(self.rank_ids.len().saturating_sub(1));
        (self.rank_ids[rank], RecordType::A)
    }

    /// The name behind an id issued by this generator's interner.
    pub fn name_of(&self, id: NameId) -> &Name {
        self.interner.resolve(id)
    }

    /// First rank (by popularity) that is a nonexistent name.
    pub fn nx_from(&self) -> usize {
        self.nx_from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            clients: 100,
            queries_per_client: 50.0,
            window: Duration::from_secs(3600),
            alpha: 0.9,
            domains: 200,
            nxdomain_tail: 0.1,
        }
    }

    #[test]
    fn zipf_ranks_are_popularity_ordered() {
        let gen = WorkloadGen::new(spec());
        let mut rng = SimRng::new(7);
        let mut counts = vec![0u64; 200];
        for _ in 0..200_000 {
            counts[gen.sample_rank(&mut rng)] += 1;
        }
        // Rank 0 beats rank 9 beats rank 99, with comfortable margins.
        assert!(counts[0] > counts[9] && counts[9] > counts[99]);
        // Zipf(0.9): rank 0 / rank 9 frequency ratio should be near
        // 10^0.9 ≈ 7.9.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!((4.0..16.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn higher_alpha_concentrates_mass() {
        let mut hi = spec();
        hi.alpha = 1.2;
        let flat = WorkloadGen::new(WorkloadSpec {
            alpha: 0.4,
            ..spec()
        });
        let steep = WorkloadGen::new(hi);
        let mut rng_a = SimRng::new(11);
        let mut rng_b = SimRng::new(11);
        let (mut top_flat, mut top_steep) = (0u64, 0u64);
        for _ in 0..100_000 {
            if flat.sample_rank(&mut rng_a) < 10 {
                top_flat += 1;
            }
            if steep.sample_rank(&mut rng_b) < 10 {
                top_steep += 1;
            }
        }
        assert!(top_steep > top_flat);
    }

    #[test]
    fn arrivals_cover_the_window_and_stop() {
        let mut gen = WorkloadGen::new(spec());
        gen.anchor(SimTime::from_secs(100));
        let mut rng = SimRng::new(3);
        let mut t = SimTime::from_secs(100);
        let mut n = 0u64;
        while let Some(next) = gen.next_arrival(t, &mut rng) {
            assert!(next > t);
            assert!(next < SimTime::from_secs(100) + gen.spec().window);
            t = next;
            n += 1;
        }
        // Poisson with mean 5000 — stay within ±10%.
        let expect = gen.expected_queries();
        assert!(
            (n as f64) > 0.9 * expect && (n as f64) < 1.1 * expect,
            "{n} arrivals vs expected {expect}"
        );
    }

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let mut gen = WorkloadGen::new(spec());
        gen.anchor(SimTime::ZERO);
        let run = |seed: u64| {
            let mut rng = SimRng::new(seed);
            let mut t = SimTime::ZERO;
            let mut seq = Vec::new();
            for _ in 0..50 {
                match gen.next_arrival(t, &mut rng) {
                    Some(next) => {
                        seq.push((next, gen.sample_rank(&mut rng)));
                        t = next;
                    }
                    None => break,
                }
            }
            seq
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn diurnal_rate_peaks_mid_window() {
        let mut gen = WorkloadGen::new(spec());
        gen.anchor(SimTime::ZERO);
        let trough = gen.rate_at(SimTime::ZERO);
        let peak = gen.rate_at(SimTime::from_secs(1800));
        assert!(peak > trough);
        let base = gen.expected_queries() / gen.spec().window.as_secs_f64();
        assert!((peak - base * (1.0 + DIURNAL_AMPLITUDE)).abs() < 1e-9);
        assert_eq!(gen.rate_at(SimTime::from_secs(3600)), 0.0);
    }

    #[test]
    fn tail_ranks_are_nonexistent_names() {
        let gen = WorkloadGen::new(spec());
        assert_eq!(gen.nx_from(), 180);
        let (name, rtype) = gen.query_for_rank(0);
        assert_eq!(rtype, RecordType::A);
        assert!(name.to_string().starts_with("d0."));
        let (nx, _) = gen.query_for_rank(199);
        assert!(nx.to_string().starts_with("nx-199."));
    }

    #[test]
    fn interned_ids_agree_with_parsed_names() {
        let gen = WorkloadGen::new(spec());
        for rank in 0..gen.spec().domains {
            let (id, id_rtype) = gen.query_id_for_rank(rank);
            let (name, rtype) = gen.query_for_rank(rank);
            assert_eq!(id_rtype, rtype);
            assert!(gen.name_of(id).eq_ignore_case(&name));
            // Ids are dense and rank-ordered: rank == id index.
            assert_eq!(id.index(), rank);
        }
        // Distinct ranks never alias to one id.
        let (a, _) = gen.query_id_for_rank(0);
        let (b, _) = gen.query_id_for_rank(1);
        assert_ne!(a, b);
    }
}
