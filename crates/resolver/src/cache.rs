//! A TTL-bounded DNS record cache, keyed case-insensitively by
//! (name, type) like a real resolver cache.
//!
//! Besides positive record sets, the cache stores RFC 2308 **negative
//! entries** (NXDOMAIN / NODATA verdicts bounded by the zone SOA's
//! MINIMUM field): a stub or resolver that has just learned a name does
//! not exist must not re-ask until the negative TTL lapses. Without
//! them, population-scale cache-hit ratios are inflated for miss-heavy
//! Zipf tails, since every repeat NXDOMAIN would count as a fresh miss.

use doqlab_dnswire::{Name, NameId, Rcode, RecordType, ResourceRecord};
use doqlab_simnet::{Duration, SimTime};
use doqlab_telemetry::metrics::{self, Counter};
use std::collections::HashMap;

/// Cache key: either the case-normalised wire form of a name (general
/// path) or an interned [`NameId`] (hot path — hashes 6 bytes instead
/// of a heap label vector). The two variants never collide; a cache
/// fed through the id API must be queried through it too, since the
/// cache cannot map one form onto the other.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Wire { name_lower: Vec<u8>, rtype: u16 },
    Interned { id: NameId, rtype: u16 },
}

impl Key {
    fn wire(name: &Name, rtype: RecordType) -> Self {
        let mut name_lower = Vec::with_capacity(name.wire_len());
        name.append_lower_wire(&mut name_lower);
        Key::Wire {
            name_lower,
            rtype: rtype.to_u16(),
        }
    }

    fn interned(id: NameId, rtype: RecordType) -> Self {
        Key::Interned {
            id,
            rtype: rtype.to_u16(),
        }
    }
}

/// What a cache lookup yields: a positive record set (TTLs decayed to
/// the remaining lifetime) or an RFC 2308 negative verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedAnswer {
    Records(Vec<ResourceRecord>),
    /// NXDOMAIN ([`Rcode::NxDomain`]) or NODATA ([`Rcode::NoError`]
    /// with an empty answer section).
    Negative(Rcode),
}

#[derive(Debug, Clone)]
enum Payload {
    Records(Vec<ResourceRecord>),
    Negative(Rcode),
}

#[derive(Debug, Clone)]
struct Entry {
    payload: Payload,
    expires_at: SimTime,
}

/// The cache.
#[derive(Debug, Default)]
pub struct DnsCache {
    entries: HashMap<Key, Entry>,
    hits: u64,
    misses: u64,
    negative_hits: u64,
    expired: u64,
}

impl DnsCache {
    pub fn new() -> Self {
        DnsCache::default()
    }

    /// Look up records; expired entries count as misses and are
    /// evicted. A live negative entry is reported as `None` (the legacy
    /// interface cannot express it) but still counts as a hit — use
    /// [`DnsCache::get_answer`] to observe negatives.
    pub fn get(
        &mut self,
        now: SimTime,
        name: &Name,
        rtype: RecordType,
    ) -> Option<Vec<ResourceRecord>> {
        match self.get_answer(now, name, rtype) {
            Some(CachedAnswer::Records(records)) => Some(records),
            _ => None,
        }
    }

    /// Look up an answer — positive or negative; expired entries count
    /// as misses and are evicted.
    pub fn get_answer(
        &mut self,
        now: SimTime,
        name: &Name,
        rtype: RecordType,
    ) -> Option<CachedAnswer> {
        let key = Key::wire(name, rtype);
        self.get_answer_key(now, key)
    }

    /// [`get_answer`](DnsCache::get_answer) keyed by an interned
    /// [`NameId`] — no allocation, no label hashing. Only finds entries
    /// inserted through [`put_id`](DnsCache::put_id) /
    /// [`put_negative_id`](DnsCache::put_negative_id).
    pub fn get_answer_id(
        &mut self,
        now: SimTime,
        id: NameId,
        rtype: RecordType,
    ) -> Option<CachedAnswer> {
        self.get_answer_key(now, Key::interned(id, rtype))
    }

    fn get_answer_key(&mut self, now: SimTime, key: Key) -> Option<CachedAnswer> {
        match self.entries.get(&key) {
            Some(e) if e.expires_at > now => {
                self.hits += 1;
                metrics::count(Counter::CacheHits, 1);
                match &e.payload {
                    Payload::Records(records) => {
                        // Remaining TTL decreases as the entry ages.
                        let remaining = (e.expires_at - now).as_secs() as u32;
                        Some(CachedAnswer::Records(
                            records
                                .iter()
                                .cloned()
                                .map(|mut rr| {
                                    rr.ttl = rr.ttl.min(remaining);
                                    rr
                                })
                                .collect(),
                        ))
                    }
                    Payload::Negative(rcode) => {
                        self.negative_hits += 1;
                        Some(CachedAnswer::Negative(*rcode))
                    }
                }
            }
            Some(_) => {
                self.entries.remove(&key);
                self.misses += 1;
                self.expired += 1;
                metrics::count(Counter::CacheMisses, 1);
                None
            }
            None => {
                self.misses += 1;
                metrics::count(Counter::CacheMisses, 1);
                None
            }
        }
    }

    /// Insert records under the minimum TTL among them.
    pub fn put(
        &mut self,
        now: SimTime,
        name: &Name,
        rtype: RecordType,
        records: Vec<ResourceRecord>,
    ) {
        self.put_key(now, Key::wire(name, rtype), records);
    }

    /// [`put`](DnsCache::put) keyed by an interned [`NameId`].
    pub fn put_id(
        &mut self,
        now: SimTime,
        id: NameId,
        rtype: RecordType,
        records: Vec<ResourceRecord>,
    ) {
        self.put_key(now, Key::interned(id, rtype), records);
    }

    fn put_key(&mut self, now: SimTime, key: Key, records: Vec<ResourceRecord>) {
        // Expiry boundary contract (pinned by tests): a lookup strictly
        // before `expires_at` serves, a lookup at or after it expires.
        // A TTL-0 record set (RFC 1035: use for this transaction only)
        // would get `expires_at == now` — already expired by that rule —
        // so it is never cached; any stale entry under the key goes too,
        // rather than shadowing the fresher TTL-0 answer.
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
        if ttl == 0 {
            self.entries.remove(&key);
            return;
        }
        self.entries.insert(
            key,
            Entry {
                payload: Payload::Records(records),
                expires_at: now + Duration::from_secs(ttl as u64),
            },
        );
    }

    /// Insert an RFC 2308 negative entry. `ttl` is the negative TTL the
    /// caller derived from the zone SOA (`min(SOA TTL, SOA MINIMUM)`).
    pub fn put_negative(
        &mut self,
        now: SimTime,
        name: &Name,
        rtype: RecordType,
        rcode: Rcode,
        ttl: u32,
    ) {
        self.put_negative_key(now, Key::wire(name, rtype), rcode, ttl);
    }

    /// [`put_negative`](DnsCache::put_negative) keyed by an interned
    /// [`NameId`].
    pub fn put_negative_id(
        &mut self,
        now: SimTime,
        id: NameId,
        rtype: RecordType,
        rcode: Rcode,
        ttl: u32,
    ) {
        self.put_negative_key(now, Key::interned(id, rtype), rcode, ttl);
    }

    fn put_negative_key(&mut self, now: SimTime, key: Key, rcode: Rcode, ttl: u32) {
        // Same boundary contract as put_key: TTL 0 is never cached.
        if ttl == 0 {
            self.entries.remove(&key);
            return;
        }
        self.entries.insert(
            key,
            Entry {
                payload: Payload::Negative(rcode),
                expires_at: now + Duration::from_secs(ttl as u64),
            },
        );
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hits answered from a negative entry (subset of the hit count).
    pub fn negative_hits(&self) -> u64 {
        self.negative_hits
    }

    /// Entries evicted because a lookup found them expired (subset of
    /// the miss count).
    pub fn expired(&self) -> u64 {
        self.expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doqlab_dnswire::RData;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a_record(s: &str, ttl: u32) -> ResourceRecord {
        ResourceRecord::new(name(s), ttl, RData::A([1, 2, 3, 4]))
    }

    #[test]
    fn hit_after_put() {
        let mut c = DnsCache::new();
        let t0 = SimTime::ZERO;
        assert!(c.get(t0, &name("a.b"), RecordType::A).is_none());
        c.put(t0, &name("a.b"), RecordType::A, vec![a_record("a.b", 300)]);
        let got = c.get(t0 + Duration::from_secs(10), &name("a.b"), RecordType::A);
        assert_eq!(got.unwrap().len(), 1);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let mut c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            &name("Google.COM"),
            RecordType::A,
            vec![a_record("google.com", 300)],
        );
        assert!(c
            .get(SimTime::ZERO, &name("google.com"), RecordType::A)
            .is_some());
    }

    #[test]
    fn expiry_evicts() {
        let mut c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            &name("a.b"),
            RecordType::A,
            vec![a_record("a.b", 60)],
        );
        assert!(c
            .get(SimTime::from_secs(59), &name("a.b"), RecordType::A)
            .is_some());
        assert!(c
            .get(SimTime::from_secs(60), &name("a.b"), RecordType::A)
            .is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn expiry_boundary_strictly_before_serves_at_or_after_expires() {
        // The boundary contract, positive and negative: `expires_at` is
        // `put time + ttl`; a lookup one instant before serves, a
        // lookup exactly at (or after) it misses and evicts.
        let just_before = SimTime::from_secs(60) - Duration::from_nanos(1);
        let mut c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            &name("a.b"),
            RecordType::A,
            vec![a_record("a.b", 60)],
        );
        assert!(c.get(just_before, &name("a.b"), RecordType::A).is_some());
        assert!(c
            .get(SimTime::from_secs(60), &name("a.b"), RecordType::A)
            .is_none());
        assert!(c.is_empty());

        let n = name("gone.example");
        c.put_negative(SimTime::ZERO, &n, RecordType::A, Rcode::NxDomain, 60);
        assert_eq!(
            c.get_answer(just_before, &n, RecordType::A),
            Some(CachedAnswer::Negative(Rcode::NxDomain))
        );
        assert!(c
            .get_answer(SimTime::from_secs(60), &n, RecordType::A)
            .is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn ttl_zero_is_never_cached() {
        // RFC 1035 §3.2.1: TTL 0 means "this transaction only". Under
        // the boundary contract `expires_at == now` is already expired,
        // so the entry must not go in at all — otherwise a same-instant
        // lookup would serve it (expired) or, worse, a decremented
        // stale copy.
        let mut c = DnsCache::new();
        let t0 = SimTime::from_secs(5);
        c.put(t0, &name("a.b"), RecordType::A, vec![a_record("a.b", 0)]);
        assert!(c.is_empty(), "TTL-0 positive entry cached");
        assert!(c.get(t0, &name("a.b"), RecordType::A).is_none());

        // Mixed record set: the minimum TTL (0) governs.
        c.put(
            t0,
            &name("a.b"),
            RecordType::A,
            vec![a_record("a.b", 300), a_record("a.b", 0)],
        );
        assert!(c.is_empty(), "min-TTL-0 record set cached");

        // Negative entries follow the same rule.
        c.put_negative(t0, &name("a.b"), RecordType::A, Rcode::NxDomain, 0);
        assert!(c.is_empty(), "TTL-0 negative entry cached");
        assert!(c.get_answer(t0, &name("a.b"), RecordType::A).is_none());

        // A TTL-0 answer also evicts whatever stale entry it shadows.
        c.put(t0, &name("a.b"), RecordType::A, vec![a_record("a.b", 300)]);
        assert_eq!(c.len(), 1);
        c.put(
            t0 + Duration::from_secs(1),
            &name("a.b"),
            RecordType::A,
            vec![a_record("a.b", 0)],
        );
        assert!(c.is_empty(), "stale entry survived a TTL-0 refresh");
    }

    #[test]
    fn ttl_decays_with_age() {
        let mut c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            &name("a.b"),
            RecordType::A,
            vec![a_record("a.b", 300)],
        );
        let got = c
            .get(SimTime::from_secs(100), &name("a.b"), RecordType::A)
            .unwrap();
        assert_eq!(got[0].ttl, 200);
    }

    #[test]
    fn types_are_distinct() {
        let mut c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            &name("a.b"),
            RecordType::A,
            vec![a_record("a.b", 300)],
        );
        assert!(c
            .get(SimTime::ZERO, &name("a.b"), RecordType::Aaaa)
            .is_none());
    }

    #[test]
    fn negative_entries_hit_until_their_ttl() {
        let mut c = DnsCache::new();
        let n = name("gone.example");
        assert!(c.get_answer(SimTime::ZERO, &n, RecordType::A).is_none());
        c.put_negative(SimTime::ZERO, &n, RecordType::A, Rcode::NxDomain, 60);
        assert_eq!(
            c.get_answer(SimTime::from_secs(59), &n, RecordType::A),
            Some(CachedAnswer::Negative(Rcode::NxDomain))
        );
        // The legacy interface reports a live negative as None, but it
        // still counts as a (negative) hit.
        assert!(c.get(SimTime::from_secs(59), &n, RecordType::A).is_none());
        assert_eq!(c.stats(), (2, 1));
        assert_eq!(c.negative_hits(), 2);
        // Past the SOA-minimum TTL the verdict expires like any entry.
        assert!(c
            .get_answer(SimTime::from_secs(60), &n, RecordType::A)
            .is_none());
        assert_eq!(c.expired(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn nodata_and_nxdomain_are_distinct_verdicts() {
        let mut c = DnsCache::new();
        c.put_negative(
            SimTime::ZERO,
            &name("a.b"),
            RecordType::Txt,
            Rcode::NoError,
            30,
        );
        assert_eq!(
            c.get_answer(SimTime::ZERO, &name("a.b"), RecordType::Txt),
            Some(CachedAnswer::Negative(Rcode::NoError))
        );
    }

    #[test]
    fn expired_positive_lookup_is_counted() {
        let mut c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            &name("a.b"),
            RecordType::A,
            vec![a_record("a.b", 5)],
        );
        assert!(c
            .get(SimTime::from_secs(10), &name("a.b"), RecordType::A)
            .is_none());
        assert_eq!(c.expired(), 1);
        assert_eq!(c.negative_hits(), 0);
    }

    #[test]
    fn interned_id_path_mirrors_the_name_path() {
        use doqlab_dnswire::NameInterner;
        let mut it = NameInterner::new();
        let id = it.intern(&name("d0.pop.doqlab.test"));
        let other = it.intern(&name("d1.pop.doqlab.test"));
        let mut c = DnsCache::new();
        let t0 = SimTime::ZERO;
        assert!(c.get_answer_id(t0, id, RecordType::A).is_none());
        c.put_id(
            t0,
            id,
            RecordType::A,
            vec![a_record("d0.pop.doqlab.test", 300)],
        );
        // Hit with TTL decay, distinct ids and types stay distinct.
        match c.get_answer_id(SimTime::from_secs(100), id, RecordType::A) {
            Some(CachedAnswer::Records(rrs)) => assert_eq!(rrs[0].ttl, 200),
            got => panic!("unexpected {got:?}"),
        }
        assert!(c.get_answer_id(t0, other, RecordType::A).is_none());
        assert!(c.get_answer_id(t0, id, RecordType::Aaaa).is_none());
        // Negative verdicts round-trip and expire.
        c.put_negative_id(t0, other, RecordType::A, Rcode::NxDomain, 60);
        assert_eq!(
            c.get_answer_id(SimTime::from_secs(59), other, RecordType::A),
            Some(CachedAnswer::Negative(Rcode::NxDomain))
        );
        assert!(c
            .get_answer_id(SimTime::from_secs(60), other, RecordType::A)
            .is_none());
        // Hit/miss accounting is shared with the name-keyed path.
        assert_eq!(c.stats(), (2, 4));
        assert_eq!(c.negative_hits(), 1);
        assert_eq!(c.expired(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            &name("a.b"),
            RecordType::A,
            vec![a_record("a.b", 300)],
        );
        c.clear();
        assert!(c.is_empty());
    }
}
