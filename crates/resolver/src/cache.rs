//! A TTL-bounded DNS record cache, keyed case-insensitively by
//! (name, type) like a real resolver cache.

use doqlab_dnswire::{Name, RecordType, ResourceRecord};
use doqlab_simnet::{Duration, SimTime};
use doqlab_telemetry::metrics::{self, Counter};
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    name_lower: Vec<u8>,
    rtype: u16,
}

impl Key {
    fn new(name: &Name, rtype: RecordType) -> Self {
        let mut name_lower = Vec::new();
        for label in name.labels() {
            name_lower.push(label.len() as u8);
            name_lower.extend(label.iter().map(|b| b.to_ascii_lowercase()));
        }
        Key {
            name_lower,
            rtype: rtype.to_u16(),
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    records: Vec<ResourceRecord>,
    expires_at: SimTime,
}

/// The cache.
#[derive(Debug, Default)]
pub struct DnsCache {
    entries: HashMap<Key, Entry>,
    hits: u64,
    misses: u64,
}

impl DnsCache {
    pub fn new() -> Self {
        DnsCache::default()
    }

    /// Look up records; expired entries count as misses and are evicted.
    pub fn get(
        &mut self,
        now: SimTime,
        name: &Name,
        rtype: RecordType,
    ) -> Option<Vec<ResourceRecord>> {
        let key = Key::new(name, rtype);
        match self.entries.get(&key) {
            Some(e) if e.expires_at > now => {
                self.hits += 1;
                metrics::count(Counter::CacheHits, 1);
                // Remaining TTL decreases as the entry ages.
                let remaining = (e.expires_at - now).as_secs() as u32;
                Some(
                    e.records
                        .iter()
                        .cloned()
                        .map(|mut rr| {
                            rr.ttl = rr.ttl.min(remaining);
                            rr
                        })
                        .collect(),
                )
            }
            Some(_) => {
                self.entries.remove(&key);
                self.misses += 1;
                metrics::count(Counter::CacheMisses, 1);
                None
            }
            None => {
                self.misses += 1;
                metrics::count(Counter::CacheMisses, 1);
                None
            }
        }
    }

    /// Insert records under the minimum TTL among them.
    pub fn put(
        &mut self,
        now: SimTime,
        name: &Name,
        rtype: RecordType,
        records: Vec<ResourceRecord>,
    ) {
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
        self.entries.insert(
            Key::new(name, rtype),
            Entry {
                records,
                expires_at: now + Duration::from_secs(ttl as u64),
            },
        );
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doqlab_dnswire::RData;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a_record(s: &str, ttl: u32) -> ResourceRecord {
        ResourceRecord::new(name(s), ttl, RData::A([1, 2, 3, 4]))
    }

    #[test]
    fn hit_after_put() {
        let mut c = DnsCache::new();
        let t0 = SimTime::ZERO;
        assert!(c.get(t0, &name("a.b"), RecordType::A).is_none());
        c.put(t0, &name("a.b"), RecordType::A, vec![a_record("a.b", 300)]);
        let got = c.get(t0 + Duration::from_secs(10), &name("a.b"), RecordType::A);
        assert_eq!(got.unwrap().len(), 1);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let mut c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            &name("Google.COM"),
            RecordType::A,
            vec![a_record("google.com", 300)],
        );
        assert!(c
            .get(SimTime::ZERO, &name("google.com"), RecordType::A)
            .is_some());
    }

    #[test]
    fn expiry_evicts() {
        let mut c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            &name("a.b"),
            RecordType::A,
            vec![a_record("a.b", 60)],
        );
        assert!(c
            .get(SimTime::from_secs(59), &name("a.b"), RecordType::A)
            .is_some());
        assert!(c
            .get(SimTime::from_secs(60), &name("a.b"), RecordType::A)
            .is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn ttl_decays_with_age() {
        let mut c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            &name("a.b"),
            RecordType::A,
            vec![a_record("a.b", 300)],
        );
        let got = c
            .get(SimTime::from_secs(100), &name("a.b"), RecordType::A)
            .unwrap();
        assert_eq!(got[0].ttl, 200);
    }

    #[test]
    fn types_are_distinct() {
        let mut c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            &name("a.b"),
            RecordType::A,
            vec![a_record("a.b", 300)],
        );
        assert!(c
            .get(SimTime::ZERO, &name("a.b"), RecordType::Aaaa)
            .is_none());
    }

    #[test]
    fn clear_empties() {
        let mut c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            &name("a.b"),
            RecordType::A,
            vec![a_record("a.b", 300)],
        );
        c.clear();
        assert!(c.is_empty());
    }
}
