//! # doqlab-resolver — the recursive resolver substrate
//!
//! The paper measures 313 public resolvers that support all five DNS
//! transports ("verified DoX resolvers"). This crate provides:
//!
//! * [`cache`] — a TTL-bounded record cache. The study's methodology
//!   warms it with an identical query so that the measured query is
//!   answered without recursion; reproducing that warm/measure split
//!   requires a real cache, not a stub.
//! * [`host`] — [`host::ResolverHost`]: a simulator host that terminates
//!   all five transports (via [`doqlab_dox::DnsServerSet`]), answers
//!   from cache, and models recursive lookups to authoritative servers
//!   as a sampled delay.
//! * [`population`] — synthesis of the study's resolver population:
//!   313 DoX resolvers with the paper's continent, AS, TLS-version,
//!   QUIC-version and DoQ-ALPN distributions, plus the wider scan
//!   population behind the discovery funnel (1,216 DoQ resolvers with
//!   partial protocol support, and QUIC hosts that are not DoQ).

pub mod cache;
pub mod host;
pub mod population;

pub use cache::DnsCache;
pub use host::{authoritative_answer, ip_for_domain, ip_for_name, RecursionModel, ResolverHost};
pub use population::{
    synthesize_dox_population, synthesize_scan_population, ResolverProfile, ScannedHost,
};
