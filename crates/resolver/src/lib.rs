//! # doqlab-resolver — the recursive resolver substrate
//!
//! The paper measures 313 public resolvers that support all five DNS
//! transports ("verified DoX resolvers"). This crate provides:
//!
//! * [`cache`] — a TTL-bounded record cache. The study's methodology
//!   warms it with an identical query so that the measured query is
//!   answered without recursion; reproducing that warm/measure split
//!   requires a real cache, not a stub.
//! * [`host`] — [`host::ResolverHost`]: a simulator host that terminates
//!   all five transports (via [`doqlab_dox::DnsServerSet`]), answers
//!   from cache, and models recursive lookups to authoritative servers
//!   as a sampled delay.
//! * [`population`] — synthesis of the study's resolver population:
//!   313 DoX resolvers with the paper's continent, AS, TLS-version,
//!   QUIC-version and DoQ-ALPN distributions, plus the wider scan
//!   population behind the discovery funnel (1,216 DoQ resolvers with
//!   partial protocol support, and QUIC hosts that are not DoQ), and
//!   [`population::ClientPopulation`] — the client side: how many
//!   stub-fronted clients a population campaign spreads across its
//!   vantage cohorts.
//! * [`workload`] — deterministic population workloads: Zipf-popularity
//!   query mix over a diurnal non-homogeneous Poisson arrival process.
//! * [`stub`] — [`stub::StubResolverHost`]: the shared stub/forwarder a
//!   client cohort sits behind — one cache (positive + RFC 2308
//!   negative entries), query coalescing, and a pooled upstream
//!   connection.

pub mod cache;
pub mod host;
pub mod population;
pub mod stub;
pub mod workload;

pub use cache::{CachedAnswer, DnsCache};
pub use host::{authoritative_answer, ip_for_domain, ip_for_name, RecursionModel, ResolverHost};
pub use population::{
    synthesize_dox_population, synthesize_scan_population, ClientPopulation, ResolverProfile,
    ScannedHost,
};
pub use stub::{StubResolverHost, StubStats};
pub use workload::{WorkloadGen, WorkloadSpec};
