//! The resolver as a simulator host.
//!
//! Terminates all five DNS transports, answers cache hits after a small
//! processing delay, and models cache misses as a recursive lookup with
//! a sampled latency (real recursion contacts authoritative servers
//! across the Internet; the paper's methodology is designed so that
//! *measured* queries always hit the cache, making the exact recursion
//! model irrelevant to the reported numbers — but it must exist for the
//! cache-warming query to have something to do).

use crate::cache::{CachedAnswer, DnsCache};
use doqlab_dnswire::{Message, Name, Question, RData, Rcode, RecordType, ResourceRecord, SvcParam};
use doqlab_dox::server::{ConnKey, DnsServerSet, ServerConfig};
use doqlab_simnet::{Ctx, Duration, Host, Packet, SimRng, SimTime};
use std::any::Any;

/// Latency model for recursive lookups (log-normal, heavy-tailed like
/// real recursion which may hit multiple authoritatives).
#[derive(Debug, Clone)]
pub struct RecursionModel {
    /// Median recursion time.
    pub median: Duration,
    /// Log-normal sigma.
    pub sigma: f64,
    /// Processing delay for cache hits.
    pub hit_delay: Duration,
}

impl Default for RecursionModel {
    fn default() -> Self {
        RecursionModel {
            median: Duration::from_millis(60),
            sigma: 0.8,
            hit_delay: Duration::from_micros(200),
        }
    }
}

impl RecursionModel {
    fn sample(&self, rng: &mut SimRng) -> Duration {
        let median_ms = self.median.as_secs_f64() * 1000.0;
        let ms = rng.log_normal(median_ms.ln(), self.sigma);
        Duration::from_secs_f64((ms / 1000.0).clamp(0.001, 10.0))
    }
}

/// The deterministic IPv4 address the simulated DNS maps `name` to.
/// Shared by the resolvers (answers) and the load simulator (where it
/// registers the origin servers).
pub fn ip_for_name(name: &Name) -> doqlab_simnet::Ipv4Addr {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for label in name.labels() {
        for b in label {
            h = (h ^ b.to_ascii_lowercase() as u64).wrapping_mul(0x1000_0000_01b3);
        }
        h = (h ^ 0x2e).wrapping_mul(0x1000_0000_01b3);
    }
    doqlab_simnet::Ipv4Addr::new(
        (h >> 24) as u8 | 1,
        (h >> 16) as u8,
        (h >> 8) as u8,
        h as u8,
    )
}

/// `ip_for_name` from a presentation-format domain string.
pub fn ip_for_domain(domain: &str) -> doqlab_simnet::Ipv4Addr {
    ip_for_name(&Name::parse(domain).expect("valid domain"))
}

/// Synthesize the authoritative answer for a question: a deterministic
/// address derived from the name, so answers are stable across runs and
/// resolvers.
pub fn authoritative_answer(q: &Question) -> Vec<ResourceRecord> {
    // Names whose first label carries the synthetic `nx-` prefix do not
    // exist anywhere: population workloads query them to exercise
    // NXDOMAIN and RFC 2308 negative caching.
    if q.name
        .labels()
        .first()
        .is_some_and(|l| l.starts_with(b"nx-"))
    {
        return Vec::new();
    }
    let ip = ip_for_name(&q.name).octets();
    match q.rtype {
        RecordType::A => {
            vec![ResourceRecord::new(q.name.clone(), 300, RData::A(ip))]
        }
        RecordType::Aaaa => {
            let mut a = [0u8; 16];
            a[0] = 0x20;
            a[1] = 0x01;
            a[12..16].copy_from_slice(&ip);
            vec![ResourceRecord::new(q.name.clone(), 300, RData::Aaaa(a))]
        }
        _ => Vec::new(),
    }
}

/// Negative TTL (RFC 2308): how long an NXDOMAIN/NODATA verdict may be
/// cached, advertised as the SOA MINIMUM of the negative response's
/// authority record.
pub const NEGATIVE_TTL: u32 = 60;

/// The SOA record a negative response carries in its authority section
/// (RFC 2308 §3): its TTL and MINIMUM bound how long the verdict may be
/// cached.
pub fn negative_soa(q: &Question) -> ResourceRecord {
    // The simulated authoritative serves everything from one zone; the
    // query name's parent stands in for the zone apex.
    let zone = q.name.parent().unwrap_or_else(Name::root);
    ResourceRecord::new(
        zone,
        NEGATIVE_TTL,
        RData::Soa {
            mname: Name::parse("ns.doqlab.invalid").expect("const"),
            rname: Name::parse("hostmaster.doqlab.invalid").expect("const"),
            serial: 2022,
            refresh: 3600,
            retry: 600,
            expire: 86400,
            minimum: NEGATIVE_TTL,
        },
    )
}

/// Build the negative response for `query`: the rcode plus the RFC 2308
/// SOA authority record that carries the negative TTL.
fn negative_response(query: &Message, q: &Question, rcode: Rcode) -> Message {
    let mut resp = Message::error_response_to(query, rcode);
    resp.authorities.push(negative_soa(q));
    resp
}

/// What releasing a pending answer writes back into the cache.
#[derive(Debug, Clone)]
enum CacheFill {
    Records(Vec<ResourceRecord>),
    Negative(Rcode),
}

/// A pending answer (waiting on hit-delay or recursion).
#[derive(Debug)]
struct PendingAnswer {
    due: SimTime,
    key: ConnKey,
    response: Message,
    /// Cache fill performed when the answer is released.
    fill: Option<(Name, RecordType, CacheFill)>,
}

/// The resolver host.
pub struct ResolverHost {
    set: DnsServerSet,
    cache: DnsCache,
    model: RecursionModel,
    pending: Vec<PendingAnswer>,
    /// Statistics.
    pub queries_served: u64,
    pub cache_hits: u64,
}

impl ResolverHost {
    pub fn new(server_cfg: ServerConfig, model: RecursionModel) -> Self {
        ResolverHost {
            set: DnsServerSet::new(server_cfg),
            cache: DnsCache::new(),
            model,
            pending: Vec::new(),
            queries_served: 0,
            cache_hits: 0,
        }
    }

    pub fn config(&self) -> &ServerConfig {
        self.set.config()
    }

    pub fn cache(&self) -> &DnsCache {
        &self.cache
    }

    /// The DDR designation records for this resolver's feature set.
    fn ddr_records(&self, q: &Question) -> Vec<ResourceRecord> {
        let cfg = self.set.config();
        let mut designations = Vec::new();
        if cfg.supports_doq {
            designations.push((1u16, vec![b"doq".to_vec()], 853u16));
        }
        if cfg.supports_doh3 {
            designations.push((2, vec![b"h3".to_vec()], 443));
        }
        if cfg.supports_doh {
            designations.push((3, vec![b"h2".to_vec()], 443));
        }
        if cfg.supports_dot {
            designations.push((4, vec![b"dot".to_vec()], 853));
        }
        designations
            .into_iter()
            .map(|(priority, alpn, port)| ResourceRecord {
                name: q.name.clone(),
                rtype: RecordType::Svcb,
                class: doqlab_dnswire::RecordClass::In,
                ttl: 300,
                rdata: RData::Svcb {
                    priority,
                    target: Name::root(),
                    params: vec![SvcParam::Alpn(alpn), SvcParam::Port(port)],
                },
            })
            .collect()
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, out: &mut Vec<Packet>) {
        for ev in self.set.take_queries() {
            self.queries_served += 1;
            let Some(q) = ev.query.question().cloned() else {
                let resp = Message::error_response_to(&ev.query, Rcode::FormErr);
                self.set.respond(ctx.now, ev.key, &resp);
                continue;
            };
            // DDR (RFC 9462): "_dns.resolver.arpa"/SVCB advertises the
            // resolver's encrypted transports — this is how Cloudflare
            // announced DoH3 support (§4 of the paper).
            if q.rtype == RecordType::Svcb
                && q.name
                    .eq_ignore_case(&Name::parse("_dns.resolver.arpa").expect("const"))
            {
                let resp = Message::response_to(&ev.query, self.ddr_records(&q));
                self.set.respond(ctx.now, ev.key, &resp);
                continue;
            }
            match self.cache.get_answer(ctx.now, &q.name, q.rtype) {
                Some(CachedAnswer::Records(records)) => {
                    self.cache_hits += 1;
                    let response = Message::response_to(&ev.query, records);
                    self.pending.push(PendingAnswer {
                        due: ctx.now + self.model.hit_delay,
                        key: ev.key,
                        response,
                        fill: None,
                    });
                }
                Some(CachedAnswer::Negative(rcode)) => {
                    // RFC 2308: a cached NXDOMAIN/NODATA verdict is
                    // served like any hit — no recursion.
                    self.cache_hits += 1;
                    let response = negative_response(&ev.query, &q, rcode);
                    self.pending.push(PendingAnswer {
                        due: ctx.now + self.model.hit_delay,
                        key: ev.key,
                        response,
                        fill: None,
                    });
                }
                None => {
                    let records = authoritative_answer(&q);
                    let (response, fill) = if records.is_empty() {
                        (
                            negative_response(&ev.query, &q, Rcode::NxDomain),
                            CacheFill::Negative(Rcode::NxDomain),
                        )
                    } else {
                        (
                            Message::response_to(&ev.query, records.clone()),
                            CacheFill::Records(records),
                        )
                    };
                    self.pending.push(PendingAnswer {
                        due: ctx.now + self.model.sample(ctx.rng),
                        key: ev.key,
                        response,
                        fill: Some((q.name, q.rtype, fill)),
                    });
                }
            }
        }
        // Release due answers.
        let mut released = Vec::new();
        self.pending.retain(|p| {
            if p.due <= ctx.now {
                released.push((p.key, p.response.clone(), p.fill.clone()));
                false
            } else {
                true
            }
        });
        for (key, response, fill) in released {
            match fill {
                Some((name, rtype, CacheFill::Records(records))) => {
                    self.cache.put(ctx.now, &name, rtype, records);
                }
                Some((name, rtype, CacheFill::Negative(rcode))) => {
                    self.cache
                        .put_negative(ctx.now, &name, rtype, rcode, NEGATIVE_TTL);
                }
                None => {}
            }
            self.set.respond(ctx.now, key, &response);
        }
        self.set.poll(ctx.now, out);
    }
}

impl Host for ResolverHost {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let mut out = Vec::new();
        self.set.on_packet(ctx.now, &pkt, &mut out);
        self.process(ctx, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = Vec::new();
        self.set.poll(ctx.now, &mut out);
        self.process(ctx, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        let pending = self.pending.iter().map(|p| p.due).min();
        match (pending, self.set.next_timeout()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doqlab_dnswire::Name;
    use doqlab_dox::{ClientConfig, DnsClientHost, DnsTransport};
    use doqlab_simnet::path::FixedPathModel;
    use doqlab_simnet::{Ipv4Addr, Simulator, SocketAddr};

    fn run_one(transport: DnsTransport) -> f64 {
        // Returns the cold resolve time in ms (incl. recursion),
        // measured as response_arrival - query_issue.
        let resolver_ip = Ipv4Addr::new(192, 0, 2, 1);
        let client_ip = Ipv4Addr::new(10, 0, 0, 1);
        let mut sim = Simulator::new(7, Box::new(FixedPathModel::new(Duration::from_millis(10))));
        let resolver = ResolverHost::new(
            ServerConfig {
                ip: resolver_ip,
                ..ServerConfig::default()
            },
            RecursionModel::default(),
        );
        sim.add_host(Box::new(resolver), &[resolver_ip]);
        let local = SocketAddr::new(client_ip, 40_000);
        let remote = SocketAddr::new(resolver_ip, transport.port());
        let client = DnsClientHost::new(transport, local, remote, &ClientConfig::default());
        let cid = sim.add_host(Box::new(client), &[client_ip]);
        let started = sim.now();
        sim.with_host::<DnsClientHost, _>(cid, |c, ctx| {
            let q = Message::query(1, Name::parse("google.com").unwrap(), RecordType::A);
            c.start_with_query(ctx, &q);
        });
        sim.run_until(started + Duration::from_secs(15));
        let client = sim.host_mut::<DnsClientHost>(cid);
        assert_eq!(client.responses.len(), 1);
        (client.responses[0].0 - started).as_secs_f64() * 1000.0
    }

    #[test]
    fn miss_includes_recursion_delay() {
        let first = run_one(DnsTransport::DoUdp);
        // 1 RTT (20 ms) + recursion (tens of ms) >> bare RTT.
        assert!(first > 25.0, "first = {first}");
    }

    #[test]
    fn warm_then_hit_is_fast() {
        // Warm and measure over one simulator with two distinct clients.
        let resolver_ip = Ipv4Addr::new(192, 0, 2, 1);
        let mut sim = Simulator::new(7, Box::new(FixedPathModel::new(Duration::from_millis(10))));
        let resolver = ResolverHost::new(
            ServerConfig {
                ip: resolver_ip,
                ..ServerConfig::default()
            },
            RecursionModel::default(),
        );
        let rid = sim.add_host(Box::new(resolver), &[resolver_ip]);
        let q = Message::query(1, Name::parse("google.com").unwrap(), RecordType::A);

        let c1_ip = Ipv4Addr::new(10, 0, 0, 1);
        let c1 = DnsClientHost::new(
            DnsTransport::DoUdp,
            SocketAddr::new(c1_ip, 40000),
            SocketAddr::new(resolver_ip, 53),
            &ClientConfig::default(),
        );
        let c1id = sim.add_host(Box::new(c1), &[c1_ip]);
        sim.with_host::<DnsClientHost, _>(c1id, |c, ctx| c.start_with_query(ctx, &q));
        sim.run_until(SimTime::from_secs(15));
        let warm_time = sim.host::<DnsClientHost>(c1id).responses[0].0;

        let c2_ip = Ipv4Addr::new(10, 0, 0, 2);
        let c2 = DnsClientHost::new(
            DnsTransport::DoUdp,
            SocketAddr::new(c2_ip, 40000),
            SocketAddr::new(resolver_ip, 53),
            &ClientConfig::default(),
        );
        let c2id = sim.add_host(Box::new(c2), &[c2_ip]);
        let t1 = sim.now();
        sim.with_host::<DnsClientHost, _>(c2id, |c, ctx| c.start_with_query(ctx, &q));
        sim.run_until(t1 + Duration::from_secs(15));
        let hit = sim.host::<DnsClientHost>(c2id).responses[0].0 - t1;
        let miss = warm_time - SimTime::ZERO;
        assert!(hit < Duration::from_millis(22), "hit = {hit:?}");
        assert!(miss > hit, "miss {miss:?} vs hit {hit:?}");
        assert_eq!(sim.host::<ResolverHost>(rid).cache_hits, 1);
        assert_eq!(sim.host::<ResolverHost>(rid).queries_served, 2);
    }

    #[test]
    fn nxdomain_is_negatively_cached_with_soa_authority() {
        // A name with no authoritative records (non-A/AAAA rtypes)
        // yields NXDOMAIN with an RFC 2308 SOA authority record; asking
        // again is served from the negative cache without recursion.
        let resolver_ip = Ipv4Addr::new(192, 0, 2, 1);
        let mut sim = Simulator::new(7, Box::new(FixedPathModel::new(Duration::from_millis(10))));
        let resolver = ResolverHost::new(
            ServerConfig {
                ip: resolver_ip,
                ..ServerConfig::default()
            },
            RecursionModel::default(),
        );
        let rid = sim.add_host(Box::new(resolver), &[resolver_ip]);
        let q = Message::query(9, Name::parse("nowhere.test").unwrap(), RecordType::Txt);
        for (i, client_ip) in [Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)]
            .into_iter()
            .enumerate()
        {
            let c = DnsClientHost::new(
                DnsTransport::DoUdp,
                SocketAddr::new(client_ip, 40000),
                SocketAddr::new(resolver_ip, 53),
                &ClientConfig::default(),
            );
            let cid = sim.add_host(Box::new(c), &[client_ip]);
            let t0 = sim.now();
            sim.with_host::<DnsClientHost, _>(cid, |c, ctx| c.start_with_query(ctx, &q));
            sim.run_until(t0 + Duration::from_secs(15));
            let resp = &sim.host::<DnsClientHost>(cid).responses[0].1;
            assert_eq!(resp.header.rcode, Rcode::NxDomain);
            assert!(resp.answers.is_empty());
            let soa = resp
                .authorities
                .iter()
                .find(|rr| matches!(rr.rdata, RData::Soa { .. }))
                .expect("negative response carries an SOA");
            assert_eq!(soa.ttl, NEGATIVE_TTL);
            if let RData::Soa { minimum, .. } = soa.rdata {
                assert_eq!(minimum, NEGATIVE_TTL);
            }
            let host = sim.host::<ResolverHost>(rid);
            assert_eq!(host.cache_hits, i as u64, "query {i}");
        }
        let host = sim.host::<ResolverHost>(rid);
        assert_eq!(host.queries_served, 2);
        assert_eq!(host.cache().negative_hits(), 1);
    }

    #[test]
    fn authoritative_answers_are_deterministic() {
        let q = Question::new(Name::parse("example.org").unwrap(), RecordType::A);
        assert_eq!(authoritative_answer(&q), authoritative_answer(&q));
        // Case-insensitive: same address, owner name keeps query case.
        let q2 = Question::new(Name::parse("EXAMPLE.ORG").unwrap(), RecordType::A);
        assert_eq!(
            authoritative_answer(&q)[0].rdata,
            authoritative_answer(&q2)[0].rdata
        );
        let aaaa = Question::new(Name::parse("example.org").unwrap(), RecordType::Aaaa);
        assert!(matches!(
            authoritative_answer(&aaaa)[0].rdata,
            RData::Aaaa(_)
        ));
        let txt = Question::new(Name::parse("example.org").unwrap(), RecordType::Txt);
        assert!(authoritative_answer(&txt).is_empty());
    }
}
