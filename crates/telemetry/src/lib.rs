//! # doqlab-telemetry — cross-layer tracing and metrics
//!
//! The measurement harness reasons about per-phase behaviour of five
//! DNS transports, yet the protocol state machines themselves (QUIC,
//! TLS, TCP, congestion control, HTTP/2/3) were black boxes. This crate
//! gives them two observation channels, both **provably inert** when
//! disabled and purely observational when enabled — telemetry never
//! touches an RNG or a control-flow decision, so campaign outputs are
//! byte-identical with it on or off:
//!
//! * **Event tracing** ([`sink`], [`event`], [`qlog`]) — a
//!   zero-cost-when-disabled emit path. Protocol code calls
//!   [`sink::emit`] with a closure; unless a [`sink::Tracer`] is
//!   installed on the current thread the closure is never run, so the
//!   disabled cost is one thread-local flag read. An installed
//!   [`sink::EventSink`] records [`event::EventRecord`]s which
//!   [`qlog::to_json_seq`] serializes as qlog-compatible JSON-SEQ
//!   (RFC 7464 framing), one trace group per connection.
//! * **Metrics** ([`metrics`]) — a lock-free registry of counters and
//!   log-linear histograms. Each engine worker thread owns a private
//!   shard of relaxed atomics (no cross-thread contention on the hot
//!   path); [`metrics::snapshot`] merges every registered shard at
//!   campaign end for the report's telemetry section.
//!
//! The crate is dependency-free: timestamps cross the API as `u64`
//! nanoseconds (the simulator's `SimTime::as_nanos`), keeping
//! `doqlab-telemetry` below every other crate in the dependency graph.

pub mod event;
pub mod metrics;
pub mod qlog;
pub mod sink;

pub use event::{Event, EventRecord, Layer};
pub use sink::{EventSink, Tracer};
