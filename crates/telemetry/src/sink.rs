//! The zero-cost-when-disabled emit path.
//!
//! Protocol code never constructs an event eagerly: it calls
//! [`emit`]`(time_ns, || Event::…)` and the closure only runs when a
//! [`Tracer`] is installed on the **current thread**. Disabled cost is
//! a single thread-local flag read and a predictable branch — no
//! allocation, no formatting, no atomics. The thread-local design also
//! keeps the campaign engine deterministic: tracing one worker's unit
//! can never observe (or perturb) another worker's.

use crate::event::{Event, EventRecord};
use std::cell::{Cell, RefCell};

/// A destination for emitted events.
pub trait Tracer {
    fn record(&mut self, rec: EventRecord);
    /// Downcast support (mirrors `doqlab_simnet::PacketTap`).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// The simple recording tracer: an in-memory event log.
#[derive(Debug, Default)]
pub struct EventSink {
    pub events: Vec<EventRecord>,
}

impl Tracer for EventSink {
    fn record(&mut self, rec: EventRecord) {
        self.events.push(rec);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    /// Timestamp of the last timed emit, for [`emit_untimed`] call
    /// sites (sans-I/O layers with no clock of their own).
    static LAST_NS: Cell<u64> = const { Cell::new(0) };
    static SINK: RefCell<Option<Box<dyn Tracer>>> = const { RefCell::new(None) };
}

/// Is a tracer installed on this thread? The one check every emit
/// site pays when tracing is disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|c| c.get())
}

/// Emit an event at `time_ns`. The closure runs only when a tracer is
/// installed on this thread.
#[inline]
pub fn emit(time_ns: u64, build: impl FnOnce() -> Event) {
    if !enabled() {
        return;
    }
    LAST_NS.with(|c| c.set(time_ns));
    record(EventRecord {
        time_ns,
        event: build(),
    });
}

/// Emit an event from a layer that has no clock (the sans-I/O HTTP
/// codecs), stamping it with the time of the nearest preceding timed
/// emit on this thread. Inside one simulator dispatch that is the
/// current simulated instant.
#[inline]
pub fn emit_untimed(build: impl FnOnce() -> Event) {
    if !enabled() {
        return;
    }
    record(EventRecord {
        time_ns: LAST_NS.with(|c| c.get()),
        event: build(),
    });
}

#[cold]
fn record(rec: EventRecord) {
    SINK.with(|s| {
        if let Some(t) = s.borrow_mut().as_mut() {
            t.record(rec);
        }
    });
}

/// Install a tracer on the current thread (enabling the emit path).
pub fn install(tracer: Box<dyn Tracer>) {
    SINK.with(|s| *s.borrow_mut() = Some(tracer));
    ENABLED.with(|c| c.set(true));
}

/// Remove the current thread's tracer (disabling the emit path) and
/// return it for inspection.
pub fn take() -> Option<Box<dyn Tracer>> {
    ENABLED.with(|c| c.set(false));
    LAST_NS.with(|c| c.set(0));
    SINK.with(|s| s.borrow_mut().take())
}

/// Install an [`EventSink`], run `f`, and return its recorded events
/// alongside `f`'s result. Panic-safe: the sink is removed on unwind.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<EventRecord>) {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            take();
        }
    }
    install(Box::<EventSink>::default());
    let restore = Restore;
    let out = f();
    let events = match take() {
        Some(mut t) => match t.as_any_mut().downcast_mut::<EventSink>() {
            Some(sink) => std::mem::take(&mut sink.events),
            None => Vec::new(),
        },
        None => Vec::new(),
    };
    std::mem::forget(restore);
    (out, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emit_never_builds_the_event() {
        assert!(!enabled());
        emit(1, || panic!("closure ran while tracing was disabled"));
        emit_untimed(|| panic!("closure ran while tracing was disabled"));
    }

    #[test]
    fn capture_records_in_order_with_untimed_backfill() {
        let ((), events) = capture(|| {
            emit(10, || Event::QuicStateUpdated { state: "initial" });
            emit_untimed(|| Event::HttpRequestSent {
                protocol: "h2",
                stream_id: 1,
            });
            emit(20, || Event::QuicStateUpdated { state: "handshake" });
        });
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].time_ns, 10);
        assert_eq!(events[1].time_ns, 10, "untimed emit reuses last time");
        assert_eq!(events[2].time_ns, 20);
        assert!(!enabled(), "capture removes the tracer");
    }

    #[test]
    fn capture_is_panic_safe() {
        let caught = std::panic::catch_unwind(|| {
            capture(|| panic!("unit died"));
        });
        assert!(caught.is_err());
        assert!(!enabled(), "tracer removed on unwind");
    }
}
