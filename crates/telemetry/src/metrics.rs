//! Lock-free campaign metrics: counters and log-linear histograms.
//!
//! Every thread that records metrics owns a private **shard** — a flat
//! block of `AtomicU64`s it increments with relaxed ordering, so the
//! hot path never contends with another thread. Shards register
//! themselves in a global registry; [`snapshot`] merges all of them at
//! campaign end. The campaign engine installs a shard per worker via
//! [`worker_guard`]; any other thread that records while enabled gets
//! one lazily.
//!
//! Disabled cost is one relaxed `AtomicBool` load per call. Metrics
//! are purely observational — nothing in the simulator or the
//! protocol stacks ever reads them back — so enabling them cannot
//! change campaign output.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// Every counter the stacks record. The discriminant is the slot index
/// in a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    QuicPacketsSent,
    QuicPacketsReceived,
    QuicPacketsLost,
    QuicPtoFired,
    QuicHandshakesCompleted,
    TlsHandshakesCompleted,
    TlsResumedHandshakes,
    TlsEarlyDataAccepted,
    TlsEarlyDataRejected,
    TcpRtoRetransmits,
    TcpFastRetransmits,
    TcpFastOpenClient,
    TcpFastOpenServer,
    CacheHits,
    CacheMisses,
    HttpRequestsSent,
    HttpResponsesReceived,
    UnitsRun,
    UnitsFailed,
    BytesDoUdp,
    BytesDoTcp,
    BytesDoT,
    BytesDoH,
    BytesDoQ,
    /// Connection re-dials performed by the client host after a
    /// transport failure.
    Reconnects,
    /// Queries issued over an already-established pooled connection
    /// (the handshake they did not pay for).
    PoolReuse,
    /// Pooled connections closed by the idle-timeout sweep. Distinct
    /// from [`Counter::Reconnects`]: an idle eviction is not a failure.
    PoolEvictIdle,
    /// Simulator events dispatched (arrivals + wakeups), counted per
    /// run batch — the denominator of the events/sec throughput
    /// baseline (`BENCH_7.json`).
    SimEvents,
    /// Failure taxonomy: terminal query failures by kind.
    FailTimeout,
    FailReset,
    FailHandshake,
    FailDeadline,
    /// PATH_CHALLENGE probes sent (RFC 9000 §9 path validation).
    QuicPathChallenges,
    /// Path validations that completed (PATH_RESPONSE matched).
    QuicPathValidated,
    /// Path validations abandoned after exhausting probe retries.
    QuicPathAbandoned,
    /// Cross-transport failover rungs dialed by the racing client.
    FailoverRaced,
    /// 0-RTT early-data attempts the server accepted (whatif campaign).
    ZeroRttAccepted,
    /// 0-RTT early-data attempts rejected and replayed after 1-RTT.
    ZeroRttRejected,
    /// TCP SYNs that carried Fast Open payload (client side).
    TfoSynData,
    /// DoTCP connections whose server answered edns-tcp-keepalive.
    KeepaliveHonored,
}

impl Counter {
    pub const ALL: [Counter; 40] = [
        Counter::QuicPacketsSent,
        Counter::QuicPacketsReceived,
        Counter::QuicPacketsLost,
        Counter::QuicPtoFired,
        Counter::QuicHandshakesCompleted,
        Counter::TlsHandshakesCompleted,
        Counter::TlsResumedHandshakes,
        Counter::TlsEarlyDataAccepted,
        Counter::TlsEarlyDataRejected,
        Counter::TcpRtoRetransmits,
        Counter::TcpFastRetransmits,
        Counter::TcpFastOpenClient,
        Counter::TcpFastOpenServer,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::HttpRequestsSent,
        Counter::HttpResponsesReceived,
        Counter::UnitsRun,
        Counter::UnitsFailed,
        Counter::BytesDoUdp,
        Counter::BytesDoTcp,
        Counter::BytesDoT,
        Counter::BytesDoH,
        Counter::BytesDoQ,
        Counter::Reconnects,
        Counter::PoolReuse,
        Counter::PoolEvictIdle,
        Counter::SimEvents,
        Counter::FailTimeout,
        Counter::FailReset,
        Counter::FailHandshake,
        Counter::FailDeadline,
        Counter::QuicPathChallenges,
        Counter::QuicPathValidated,
        Counter::QuicPathAbandoned,
        Counter::FailoverRaced,
        Counter::ZeroRttAccepted,
        Counter::ZeroRttRejected,
        Counter::TfoSynData,
        Counter::KeepaliveHonored,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Counter::QuicPacketsSent => "quic.packets_sent",
            Counter::QuicPacketsReceived => "quic.packets_received",
            Counter::QuicPacketsLost => "quic.packets_lost",
            Counter::QuicPtoFired => "quic.pto_fired",
            Counter::QuicHandshakesCompleted => "quic.handshakes_completed",
            Counter::TlsHandshakesCompleted => "tls.handshakes_completed",
            Counter::TlsResumedHandshakes => "tls.resumed_handshakes",
            Counter::TlsEarlyDataAccepted => "tls.early_data_accepted",
            Counter::TlsEarlyDataRejected => "tls.early_data_rejected",
            Counter::TcpRtoRetransmits => "tcp.rto_retransmits",
            Counter::TcpFastRetransmits => "tcp.fast_retransmits",
            Counter::TcpFastOpenClient => "tcp.fast_open_client",
            Counter::TcpFastOpenServer => "tcp.fast_open_server",
            Counter::CacheHits => "resolver.cache_hits",
            Counter::CacheMisses => "resolver.cache_misses",
            Counter::HttpRequestsSent => "http.requests_sent",
            Counter::HttpResponsesReceived => "http.responses_received",
            Counter::UnitsRun => "campaign.units_run",
            Counter::UnitsFailed => "campaign.units_failed",
            Counter::BytesDoUdp => "bytes.doudp",
            Counter::BytesDoTcp => "bytes.dotcp",
            Counter::BytesDoT => "bytes.dot",
            Counter::BytesDoH => "bytes.doh",
            Counter::BytesDoQ => "bytes.doq",
            Counter::Reconnects => "client.reconnects",
            Counter::PoolReuse => "pool.reuse",
            Counter::PoolEvictIdle => "pool.evict_idle",
            Counter::SimEvents => "sim.events",
            Counter::FailTimeout => "fail.timeout",
            Counter::FailReset => "fail.reset",
            Counter::FailHandshake => "fail.handshake",
            Counter::FailDeadline => "fail.deadline",
            Counter::QuicPathChallenges => "path.challenge",
            Counter::QuicPathValidated => "path.validated",
            Counter::QuicPathAbandoned => "path.abandoned",
            Counter::FailoverRaced => "failover.raced",
            Counter::ZeroRttAccepted => "zrtt.accepted",
            Counter::ZeroRttRejected => "zrtt.rejected",
            Counter::TfoSynData => "tfo.syn_data",
            Counter::KeepaliveHonored => "keepalive.honored",
        }
    }
}

const NCOUNTERS: usize = Counter::ALL.len();

/// Histogram series (value distributions, nanosecond-valued).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Series {
    HandshakeNs,
    ResolveNs,
}

impl Series {
    pub const ALL: [Series; 2] = [Series::HandshakeNs, Series::ResolveNs];

    pub fn name(self) -> &'static str {
        match self {
            Series::HandshakeNs => "handshake_time",
            Series::ResolveNs => "resolve_time",
        }
    }
}

const NSERIES: usize = Series::ALL.len();

/// Log-linear bucketing: 8 linear sub-buckets per power of two, like a
/// coarse HDR histogram. Relative error is bounded at 12.5% for any
/// `u64` value, with 496 buckets total.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// The bucket a value falls into.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (msb - SUB_BITS + 1) as usize * SUB + sub
}

/// Inclusive lower bound of a bucket (the value [`HistSnapshot`]
/// reports for percentiles).
pub fn bucket_floor(index: usize) -> u64 {
    if index < SUB {
        return index as u64;
    }
    let octave = (index / SUB) as u32;
    let sub = (index % SUB) as u64;
    (SUB as u64 + sub) << (octave - 1)
}

struct Hist {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Hist {
    fn new() -> Hist {
        Hist {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// One thread's private metrics block.
pub struct Shard {
    counters: [AtomicU64; NCOUNTERS],
    hists: [Hist; NSERIES],
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| Hist::new()),
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped by [`reset`]; lazily-installed thread shards re-register
/// when their epoch is stale.
static EPOCH: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Vec<Arc<Shard>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static SHARD: RefCell<Option<(u64, Arc<Shard>)>> = const { RefCell::new(None) };
}

/// Turn metric recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Is metric recording enabled?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Drop all recorded data (shards unregister; live threads re-register
/// lazily on their next record).
pub fn reset() {
    EPOCH.fetch_add(1, Relaxed);
    registry().lock().unwrap().clear();
}

fn fresh_shard() -> (u64, Arc<Shard>) {
    let shard = Arc::new(Shard::new());
    registry().lock().unwrap().push(shard.clone());
    (EPOCH.load(Relaxed), shard)
}

#[inline]
fn with_shard(f: impl FnOnce(&Shard)) {
    SHARD.with(|cell| {
        let mut slot = cell.borrow_mut();
        let current = EPOCH.load(Relaxed);
        match &*slot {
            Some((epoch, shard)) if *epoch == current => f(shard),
            _ => {
                let (epoch, shard) = fresh_shard();
                f(&shard);
                *slot = Some((epoch, shard));
            }
        }
    });
}

/// Add `n` to a counter. One relaxed load when disabled.
#[inline]
pub fn count(counter: Counter, n: u64) {
    if !enabled() {
        return;
    }
    with_shard(|s| {
        s.counters[counter as usize].fetch_add(n, Relaxed);
    });
}

/// Record a value into a histogram series.
#[inline]
pub fn record(series: Series, value: u64) {
    if !enabled() {
        return;
    }
    with_shard(|s| {
        let h = &s.hists[series as usize];
        h.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        h.count.fetch_add(1, Relaxed);
        h.sum.fetch_add(value, Relaxed);
    });
}

/// Pins a freshly-registered shard to the current thread for the
/// guard's lifetime (the campaign engine holds one per worker). On
/// drop the thread-local is cleared; the shard itself stays registered
/// so its data survives into [`snapshot`].
pub struct WorkerGuard(());

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        SHARD.with(|cell| cell.borrow_mut().take());
    }
}

/// Install a per-worker shard on the current thread. Cheap no-op work
/// when disabled (the shard is only allocated on first record).
pub fn worker_guard() -> WorkerGuard {
    SHARD.with(|cell| cell.borrow_mut().take());
    WorkerGuard(())
}

/// A merged, point-in-time view of every shard.
#[derive(Debug, Clone)]
pub struct Snapshot {
    counters: [u64; NCOUNTERS],
    hists: Vec<HistSnapshot>,
}

/// Merged histogram data for one series.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistSnapshot {
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all recorded values (exact, from the running sum).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Value at quantile `q` in [0, 1], reported as the lower bound of
    /// the bucket holding that rank (≤ 12.5% below the true value).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_floor(i));
            }
        }
        Some(bucket_floor(BUCKETS - 1))
    }
}

impl Snapshot {
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    pub fn hist(&self, s: Series) -> &HistSnapshot {
        &self.hists[s as usize]
    }
}

/// Merge every registered shard.
pub fn snapshot() -> Snapshot {
    let mut counters = [0u64; NCOUNTERS];
    let mut hists: Vec<HistSnapshot> = (0..NSERIES)
        .map(|_| HistSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        })
        .collect();
    for shard in registry().lock().unwrap().iter() {
        for (slot, a) in counters.iter_mut().zip(shard.counters.iter()) {
            *slot += a.load(Relaxed);
        }
        for (merged, h) in hists.iter_mut().zip(shard.hists.iter()) {
            for (slot, b) in merged.buckets.iter_mut().zip(h.buckets.iter()) {
                *slot += b.load(Relaxed);
            }
            merged.count += h.count.load(Relaxed);
            merged.sum += h.sum.load(Relaxed);
        }
    }
    Snapshot { counters, hists }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable flag, epoch and registry are process-global: tests
    /// that touch them must not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps to a bucket whose floor is <= the value, and
        // bucket indices never decrease as values grow.
        let probes: Vec<u64> = (0..64u32)
            .flat_map(|shift| {
                [0u64, 1, 3]
                    .into_iter()
                    .map(move |off| (1u64 << shift).saturating_add(off))
            })
            .collect();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut last = 0usize;
        for v in sorted {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "v={v} i={i}");
            assert!(bucket_floor(i) <= v, "floor({i})={} > {v}", bucket_floor(i));
            assert!(i >= last, "non-monotone at {v}: {i} < {last}");
            last = i;
        }
        // Small values are exact.
        for v in 0..SUB as u64 {
            assert_eq!(bucket_floor(bucket_index(v)), v);
        }
        // Relative error bound: floor is within 12.5% below the value.
        for v in [100u64, 1_000, 1_000_000, u64::MAX / 3] {
            let floor = bucket_floor(bucket_index(v));
            assert!(
                floor <= v && (v - floor) as f64 / v as f64 <= 0.125,
                "v={v}"
            );
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn count_record_merge_quantiles() {
        let _serial = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        count(Counter::CacheHits, 3);
        count(Counter::CacheHits, 2);
        for v in [10u64, 20, 30, 40, 1000] {
            record(Series::HandshakeNs, v);
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counter(Counter::CacheHits), 5);
        assert_eq!(snap.counter(Counter::CacheMisses), 0);
        let h = snap.hist(Series::HandshakeNs);
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Some(220.0));
        assert_eq!(h.quantile(0.0), Some(10));
        assert!(h.quantile(1.0).unwrap() >= 896, "p100 in top bucket");
        reset();
    }

    #[test]
    fn disabled_records_nothing() {
        let _serial = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        count(Counter::UnitsRun, 1);
        record(Series::ResolveNs, 42);
        // The disabled path must not even allocate a shard.
        SHARD.with(|c| assert!(c.borrow().is_none()));
    }

    #[test]
    fn shards_merge_across_threads() {
        let _serial = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _guard = worker_guard();
                    for _ in 0..100 {
                        count(Counter::UnitsRun, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counter(Counter::UnitsRun), 400);
        reset();
    }
}
