//! qlog JSON-SEQ serialization and the round-trip validator.
//!
//! The writer emits the qlog "JSON-SEQ" container (draft-ietf-quic-
//! qlog-main-schema with RFC 7464 framing): every record is prefixed
//! with an RS byte (0x1E) and terminated with LF; the first record is
//! the file header, each following record one event with a `group_id`
//! naming the connection it belongs to. Events carry a non-standard
//! `layer` member so consumers (and our own tests) can attribute them
//! without parsing event names.
//!
//! The vendored `serde_json` stand-in can serialize but not parse, so
//! this module also carries a minimal recursive-descent JSON parser
//! ([`parse`], [`parse_seq`]) used by the round-trip validation test
//! and the CI trace check.

use crate::event::EventRecord;

/// RFC 7464 record separator.
pub const RS: char = '\u{1e}';

/// The events of one traced connection, labelled by `group_id`.
#[derive(Debug, Clone, Default)]
pub struct ConnTrace {
    pub group_id: String,
    pub events: Vec<EventRecord>,
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize connection traces as one qlog JSON-SEQ stream.
pub fn to_json_seq(title: &str, traces: &[ConnTrace]) -> String {
    let mut out = String::new();
    out.push(RS);
    out.push_str("{\"qlog_version\":\"0.3\",\"qlog_format\":\"JSON-SEQ\",\"title\":");
    escape(title, &mut out);
    out.push_str(
        ",\"trace\":{\"common_fields\":{\"time_format\":\"relative\",\"reference_time\":0},\
         \"vantage_point\":{\"type\":\"client\"}}}\n",
    );
    for trace in traces {
        for rec in &trace.events {
            out.push(RS);
            out.push_str(&format!(
                "{{\"time\":{:.6},\"name\":\"{}\",\"layer\":\"{}\",\"data\":{},\"group_id\":",
                rec.time_ns as f64 / 1e6,
                rec.event.name(),
                rec.event.layer().as_str(),
                rec.event.data_json(),
            ));
            escape(&trace.group_id, &mut out);
            out.push_str("}\n");
        }
    }
    out
}

/// A parsed JSON document (the validator's tiny object model).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[', "expected '['")?;
        let mut elements = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(elements));
        }
        loop {
            elements.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(elements));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // `pos` only ever advances past complete scalars,
                    // so it is always a char boundary.
                    let c = self.input[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// Parse one JSON document; trailing whitespace allowed, trailing
/// garbage is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Parse an RFC 7464 JSON-SEQ stream into its records.
pub fn parse_seq(input: &str) -> Result<Vec<Json>, String> {
    let mut records = Vec::new();
    for (i, chunk) in input.split(RS).enumerate() {
        if chunk.is_empty() {
            continue; // before the first RS, or doubled separators
        }
        let body = chunk.trim_end_matches(['\n', '\r']);
        records.push(parse(body).map_err(|e| format!("record {i}: {e}"))?);
    }
    if records.is_empty() {
        return Err("no records in JSON-SEQ stream".to_string());
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn sample_trace() -> ConnTrace {
        ConnTrace {
            group_id: "doq:vp0".to_string(),
            events: vec![
                EventRecord {
                    time_ns: 1_500_000,
                    event: Event::QuicPacketSent {
                        ptype: "initial",
                        pn: 0,
                        size: 1252,
                    },
                },
                EventRecord {
                    time_ns: 2_000_000,
                    event: Event::TlsHandshakeCompleted { resumed: true },
                },
            ],
        }
    }

    #[test]
    fn json_seq_round_trips() {
        let seq = to_json_seq("unit", &[sample_trace()]);
        assert!(seq.starts_with(RS));
        let records = parse_seq(&seq).expect("parses");
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[0].get("qlog_version").and_then(Json::as_str),
            Some("0.3")
        );
        assert_eq!(
            records[1].get("name").and_then(Json::as_str),
            Some("transport:packet_sent")
        );
        assert_eq!(records[1].get("time").and_then(Json::as_f64), Some(1.5));
        assert_eq!(
            records[1].get("group_id").and_then(Json::as_str),
            Some("doq:vp0")
        );
        assert_eq!(records[2].get("layer").and_then(Json::as_str), Some("tls"));
        assert_eq!(
            records[2]
                .get("data")
                .and_then(|d| d.get("resumed"))
                .cloned(),
            Some(Json::Bool(true))
        );
    }

    #[test]
    fn parser_handles_escapes_arrays_and_numbers() {
        let v = parse(r#"{"a":[1,-2.5,1e3],"s":"x\"\\\nA","n":null,"b":false}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Num(1000.0)
            ]))
        );
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x\"\\\nA"));
        assert_eq!(v.get("n"), Some(&Json::Null));
        assert_eq!(v.get("b"), Some(&Json::Bool(false)));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse_seq("").is_err());
    }
}
