//! The cross-layer event vocabulary.
//!
//! Each variant maps to a qlog-style `category:event` name plus a
//! compact JSON `data` member. Names follow the qlog main schema where
//! one exists (`transport:packet_sent`, `recovery:metrics_updated`,
//! `connectivity:connection_state_updated`); TCP/TLS/HTTP events that
//! qlog does not define reuse its naming convention. Every serialized
//! event also carries a non-standard `layer` member attributing it to
//! the protocol layer that emitted it, which is what the round-trip
//! validation asserts on.

/// The protocol layer an event is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    Quic,
    Tls,
    Tcp,
    /// Congestion control / loss recovery (QUIC RTT estimation and the
    /// TCP NewReno controller both emit here).
    Cc,
    Http,
    /// DNS transport selection (cross-transport failover racing).
    Dns,
}

impl Layer {
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Quic => "quic",
            Layer::Tls => "tls",
            Layer::Tcp => "tcp",
            Layer::Cc => "cc",
            Layer::Http => "http",
            Layer::Dns => "dns",
        }
    }
}

/// One cross-layer protocol event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// QUIC packet handed to the wire (`transport:packet_sent`).
    QuicPacketSent {
        ptype: &'static str,
        pn: u64,
        size: usize,
    },
    /// QUIC packet accepted from the wire (`transport:packet_received`).
    QuicPacketReceived { ptype: &'static str, size: usize },
    /// Packet declared lost by the packet-threshold detector
    /// (`recovery:packet_lost`).
    QuicPacketLost { ptype: &'static str, pn: u64 },
    /// Probe timeout fired (`recovery:loss_timer_expired`).
    QuicPtoFired { epoch: &'static str, count: u32 },
    /// Handshake / connection state transition
    /// (`connectivity:connection_state_updated`).
    QuicStateUpdated { state: &'static str },
    /// PATH_CHALLENGE probe sent on the active path
    /// (`connectivity:path_challenge_sent`); `retry` counts probe
    /// retransmissions for the current validation attempt.
    QuicPathChallenge { retry: u32 },
    /// Path validation succeeded (`connectivity:path_validated`).
    QuicPathValidated { retries: u32 },
    /// Path validation gave up after exhausting probe retries
    /// (`connectivity:path_abandoned`).
    QuicPathAbandoned { retries: u32 },
    /// Cross-transport failover dialed a fallback rung
    /// (`connectivity:failover_raced`).
    FailoverRaced {
        from: &'static str,
        to: &'static str,
    },
    /// A TLS handshake flight left the engine (`security:flight_sent`).
    TlsFlightSent { flight: &'static str, bytes: usize },
    /// Handshake completed (`security:handshake_completed`).
    TlsHandshakeCompleted { resumed: bool },
    /// 0-RTT decision (`security:early_data_updated`).
    TlsEarlyData { accepted: bool },
    /// TCP retransmission, `kind` is `"rto"` or `"fast"`
    /// (`transport:packet_retransmitted`).
    TcpRetransmit { kind: &'static str, bytes: usize },
    /// TCP Fast Open engaged, `side` is `"client"` or `"server"`
    /// (`transport:fast_open`).
    TcpFastOpen { side: &'static str, data_len: usize },
    /// Congestion/loss-recovery state (`recovery:metrics_updated`).
    /// TCP reports cwnd/ssthresh; QUIC reports its RTT estimate.
    CcMetricsUpdated {
        cwnd: Option<u64>,
        ssthresh: Option<u64>,
        srtt_ns: Option<u64>,
    },
    /// HTTP/2 or HTTP/3 request opened a stream (`http:request_sent`).
    HttpRequestSent {
        protocol: &'static str,
        stream_id: u64,
    },
    /// Response fully received on a stream (`http:response_received`).
    HttpResponseReceived {
        protocol: &'static str,
        stream_id: u64,
        status: u32,
    },
}

impl Event {
    /// The qlog-style `category:event` name.
    pub fn name(&self) -> &'static str {
        match self {
            Event::QuicPacketSent { .. } => "transport:packet_sent",
            Event::QuicPacketReceived { .. } => "transport:packet_received",
            Event::QuicPacketLost { .. } => "recovery:packet_lost",
            Event::QuicPtoFired { .. } => "recovery:loss_timer_expired",
            Event::QuicStateUpdated { .. } => "connectivity:connection_state_updated",
            Event::QuicPathChallenge { .. } => "connectivity:path_challenge_sent",
            Event::QuicPathValidated { .. } => "connectivity:path_validated",
            Event::QuicPathAbandoned { .. } => "connectivity:path_abandoned",
            Event::FailoverRaced { .. } => "connectivity:failover_raced",
            Event::TlsFlightSent { .. } => "security:flight_sent",
            Event::TlsHandshakeCompleted { .. } => "security:handshake_completed",
            Event::TlsEarlyData { .. } => "security:early_data_updated",
            Event::TcpRetransmit { .. } => "transport:packet_retransmitted",
            Event::TcpFastOpen { .. } => "transport:fast_open",
            Event::CcMetricsUpdated { .. } => "recovery:metrics_updated",
            Event::HttpRequestSent { .. } => "http:request_sent",
            Event::HttpResponseReceived { .. } => "http:response_received",
        }
    }

    /// The layer the event is attributed to.
    pub fn layer(&self) -> Layer {
        match self {
            Event::QuicPacketSent { .. }
            | Event::QuicPacketReceived { .. }
            | Event::QuicPacketLost { .. }
            | Event::QuicPtoFired { .. }
            | Event::QuicStateUpdated { .. }
            | Event::QuicPathChallenge { .. }
            | Event::QuicPathValidated { .. }
            | Event::QuicPathAbandoned { .. } => Layer::Quic,
            Event::FailoverRaced { .. } => Layer::Dns,
            Event::TlsFlightSent { .. }
            | Event::TlsHandshakeCompleted { .. }
            | Event::TlsEarlyData { .. } => Layer::Tls,
            Event::TcpRetransmit { .. } | Event::TcpFastOpen { .. } => Layer::Tcp,
            Event::CcMetricsUpdated { .. } => Layer::Cc,
            Event::HttpRequestSent { .. } | Event::HttpResponseReceived { .. } => Layer::Http,
        }
    }

    /// The event's `data` member as compact JSON. All string fields are
    /// `&'static str` identifiers (no escaping required).
    pub fn data_json(&self) -> String {
        match self {
            Event::QuicPacketSent { ptype, pn, size } => format!(
                "{{\"header\":{{\"packet_type\":\"{ptype}\",\"packet_number\":{pn}}},\"raw\":{{\"length\":{size}}}}}"
            ),
            Event::QuicPacketReceived { ptype, size } => format!(
                "{{\"header\":{{\"packet_type\":\"{ptype}\"}},\"raw\":{{\"length\":{size}}}}}"
            ),
            Event::QuicPacketLost { ptype, pn } => format!(
                "{{\"header\":{{\"packet_type\":\"{ptype}\",\"packet_number\":{pn}}}}}"
            ),
            Event::QuicPtoFired { epoch, count } => format!(
                "{{\"timer_type\":\"pto\",\"packet_number_space\":\"{epoch}\",\"count\":{count}}}"
            ),
            Event::QuicStateUpdated { state } => format!("{{\"new\":\"{state}\"}}"),
            Event::QuicPathChallenge { retry } => format!("{{\"retry\":{retry}}}"),
            Event::QuicPathValidated { retries } => format!("{{\"retries\":{retries}}}"),
            Event::QuicPathAbandoned { retries } => format!("{{\"retries\":{retries}}}"),
            Event::FailoverRaced { from, to } => {
                format!("{{\"from\":\"{from}\",\"to\":\"{to}\"}}")
            }
            Event::TlsFlightSent { flight, bytes } => {
                format!("{{\"flight\":\"{flight}\",\"length\":{bytes}}}")
            }
            Event::TlsHandshakeCompleted { resumed } => format!("{{\"resumed\":{resumed}}}"),
            Event::TlsEarlyData { accepted } => format!("{{\"accepted\":{accepted}}}"),
            Event::TcpRetransmit { kind, bytes } => {
                format!("{{\"trigger\":\"{kind}\",\"length\":{bytes}}}")
            }
            Event::TcpFastOpen { side, data_len } => {
                format!("{{\"side\":\"{side}\",\"data_length\":{data_len}}}")
            }
            Event::CcMetricsUpdated {
                cwnd,
                ssthresh,
                srtt_ns,
            } => {
                let mut parts = Vec::new();
                if let Some(v) = cwnd {
                    parts.push(format!("\"congestion_window\":{v}"));
                }
                if let Some(v) = ssthresh {
                    parts.push(format!("\"ssthresh\":{v}"));
                }
                if let Some(v) = srtt_ns {
                    parts.push(format!("\"smoothed_rtt\":{:.6}", *v as f64 / 1e6));
                }
                format!("{{{}}}", parts.join(","))
            }
            Event::HttpRequestSent {
                protocol,
                stream_id,
            } => format!("{{\"protocol\":\"{protocol}\",\"stream_id\":{stream_id}}}"),
            Event::HttpResponseReceived {
                protocol,
                stream_id,
                status,
            } => format!(
                "{{\"protocol\":\"{protocol}\",\"stream_id\":{stream_id},\"status\":{status}}}"
            ),
        }
    }
}

/// A timestamped event. Times are simulator nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    pub time_ns: u64,
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_carry_qlog_categories() {
        let e = Event::QuicPacketSent {
            ptype: "initial",
            pn: 0,
            size: 1200,
        };
        assert_eq!(e.name(), "transport:packet_sent");
        assert_eq!(e.layer(), Layer::Quic);
        assert_eq!(
            e.data_json(),
            "{\"header\":{\"packet_type\":\"initial\",\"packet_number\":0},\"raw\":{\"length\":1200}}"
        );
    }

    #[test]
    fn metrics_updated_elides_absent_fields() {
        let e = Event::CcMetricsUpdated {
            cwnd: None,
            ssthresh: None,
            srtt_ns: Some(1_500_000),
        };
        assert_eq!(e.layer(), Layer::Cc);
        assert_eq!(e.data_json(), "{\"smoothed_rtt\":1.500000}");
    }
}
