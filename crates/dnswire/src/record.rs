//! Resource records and typed RDATA.

use crate::name::Name;
use crate::types::{RecordClass, RecordType};
use crate::wire::{WireError, WireReader, WireWriter};

/// A service-binding parameter (RFC 9460), as carried by SVCB/HTTPS
/// records. The `Alpn` parameter is how resolvers advertise DoH3
/// support (paper §4 future work).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvcParam {
    /// Key 1: list of ALPN protocol identifiers.
    Alpn(Vec<Vec<u8>>),
    /// Key 3: alternative port.
    Port(u16),
    /// Anything else, raw.
    Unknown(u16, Vec<u8>),
}

impl SvcParam {
    fn key(&self) -> u16 {
        match self {
            SvcParam::Alpn(_) => 1,
            SvcParam::Port(_) => 3,
            SvcParam::Unknown(k, _) => *k,
        }
    }

    fn encode_value(&self, w: &mut WireWriter) {
        match self {
            SvcParam::Alpn(protos) => {
                for p in protos {
                    w.put_u8(p.len() as u8);
                    w.put_slice(p);
                }
            }
            SvcParam::Port(p) => w.put_u16(*p),
            SvcParam::Unknown(_, v) => w.put_slice(v),
        }
    }

    fn decode(key: u16, value: &[u8]) -> Result<SvcParam, WireError> {
        match key {
            1 => {
                let mut protos = Vec::new();
                let mut r = WireReader::new(value);
                while !r.is_at_end() {
                    let len = r.get_u8()? as usize;
                    protos.push(r.get_slice(len)?.to_vec());
                }
                Ok(SvcParam::Alpn(protos))
            }
            3 => {
                if value.len() != 2 {
                    return Err(WireError::Invalid("svcb port length"));
                }
                Ok(SvcParam::Port(u16::from_be_bytes([value[0], value[1]])))
            }
            k => Ok(SvcParam::Unknown(k, value.to_vec())),
        }
    }
}

/// Typed record data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 address.
    A([u8; 4]),
    /// IPv6 address.
    Aaaa([u8; 16]),
    Ns(Name),
    Cname(Name),
    Ptr(Name),
    Mx {
        preference: u16,
        exchange: Name,
    },
    /// One or more character-strings.
    Txt(Vec<Vec<u8>>),
    Soa {
        mname: Name,
        rname: Name,
        serial: u32,
        refresh: u32,
        retry: u32,
        expire: u32,
        minimum: u32,
    },
    /// SVCB (priority 0 = alias mode) / HTTPS share a format.
    Svcb {
        priority: u16,
        target: Name,
        params: Vec<SvcParam>,
    },
    /// OPT RDATA is handled by [`crate::edns`]; at this layer it is raw.
    Opt(Vec<u8>),
    /// Unrecognized types, kept verbatim.
    Unknown(Vec<u8>),
}

impl RData {
    /// The record type this RDATA corresponds to (Unknown/Opt need the
    /// caller to track the numeric type).
    pub fn natural_type(&self) -> Option<RecordType> {
        Some(match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Ptr(_) => RecordType::Ptr,
            RData::Mx { .. } => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Soa { .. } => RecordType::Soa,
            RData::Svcb { .. } => RecordType::Svcb,
            RData::Opt(_) | RData::Unknown(_) => return None,
        })
    }

    /// Encode the RDATA body. Names inside RDATA that RFC 1035 §3.3
    /// allows to be compressed (NS, CNAME, PTR, MX, SOA) use the shared
    /// dictionary; newer types (SVCB) are written uncompressed per
    /// RFC 9460 §2.2.
    pub fn encode(&self, w: &mut WireWriter) {
        match self {
            RData::A(a) => w.put_slice(a),
            RData::Aaaa(a) => w.put_slice(a),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => n.encode(w),
            RData::Mx {
                preference,
                exchange,
            } => {
                w.put_u16(*preference);
                exchange.encode(w);
            }
            RData::Txt(strings) => {
                for s in strings {
                    w.put_u8(s.len() as u8);
                    w.put_slice(s);
                }
            }
            RData::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            } => {
                mname.encode(w);
                rname.encode(w);
                w.put_u32(*serial);
                w.put_u32(*refresh);
                w.put_u32(*retry);
                w.put_u32(*expire);
                w.put_u32(*minimum);
            }
            RData::Svcb {
                priority,
                target,
                params,
            } => {
                w.put_u16(*priority);
                target.encode_uncompressed(w);
                for p in params {
                    w.put_u16(p.key());
                    let len_at = w.len();
                    w.put_u16(0);
                    let before = w.len();
                    p.encode_value(w);
                    w.patch_u16(len_at, (w.len() - before) as u16);
                }
            }
            RData::Opt(raw) | RData::Unknown(raw) => w.put_slice(raw),
        }
    }

    /// Decode an RDATA body of `rdlen` bytes of type `rtype`.
    pub fn decode(
        rtype: RecordType,
        rdlen: usize,
        r: &mut WireReader<'_>,
    ) -> Result<RData, WireError> {
        let end = r.pos() + rdlen;
        if r.remaining() < rdlen {
            return Err(WireError::Truncated);
        }
        let rdata = match rtype {
            RecordType::A => {
                let s = r.get_slice(4)?;
                RData::A([s[0], s[1], s[2], s[3]])
            }
            RecordType::Aaaa => {
                let s = r.get_slice(16)?;
                let mut a = [0u8; 16];
                a.copy_from_slice(s);
                RData::Aaaa(a)
            }
            RecordType::Ns => RData::Ns(Name::decode(r)?),
            RecordType::Cname => RData::Cname(Name::decode(r)?),
            RecordType::Ptr => RData::Ptr(Name::decode(r)?),
            RecordType::Mx => {
                let preference = r.get_u16()?;
                RData::Mx {
                    preference,
                    exchange: Name::decode(r)?,
                }
            }
            RecordType::Txt => {
                let mut strings = Vec::new();
                while r.pos() < end {
                    let len = r.get_u8()? as usize;
                    if r.pos() + len > end {
                        return Err(WireError::Truncated);
                    }
                    strings.push(r.get_slice(len)?.to_vec());
                }
                RData::Txt(strings)
            }
            RecordType::Soa => RData::Soa {
                mname: Name::decode(r)?,
                rname: Name::decode(r)?,
                serial: r.get_u32()?,
                refresh: r.get_u32()?,
                retry: r.get_u32()?,
                expire: r.get_u32()?,
                minimum: r.get_u32()?,
            },
            RecordType::Svcb | RecordType::Https => {
                let priority = r.get_u16()?;
                let target = Name::decode(r)?;
                let mut params = Vec::new();
                while r.pos() < end {
                    let key = r.get_u16()?;
                    let len = r.get_u16()? as usize;
                    if r.pos() + len > end {
                        return Err(WireError::Truncated);
                    }
                    let value = r.get_slice(len)?;
                    params.push(SvcParam::decode(key, value)?);
                }
                RData::Svcb {
                    priority,
                    target,
                    params,
                }
            }
            RecordType::Opt => RData::Opt(r.get_slice(rdlen)?.to_vec()),
            _ => RData::Unknown(r.get_slice(rdlen)?.to_vec()),
        };
        if r.pos() != end {
            return Err(WireError::Invalid("rdata length mismatch"));
        }
        Ok(rdata)
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    pub name: Name,
    pub rtype: RecordType,
    pub class: RecordClass,
    pub ttl: u32,
    pub rdata: RData,
}

impl ResourceRecord {
    /// Convenience constructor for an IN-class record whose type is
    /// implied by the RDATA.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        let rtype = rdata.natural_type().expect("use new_raw for OPT/unknown");
        ResourceRecord {
            name,
            rtype,
            class: RecordClass::In,
            ttl,
            rdata,
        }
    }

    pub fn encode(&self, w: &mut WireWriter) {
        self.name.encode(w);
        w.put_u16(self.rtype.to_u16());
        w.put_u16(self.class.to_u16());
        w.put_u32(self.ttl);
        let len_at = w.len();
        w.put_u16(0);
        let before = w.len();
        self.rdata.encode(w);
        w.patch_u16(len_at, (w.len() - before) as u16);
    }

    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let name = Name::decode(r)?;
        let rtype = RecordType::from_u16(r.get_u16()?);
        let class = RecordClass::from_u16(r.get_u16()?);
        let ttl = r.get_u32()?;
        let rdlen = r.get_u16()? as usize;
        let rdata = RData::decode(rtype, rdlen, r)?;
        Ok(ResourceRecord {
            name,
            rtype,
            class,
            ttl,
            rdata,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rr: &ResourceRecord) -> ResourceRecord {
        let mut w = WireWriter::new();
        rr.encode(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        let out = ResourceRecord::decode(&mut r).unwrap();
        assert!(r.is_at_end());
        out
    }

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn a_record_roundtrip() {
        let rr = ResourceRecord::new(name("google.com"), 300, RData::A([142, 250, 1, 1]));
        assert_eq!(roundtrip(&rr), rr);
        assert_eq!(rr.rtype, RecordType::A);
    }

    #[test]
    fn aaaa_roundtrip() {
        let rr = ResourceRecord::new(name("google.com"), 60, RData::Aaaa([1; 16]));
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn cname_ns_ptr_roundtrip() {
        for rdata in [
            RData::Cname(name("www.example.org")),
            RData::Ns(name("ns1.example.org")),
            RData::Ptr(name("host.example.org")),
        ] {
            let rr = ResourceRecord::new(name("example.org"), 3600, rdata);
            assert_eq!(roundtrip(&rr), rr);
        }
    }

    #[test]
    fn mx_roundtrip() {
        let rr = ResourceRecord::new(
            name("example.org"),
            3600,
            RData::Mx {
                preference: 10,
                exchange: name("mail.example.org"),
            },
        );
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn txt_roundtrip_multiple_strings() {
        let rr = ResourceRecord::new(
            name("example.org"),
            60,
            RData::Txt(vec![b"v=spf1".to_vec(), b"include:x".to_vec(), vec![]]),
        );
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn soa_roundtrip() {
        let rr = ResourceRecord::new(
            name("example.org"),
            86400,
            RData::Soa {
                mname: name("ns1.example.org"),
                rname: name("hostmaster.example.org"),
                serial: 2022041200,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        );
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn https_svcb_roundtrip_with_alpn() {
        // The SVCB/HTTPS shape Cloudflare uses to advertise DoH3 (§4).
        let rr = ResourceRecord {
            name: name("cloudflare-dns.com"),
            rtype: RecordType::Https,
            class: RecordClass::In,
            ttl: 300,
            rdata: RData::Svcb {
                priority: 1,
                target: Name::root(),
                params: vec![
                    SvcParam::Alpn(vec![b"h3".to_vec(), b"h2".to_vec()]),
                    SvcParam::Port(443),
                    SvcParam::Unknown(9, vec![1, 2, 3]),
                ],
            },
        };
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn rdata_names_are_compressed_against_owner() {
        let rr = ResourceRecord::new(
            name("example.org"),
            60,
            RData::Cname(name("www.example.org")),
        );
        let mut w = WireWriter::new();
        rr.encode(&mut w);
        let plain = name("example.org").wire_len() + 10 + name("www.example.org").wire_len();
        assert!(w.len() < plain, "compression should shrink the record");
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(ResourceRecord::decode(&mut r).unwrap(), rr);
    }

    #[test]
    fn unknown_type_raw_roundtrip() {
        let rr = ResourceRecord {
            name: name("example.org"),
            rtype: RecordType::Unknown(4242),
            class: RecordClass::In,
            ttl: 1,
            rdata: RData::Unknown(vec![9, 9, 9]),
        };
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn rdlen_mismatch_rejected() {
        // CNAME whose RDLENGTH claims more bytes than the name uses.
        let mut w = WireWriter::new();
        name("a.b").encode(&mut w);
        w.put_u16(RecordType::Cname.to_u16());
        w.put_u16(1);
        w.put_u32(0);
        w.put_u16(9); // wrong: actual encoded name is shorter
        name("c.d").encode(&mut w);
        w.put_u8(0xFF); // pad so the reader has the claimed bytes
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert!(ResourceRecord::decode(&mut r).is_err());
    }

    #[test]
    fn truncated_rdata_rejected() {
        let mut w = WireWriter::new();
        name("a.b").encode(&mut w);
        w.put_u16(RecordType::A.to_u16());
        w.put_u16(1);
        w.put_u32(0);
        w.put_u16(4);
        w.put_slice(&[1, 2]); // only half the address
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(ResourceRecord::decode(&mut r), Err(WireError::Truncated));
    }
}
