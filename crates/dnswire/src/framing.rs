//! Two-byte length-prefixed framing for DNS over stream transports
//! (RFC 1035 §4.2.2; used by DoTCP, DoT, and the `doq-i03`+ / RFC 9250
//! DoQ stream mapping).

/// Prefix `msg` with its big-endian 16-bit length.
pub fn frame(msg: &[u8]) -> Vec<u8> {
    assert!(
        msg.len() <= u16::MAX as usize,
        "DNS message too large to frame"
    );
    let mut out = Vec::with_capacity(2 + msg.len());
    out.extend_from_slice(&(msg.len() as u16).to_be_bytes());
    out.extend_from_slice(msg);
    out
}

/// Incremental de-framer: feed arbitrary byte chunks, take out complete
/// messages. Stream transports deliver bytes with no message alignment,
/// so a reader must tolerate split length prefixes and coalesced
/// messages.
#[derive(Debug, Default)]
pub struct LengthPrefixedReader {
    buf: Vec<u8>,
}

impl LengthPrefixedReader {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append received bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Take the next complete message, if one is buffered.
    pub fn next_message(&mut self) -> Option<Vec<u8>> {
        if self.buf.len() < 2 {
            return None;
        }
        let len = u16::from_be_bytes([self.buf[0], self.buf[1]]) as usize;
        if self.buf.len() < 2 + len {
            return None;
        }
        let msg = self.buf[2..2 + len].to_vec();
        self.buf.drain(..2 + len);
        Some(msg)
    }

    /// Bytes buffered but not yet forming a complete message.
    pub fn pending_len(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_prepends_length() {
        assert_eq!(frame(&[1, 2, 3]), vec![0, 3, 1, 2, 3]);
        assert_eq!(frame(&[]), vec![0, 0]);
    }

    #[test]
    fn single_message_roundtrip() {
        let mut r = LengthPrefixedReader::new();
        r.push(&frame(b"hello"));
        assert_eq!(r.next_message(), Some(b"hello".to_vec()));
        assert_eq!(r.next_message(), None);
        assert_eq!(r.pending_len(), 0);
    }

    #[test]
    fn split_across_arbitrary_chunks() {
        let wire = frame(b"abcdef");
        for split in 0..wire.len() {
            let mut r = LengthPrefixedReader::new();
            r.push(&wire[..split]);
            assert_eq!(r.next_message(), None, "split at {split}");
            r.push(&wire[split..]);
            assert_eq!(r.next_message(), Some(b"abcdef".to_vec()));
        }
    }

    #[test]
    fn coalesced_messages() {
        let mut wire = frame(b"one");
        wire.extend(frame(b"two"));
        wire.extend(frame(b""));
        let mut r = LengthPrefixedReader::new();
        r.push(&wire);
        assert_eq!(r.next_message(), Some(b"one".to_vec()));
        assert_eq!(r.next_message(), Some(b"two".to_vec()));
        assert_eq!(r.next_message(), Some(vec![]));
        assert_eq!(r.next_message(), None);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_message_panics() {
        frame(&vec![0; 70_000]);
    }
}
