//! EDNS(0) (RFC 6891): the OPT pseudo-record and the options the paper
//! cares about.
//!
//! The paper checks whether resolvers honour `edns-tcp-keepalive`
//! (RFC 7828) — none did, which is why DoTCP pays a fresh 2-RTT cost per
//! query. The Padding option (RFC 7830) is what encrypted transports use
//! to round message sizes; it also lets our calibration match the
//! paper's observed single-query sizes.

use crate::name::Name;
use crate::record::{RData, ResourceRecord};
use crate::types::{RecordClass, RecordType};
use crate::wire::{WireError, WireReader, WireWriter};

/// An EDNS(0) option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdnsOption {
    /// RFC 7828. The timeout is in units of 100 ms; a client sends the
    /// option empty (None), a server answers with a timeout.
    TcpKeepalive(Option<u16>),
    /// RFC 7830: `len` zero bytes of padding.
    Padding(u16),
    /// Client cookie (RFC 7873), fixed 8 bytes from the client.
    Cookie(Vec<u8>),
    Unknown(u16, Vec<u8>),
}

impl EdnsOption {
    fn code(&self) -> u16 {
        match self {
            EdnsOption::Cookie(_) => 10,
            EdnsOption::TcpKeepalive(_) => 11,
            EdnsOption::Padding(_) => 12,
            EdnsOption::Unknown(c, _) => *c,
        }
    }

    fn encode_value(&self, w: &mut WireWriter) {
        match self {
            EdnsOption::TcpKeepalive(None) => {}
            EdnsOption::TcpKeepalive(Some(t)) => w.put_u16(*t),
            EdnsOption::Padding(len) => {
                for _ in 0..*len {
                    w.put_u8(0);
                }
            }
            EdnsOption::Cookie(c) | EdnsOption::Unknown(_, c) => w.put_slice(c),
        }
    }

    fn decode(code: u16, value: &[u8]) -> Result<EdnsOption, WireError> {
        match code {
            10 => Ok(EdnsOption::Cookie(value.to_vec())),
            11 => match value.len() {
                0 => Ok(EdnsOption::TcpKeepalive(None)),
                2 => Ok(EdnsOption::TcpKeepalive(Some(u16::from_be_bytes([
                    value[0], value[1],
                ])))),
                _ => Err(WireError::Invalid("tcp-keepalive length")),
            },
            // RFC 7830 §3: the message sender SHOULD pad with zero
            // bytes. We only ever emit zeros, so `Padding(len)` is a
            // lossless model *iff* the input pad is all-zero; anything
            // else would be silently rewritten to zeros on re-encode,
            // breaking decode→encode byte fidelity. Reject it instead.
            12 => {
                if value.iter().any(|&b| b != 0) {
                    return Err(WireError::Invalid("non-zero padding bytes"));
                }
                Ok(EdnsOption::Padding(value.len() as u16))
            }
            c => Ok(EdnsOption::Unknown(c, value.to_vec())),
        }
    }
}

/// Decoded view of an OPT pseudo-record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptRecord {
    /// Requestor's maximum UDP payload size.
    pub udp_payload_size: u16,
    pub extended_rcode: u8,
    pub version: u8,
    /// The DO (DNSSEC OK) bit.
    pub dnssec_ok: bool,
    pub options: Vec<EdnsOption>,
}

impl Default for OptRecord {
    fn default() -> Self {
        OptRecord {
            udp_payload_size: 1232, // the DNS-flag-day recommendation
            extended_rcode: 0,
            version: 0,
            dnssec_ok: false,
            options: Vec::new(),
        }
    }
}

impl OptRecord {
    pub fn option(&self, matcher: impl Fn(&EdnsOption) -> bool) -> Option<&EdnsOption> {
        self.options.iter().find(|o| matcher(o))
    }

    pub fn tcp_keepalive(&self) -> Option<&EdnsOption> {
        self.option(|o| matches!(o, EdnsOption::TcpKeepalive(_)))
    }

    /// Render to a resource record for inclusion in the additional
    /// section. The OPT record abuses the class field for the UDP
    /// payload size and the TTL for flags (RFC 6891 §6.1.3).
    pub fn to_record(&self) -> ResourceRecord {
        let mut w = WireWriter::new();
        for opt in &self.options {
            w.put_u16(opt.code());
            let len_at = w.len();
            w.put_u16(0);
            let before = w.len();
            opt.encode_value(&mut w);
            w.patch_u16(len_at, (w.len() - before) as u16);
        }
        let ttl = ((self.extended_rcode as u32) << 24)
            | ((self.version as u32) << 16)
            | if self.dnssec_ok { 0x8000 } else { 0 };
        ResourceRecord {
            name: Name::root(),
            rtype: RecordType::Opt,
            class: RecordClass::Unknown(self.udp_payload_size),
            ttl,
            rdata: RData::Opt(w.finish()),
        }
    }

    /// Parse from a resource record of type OPT.
    pub fn from_record(rr: &ResourceRecord) -> Result<OptRecord, WireError> {
        if rr.rtype != RecordType::Opt {
            return Err(WireError::Invalid("not an OPT record"));
        }
        let RData::Opt(raw) = &rr.rdata else {
            return Err(WireError::Invalid("OPT rdata shape"));
        };
        let mut options = Vec::new();
        let mut r = WireReader::new(raw);
        while !r.is_at_end() {
            let code = r.get_u16()?;
            let len = r.get_u16()? as usize;
            let value = r.get_slice(len)?;
            options.push(EdnsOption::decode(code, value)?);
        }
        Ok(OptRecord {
            udp_payload_size: rr.class.to_u16(),
            extended_rcode: (rr.ttl >> 24) as u8,
            version: (rr.ttl >> 16) as u8,
            dnssec_ok: rr.ttl & 0x8000 != 0,
            options,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_flag_day_size() {
        assert_eq!(OptRecord::default().udp_payload_size, 1232);
    }

    #[test]
    fn roundtrip_plain() {
        let opt = OptRecord::default();
        let rr = opt.to_record();
        assert_eq!(OptRecord::from_record(&rr).unwrap(), opt);
    }

    #[test]
    fn roundtrip_with_options() {
        let opt = OptRecord {
            udp_payload_size: 4096,
            extended_rcode: 0,
            version: 0,
            dnssec_ok: true,
            options: vec![
                EdnsOption::TcpKeepalive(None),
                EdnsOption::Padding(12),
                EdnsOption::Cookie(vec![1, 2, 3, 4, 5, 6, 7, 8]),
                EdnsOption::Unknown(42, vec![0xFF]),
            ],
        };
        let rr = opt.to_record();
        let back = OptRecord::from_record(&rr).unwrap();
        assert_eq!(back, opt);
        assert!(back.dnssec_ok);
        assert!(back.tcp_keepalive().is_some());
    }

    #[test]
    fn keepalive_with_timeout() {
        let opt = OptRecord {
            options: vec![EdnsOption::TcpKeepalive(Some(100))],
            ..OptRecord::default()
        };
        let back = OptRecord::from_record(&opt.to_record()).unwrap();
        assert_eq!(
            back.tcp_keepalive(),
            Some(&EdnsOption::TcpKeepalive(Some(100)))
        );
    }

    #[test]
    fn padding_adds_exact_bytes() {
        let small = OptRecord::default().to_record();
        let padded = OptRecord {
            options: vec![EdnsOption::Padding(100)],
            ..OptRecord::default()
        }
        .to_record();
        let len = |rr: &ResourceRecord| {
            let mut w = WireWriter::new();
            rr.encode(&mut w);
            w.len()
        };
        assert_eq!(len(&padded), len(&small) + 4 + 100);
    }

    #[test]
    fn zero_padding_survives_decode_encode_roundtrip() {
        let opt = OptRecord {
            options: vec![EdnsOption::Padding(37)],
            ..OptRecord::default()
        };
        let rr = opt.to_record();
        let back = OptRecord::from_record(&rr).unwrap();
        assert_eq!(back, opt);
        // Byte-identical re-encode: what PacketTap fidelity relies on.
        let wire = |rr: &ResourceRecord| {
            let mut w = WireWriter::new();
            rr.encode(&mut w);
            w.finish()
        };
        assert_eq!(wire(&back.to_record()), wire(&rr));
    }

    #[test]
    fn nonzero_padding_bytes_rejected() {
        // Hand-build OPT rdata: option 12, length 3, one non-zero byte.
        let rr = ResourceRecord {
            name: Name::root(),
            rtype: RecordType::Opt,
            class: RecordClass::Unknown(1232),
            ttl: 0,
            rdata: RData::Opt(vec![0, 12, 0, 3, 0, 0xAB, 0]),
        };
        assert!(OptRecord::from_record(&rr).is_err());
    }

    #[test]
    fn from_record_rejects_wrong_type() {
        let rr = ResourceRecord::new(Name::parse("x.y").unwrap(), 0, RData::A([1, 2, 3, 4]));
        assert!(OptRecord::from_record(&rr).is_err());
    }

    #[test]
    fn bad_keepalive_length_rejected() {
        let rr = ResourceRecord {
            name: Name::root(),
            rtype: RecordType::Opt,
            class: RecordClass::Unknown(1232),
            ttl: 0,
            rdata: RData::Opt(vec![0, 11, 0, 1, 9]), // 1-byte keepalive
        };
        assert!(OptRecord::from_record(&rr).is_err());
    }
}
