//! Low-level wire reading and writing.
//!
//! [`WireWriter`] appends big-endian integers and byte slices to a
//! growable buffer and maintains the name-compression dictionary.
//! [`WireReader`] is a bounds-checked cursor over received bytes; all
//! failures surface as [`WireError`] — malformed input can never panic.

use std::collections::HashMap;

/// Decoding / encoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the structure was complete.
    Truncated,
    /// A label exceeded 63 bytes or a name exceeded 255 bytes.
    NameTooLong,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A label length byte used the reserved 0x40/0x80 prefixes.
    BadLabelType,
    /// A count field disagreed with the message contents.
    BadCount,
    /// Any other structural violation, with a short description.
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::NameTooLong => write!(f, "name or label too long"),
            WireError::BadPointer => write!(f, "bad compression pointer"),
            WireError::BadLabelType => write!(f, "reserved label type"),
            WireError::BadCount => write!(f, "section count mismatch"),
            WireError::Invalid(what) => write!(f, "invalid message: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Growable output buffer with the name-compression dictionary.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
    /// Maps a (case-normalised) name suffix to the offset of its first
    /// occurrence, for compression pointers. Only offsets < 0x4000 are
    /// usable as pointer targets.
    name_offsets: HashMap<Vec<u8>, u16>,
}

impl WireWriter {
    pub fn new() -> Self {
        WireWriter::default()
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Overwrite two bytes at `at` (used to patch RDLENGTH after the
    /// RDATA, whose compressed size is not known in advance).
    pub fn patch_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Look up a previously written name suffix.
    pub fn compression_offset(&self, key: &[u8]) -> Option<u16> {
        self.name_offsets.get(key).copied()
    }

    /// Remember that `key` (a case-normalised suffix) starts at `offset`.
    pub fn remember_name(&mut self, key: Vec<u8>, offset: usize) {
        // Pointers can only address the first 16 KiB minus the two
        // pointer tag bits.
        if offset < 0x4000 {
            self.name_offsets.entry(key).or_insert(offset as u16);
        }
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Bounds-checked cursor over an input buffer.
///
/// The reader always retains a view of the *whole* message so that
/// compression pointers can jump backwards.
#[derive(Debug, Clone, Copy)]
pub struct WireReader<'a> {
    full: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { full: buf, pos: 0 }
    }

    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Jump to an absolute offset (used for compression pointers).
    pub fn seek(&mut self, pos: usize) -> Result<(), WireError> {
        if pos > self.full.len() {
            return Err(WireError::Truncated);
        }
        self.pos = pos;
        Ok(())
    }

    pub fn remaining(&self) -> usize {
        self.full.len() - self.pos
    }

    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        let b = *self.full.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let s = self.get_slice(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }

    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let s = self.get_slice(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub fn get_slice(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < len {
            return Err(WireError::Truncated);
        }
        let s = &self.full[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    /// The full message buffer (for pointer resolution).
    pub fn full_message(&self) -> &'a [u8] {
        self.full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_primitives() {
        let mut w = WireWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        w.put_slice(&[1, 2]);
        assert_eq!(
            w.finish(),
            vec![0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2]
        );
    }

    #[test]
    fn patch_u16_overwrites_in_place() {
        let mut w = WireWriter::new();
        w.put_u16(0);
        w.put_u8(9);
        w.patch_u16(0, 0xBEEF);
        assert_eq!(w.finish(), vec![0xBE, 0xEF, 9]);
    }

    #[test]
    fn reader_primitives_roundtrip() {
        let buf = [0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_slice(2).unwrap(), &[1, 2]);
        assert!(r.is_at_end());
    }

    #[test]
    fn reader_rejects_overrun() {
        let mut r = WireReader::new(&[1]);
        assert_eq!(r.get_u16(), Err(WireError::Truncated));
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_u8(), Err(WireError::Truncated));
    }

    #[test]
    fn seek_bounds() {
        let mut r = WireReader::new(&[1, 2, 3]);
        assert!(r.seek(3).is_ok());
        assert!(r.is_at_end());
        assert_eq!(r.seek(4), Err(WireError::Truncated));
    }

    #[test]
    fn compression_dictionary_first_offset_wins() {
        let mut w = WireWriter::new();
        w.remember_name(b"example.com".to_vec(), 12);
        w.remember_name(b"example.com".to_vec(), 40);
        assert_eq!(w.compression_offset(b"example.com"), Some(12));
    }

    #[test]
    fn compression_dictionary_ignores_unreachable_offsets() {
        let mut w = WireWriter::new();
        w.remember_name(b"x".to_vec(), 0x4000);
        assert_eq!(w.compression_offset(b"x"), None);
    }
}
