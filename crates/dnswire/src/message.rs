//! The DNS message codec: header, question, and the four record
//! sections, plus convenience builders for queries and responses.

use crate::edns::OptRecord;
use crate::name::Name;
use crate::record::ResourceRecord;
use crate::types::{Opcode, Rcode, RecordClass, RecordType};
use crate::wire::{WireError, WireReader, WireWriter};

/// The 12-byte message header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    pub id: u16,
    /// QR: false = query, true = response.
    pub response: bool,
    pub opcode: Opcode,
    pub authoritative: bool,
    pub truncated: bool,
    pub recursion_desired: bool,
    pub recursion_available: bool,
    pub authentic_data: bool,
    pub checking_disabled: bool,
    pub rcode: Rcode,
}

impl Default for Header {
    fn default() -> Self {
        Header {
            id: 0,
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            authentic_data: false,
            checking_disabled: false,
            rcode: Rcode::NoError,
        }
    }
}

impl Header {
    fn flags(&self) -> u16 {
        let mut f = 0u16;
        if self.response {
            f |= 0x8000;
        }
        f |= (self.opcode.to_u8() as u16) << 11;
        if self.authoritative {
            f |= 0x0400;
        }
        if self.truncated {
            f |= 0x0200;
        }
        if self.recursion_desired {
            f |= 0x0100;
        }
        if self.recursion_available {
            f |= 0x0080;
        }
        if self.authentic_data {
            f |= 0x0020;
        }
        if self.checking_disabled {
            f |= 0x0010;
        }
        f | self.rcode.to_u8() as u16
    }

    fn from_flags(id: u16, f: u16) -> Header {
        Header {
            id,
            response: f & 0x8000 != 0,
            opcode: Opcode::from_u8((f >> 11) as u8),
            authoritative: f & 0x0400 != 0,
            truncated: f & 0x0200 != 0,
            recursion_desired: f & 0x0100 != 0,
            recursion_available: f & 0x0080 != 0,
            authentic_data: f & 0x0020 != 0,
            checking_disabled: f & 0x0010 != 0,
            rcode: Rcode::from_u8(f as u8),
        }
    }
}

/// An entry of the question section.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    pub name: Name,
    pub rtype: RecordType,
    pub class: RecordClass,
}

impl Question {
    pub fn new(name: Name, rtype: RecordType) -> Self {
        Question {
            name,
            rtype,
            class: RecordClass::In,
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        self.name.encode(w);
        w.put_u16(self.rtype.to_u16());
        w.put_u16(self.class.to_u16());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Question {
            name: Name::decode(r)?,
            rtype: RecordType::from_u16(r.get_u16()?),
            class: RecordClass::from_u16(r.get_u16()?),
        })
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    pub header: Header,
    pub questions: Vec<Question>,
    pub answers: Vec<ResourceRecord>,
    pub authorities: Vec<ResourceRecord>,
    pub additionals: Vec<ResourceRecord>,
}

impl Message {
    /// Build a recursive query for `name`/`rtype` with an EDNS(0) OPT
    /// record (as every modern stub does).
    pub fn query(id: u16, name: Name, rtype: RecordType) -> Message {
        let mut msg = Message {
            header: Header {
                id,
                ..Header::default()
            },
            questions: vec![Question::new(name, rtype)],
            ..Message::default()
        };
        msg.additionals.push(OptRecord::default().to_record());
        msg
    }

    /// Build a response to `query` carrying `answers`.
    pub fn response_to(query: &Message, answers: Vec<ResourceRecord>) -> Message {
        Message {
            header: Header {
                id: query.header.id,
                response: true,
                opcode: query.header.opcode,
                recursion_desired: query.header.recursion_desired,
                recursion_available: true,
                rcode: Rcode::NoError,
                ..Header::default()
            },
            questions: query.questions.clone(),
            answers,
            authorities: Vec::new(),
            additionals: vec![OptRecord::default().to_record()],
        }
    }

    /// Build an error response to `query`.
    pub fn error_response_to(query: &Message, rcode: Rcode) -> Message {
        let mut m = Message::response_to(query, Vec::new());
        m.header.rcode = rcode;
        m
    }

    /// The EDNS OPT record, if present.
    pub fn opt(&self) -> Option<OptRecord> {
        self.additionals
            .iter()
            .find(|rr| rr.rtype == RecordType::Opt)
            .and_then(|rr| OptRecord::from_record(rr).ok())
    }

    /// The EDNS version the sender asked for, if it sent an OPT record.
    /// RFC 6891 §6.1.3: a server must answer anything above 0 with
    /// BADVERS, not a normal response.
    pub fn edns_version(&self) -> Option<u8> {
        self.opt().map(|o| o.version)
    }

    /// Build the RFC 6891 §6.1.3 BADVERS response. BADVERS is extended
    /// rcode 16: OPT `extended_rcode` 1 with the 4-bit header rcode
    /// left at 0. No answers — the query was not processed.
    pub fn badvers_response_to(query: &Message) -> Message {
        let mut m = Message::response_to(query, Vec::new());
        m.additionals.clear();
        m.additionals.push(
            OptRecord {
                extended_rcode: 1,
                ..OptRecord::default()
            }
            .to_record(),
        );
        m
    }

    /// First question, if any.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u16(self.header.id);
        w.put_u16(self.header.flags());
        w.put_u16(self.questions.len() as u16);
        w.put_u16(self.answers.len() as u16);
        w.put_u16(self.authorities.len() as u16);
        w.put_u16(self.additionals.len() as u16);
        for q in &self.questions {
            q.encode(&mut w);
        }
        for rr in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            rr.encode(&mut w);
        }
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<Message, WireError> {
        let mut r = WireReader::new(buf);
        let id = r.get_u16()?;
        let flags = r.get_u16()?;
        let qd = r.get_u16()? as usize;
        let an = r.get_u16()? as usize;
        let ns = r.get_u16()? as usize;
        let ar = r.get_u16()? as usize;
        let mut msg = Message {
            header: Header::from_flags(id, flags),
            ..Message::default()
        };
        for _ in 0..qd {
            msg.questions.push(Question::decode(&mut r)?);
        }
        for _ in 0..an {
            msg.answers.push(ResourceRecord::decode(&mut r)?);
        }
        for _ in 0..ns {
            msg.authorities.push(ResourceRecord::decode(&mut r)?);
        }
        for _ in 0..ar {
            msg.additionals.push(ResourceRecord::decode(&mut r)?);
        }
        if !r.is_at_end() {
            return Err(WireError::Invalid("trailing bytes"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RData;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn query_shape() {
        let q = Message::query(0x1234, name("google.com"), RecordType::A);
        assert_eq!(q.header.id, 0x1234);
        assert!(!q.header.response);
        assert!(q.header.recursion_desired);
        assert_eq!(q.questions.len(), 1);
        assert!(q.opt().is_some());
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(7, name("google.com"), RecordType::A);
        let buf = q.encode();
        assert_eq!(Message::decode(&buf).unwrap(), q);
    }

    #[test]
    fn a_query_wire_size_is_realistic() {
        // A google.com A query with EDNS: 12 header + 16 question +
        // 11 OPT = 39 bytes. The paper's measured DoUDP query is 59
        // bytes of IP payload = 51 of DNS + 8 UDP; their client adds
        // a cookie — ours can too via padding, checked elsewhere.
        let q = Message::query(7, name("google.com"), RecordType::A);
        assert_eq!(q.encode().len(), 39);
    }

    #[test]
    fn response_roundtrip() {
        let q = Message::query(9, name("google.com"), RecordType::A);
        let resp = Message::response_to(
            &q,
            vec![ResourceRecord::new(
                name("google.com"),
                300,
                RData::A([8, 8, 8, 8]),
            )],
        );
        let buf = resp.encode();
        let back = Message::decode(&buf).unwrap();
        assert_eq!(back, resp);
        assert!(back.header.response);
        assert!(back.header.recursion_available);
        assert_eq!(back.header.id, 9);
        assert_eq!(back.answers.len(), 1);
    }

    #[test]
    fn response_compresses_answer_names() {
        let q = Message::query(9, name("some.long.domain.example"), RecordType::A);
        let resp = Message::response_to(
            &q,
            vec![ResourceRecord::new(
                name("some.long.domain.example"),
                300,
                RData::A([1, 1, 1, 1]),
            )],
        );
        let buf = resp.encode();
        // The answer's owner name must be a 2-byte pointer to the
        // question name: name(26) would otherwise repeat.
        let uncompressed_estimate = 12 + (26 + 4) + (26 + 14) + 11;
        assert!(buf.len() < uncompressed_estimate);
        assert_eq!(Message::decode(&buf).unwrap(), resp);
    }

    #[test]
    fn error_response() {
        let q = Message::query(3, name("nxdomain.test"), RecordType::A);
        let e = Message::error_response_to(&q, Rcode::NxDomain);
        assert_eq!(e.header.rcode, Rcode::NxDomain);
        assert_eq!(Message::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn badvers_response_carries_extended_rcode_16() {
        let mut q = Message::query(3, name("example.org"), RecordType::A);
        // Bump the requested EDNS version to 1.
        let opt = OptRecord {
            version: 1,
            ..OptRecord::default()
        };
        q.additionals.clear();
        q.additionals.push(opt.to_record());
        assert_eq!(q.edns_version(), Some(1));
        let resp = Message::badvers_response_to(&q);
        let back = Message::decode(&resp.encode()).unwrap();
        assert!(back.header.response);
        assert!(back.answers.is_empty());
        let opt = back.opt().expect("BADVERS carries an OPT");
        // extended rcode = extended_rcode << 4 | header rcode = 16.
        assert_eq!(opt.extended_rcode, 1);
        assert_eq!(back.header.rcode, Rcode::NoError);
        assert_eq!(opt.version, 0, "we answer with the version we speak");
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Message::query(1, name("a.b"), RecordType::A).encode();
        buf.push(0);
        assert_eq!(
            Message::decode(&buf),
            Err(WireError::Invalid("trailing bytes"))
        );
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(Message::decode(&[0; 11]), Err(WireError::Truncated));
    }

    #[test]
    fn count_beyond_content_rejected() {
        let mut buf = Message::query(1, name("a.b"), RecordType::A).encode();
        buf[5] = 9; // claim 9 questions
        assert!(Message::decode(&buf).is_err());
    }

    #[test]
    fn flags_roundtrip_exhaustive_bits() {
        for bits in 0..64u16 {
            let h = Header {
                id: 1,
                response: bits & 1 != 0,
                opcode: Opcode::Query,
                authoritative: bits & 2 != 0,
                truncated: bits & 4 != 0,
                recursion_desired: bits & 8 != 0,
                recursion_available: bits & 16 != 0,
                authentic_data: bits & 32 != 0,
                checking_disabled: false,
                rcode: Rcode::NoError,
            };
            let m = Message {
                header: h.clone(),
                ..Message::default()
            };
            assert_eq!(Message::decode(&m.encode()).unwrap().header, h);
        }
    }

    #[test]
    fn multi_record_message_roundtrip() {
        let mut m = Message::query(1, name("example.org"), RecordType::Txt);
        m.header.response = true;
        m.answers = vec![
            ResourceRecord::new(name("example.org"), 60, RData::Txt(vec![b"hi".to_vec()])),
            ResourceRecord::new(name("example.org"), 60, RData::A([1, 2, 3, 4])),
        ];
        m.authorities = vec![ResourceRecord::new(
            name("example.org"),
            3600,
            RData::Ns(name("ns1.example.org")),
        )];
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }
}
