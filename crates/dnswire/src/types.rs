//! Enumerations of DNS record types, classes, opcodes and rcodes.

/// Resource record type (RFC 1035 §3.2.2 and successors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    A,
    Ns,
    Cname,
    Soa,
    Ptr,
    Mx,
    Txt,
    Aaaa,
    /// EDNS(0) pseudo-record (RFC 6891).
    Opt,
    /// Service binding (RFC 9460); carries ALPN lists, which is how
    /// Cloudflare advertises DoH3 (paper §4).
    Svcb,
    /// HTTPS-specific service binding (RFC 9460).
    Https,
    Unknown(u16),
}

impl RecordType {
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Opt => 41,
            RecordType::Svcb => 64,
            RecordType::Https => 65,
            RecordType::Unknown(v) => v,
        }
    }

    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            41 => RecordType::Opt,
            64 => RecordType::Svcb,
            65 => RecordType::Https,
            other => RecordType::Unknown(other),
        }
    }
}

/// Record class. Only IN is used in practice; the rest exist for codec
/// completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordClass {
    In,
    Ch,
    Hs,
    Any,
    Unknown(u16),
}

impl RecordClass {
    pub fn to_u16(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Ch => 3,
            RecordClass::Hs => 4,
            RecordClass::Any => 255,
            RecordClass::Unknown(v) => v,
        }
    }

    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordClass::In,
            3 => RecordClass::Ch,
            4 => RecordClass::Hs,
            255 => RecordClass::Any,
            other => RecordClass::Unknown(other),
        }
    }
}

/// Query opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    Query,
    Iquery,
    Status,
    Notify,
    Update,
    Unknown(u8),
}

impl Opcode {
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Iquery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Unknown(v) => v & 0x0F,
        }
    }

    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::Iquery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Unknown(other),
        }
    }
}

/// Response code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    NoError,
    FormErr,
    ServFail,
    NxDomain,
    NotImp,
    Refused,
    Unknown(u8),
}

impl Rcode {
    pub fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Unknown(v) => v & 0x0F,
        }
    }

    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Unknown(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_type_roundtrip() {
        for v in 0..70u16 {
            assert_eq!(RecordType::from_u16(v).to_u16(), v);
        }
        assert_eq!(RecordType::from_u16(1), RecordType::A);
        assert_eq!(RecordType::from_u16(28), RecordType::Aaaa);
        assert_eq!(RecordType::from_u16(65), RecordType::Https);
        assert_eq!(RecordType::from_u16(9999), RecordType::Unknown(9999));
    }

    #[test]
    fn class_roundtrip() {
        for v in [1u16, 3, 4, 255, 77] {
            assert_eq!(RecordClass::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn opcode_roundtrip() {
        for v in 0..16u8 {
            assert_eq!(Opcode::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn rcode_roundtrip() {
        for v in 0..16u8 {
            assert_eq!(Rcode::from_u8(v).to_u8(), v);
        }
        assert_eq!(Rcode::from_u8(0), Rcode::NoError);
        assert_eq!(Rcode::from_u8(3), Rcode::NxDomain);
    }
}
