//! Domain names: parsing, formatting, and wire encoding with
//! compression.
//!
//! Names are stored as a sequence of labels in their original case;
//! comparison and compression are case-insensitive per RFC 1035 §2.3.3.
//! Encoding writes compression pointers to earlier occurrences of any
//! suffix; decoding follows pointers with strict backwards-only and
//! loop-count protection.

use crate::wire::{WireError, WireReader, WireWriter};

/// Maximum length of a single label.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum total wire length of a name (including length bytes and the
/// root label).
pub const MAX_NAME_LEN: usize = 255;

/// A fully-qualified domain name, e.g. `google.com.`
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name {
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parse from presentation format (`"www.google.com"`, trailing dot
    /// optional). Empty labels are rejected except for the pure root
    /// `"."` or `""`.
    pub fn parse(s: &str) -> Result<Self, WireError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        for part in s.split('.') {
            if part.is_empty() {
                return Err(WireError::Invalid("empty label"));
            }
            if part.len() > MAX_LABEL_LEN {
                return Err(WireError::NameTooLong);
            }
            labels.push(part.as_bytes().to_vec());
        }
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong);
        }
        Ok(name)
    }

    pub fn labels(&self) -> &[Vec<u8>] {
        &self.labels
    }

    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Uncompressed wire length: one length byte per label + label bytes
    /// + the terminating root byte.
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| 1 + l.len()).sum::<usize>() + 1
    }

    /// Case-insensitive equality per RFC 1035.
    pub fn eq_ignore_case(&self, other: &Name) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(&other.labels)
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    /// The name minus its first label (`www.google.com` -> `google.com`).
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// True if `self` equals `zone` or is beneath it (case-insensitive).
    pub fn is_subdomain_of(&self, zone: &Name) -> bool {
        if zone.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - zone.labels.len();
        self.labels[offset..]
            .iter()
            .zip(&zone.labels)
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    /// Case-normalised key for a suffix starting at label `from`, used
    /// by the compression dictionary.
    fn suffix_key(&self, from: usize) -> Vec<u8> {
        let mut key = Vec::new();
        for label in &self.labels[from..] {
            key.push(label.len() as u8);
            key.extend(label.iter().map(|b| b.to_ascii_lowercase()));
        }
        key
    }

    /// Append the case-normalised (lowercased) uncompressed wire form to
    /// `out`: one length byte per label followed by lowercased label
    /// bytes, no terminating root byte. Two names append the same bytes
    /// iff they are [`eq_ignore_case`](Name::eq_ignore_case)-equal, so
    /// this is the canonical case-insensitive map key for a name.
    pub fn append_lower_wire(&self, out: &mut Vec<u8>) {
        for label in &self.labels {
            out.push(label.len() as u8);
            out.extend(label.iter().map(|b| b.to_ascii_lowercase()));
        }
    }

    /// Encode with compression: at each label boundary, emit a pointer
    /// if this suffix was written before; otherwise write the label and
    /// remember the suffix.
    pub fn encode(&self, w: &mut WireWriter) {
        for i in 0..self.labels.len() {
            let key = self.suffix_key(i);
            if let Some(off) = w.compression_offset(&key) {
                w.put_u16(0xC000 | off);
                return;
            }
            w.remember_name(key, w.len());
            let label = &self.labels[i];
            w.put_u8(label.len() as u8);
            w.put_slice(label);
        }
        w.put_u8(0); // root
    }

    /// Encode without compression (used inside RDATA types where
    /// compression is forbidden, e.g. SVCB targets per RFC 9460).
    pub fn encode_uncompressed(&self, w: &mut WireWriter) {
        for label in &self.labels {
            w.put_u8(label.len() as u8);
            w.put_slice(label);
        }
        w.put_u8(0);
    }

    /// Decode a (possibly compressed) name.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut labels = Vec::new();
        let mut wire_len = 1usize; // terminating root byte
                                   // After following the first pointer, the reader must be restored
                                   // to the position just past the pointer.
        let mut resume: Option<usize> = None;
        // Pointers must strictly decrease to rule out loops.
        let mut last_pointer = usize::MAX;
        loop {
            let len = r.get_u8()?;
            match len {
                0 => break,
                l if l & 0xC0 == 0xC0 => {
                    let lo = r.get_u8()? as usize;
                    let target = (((l & 0x3F) as usize) << 8) | lo;
                    if target >= last_pointer || target >= r.pos() {
                        return Err(WireError::BadPointer);
                    }
                    if resume.is_none() {
                        resume = Some(r.pos());
                    }
                    last_pointer = target;
                    r.seek(target)?;
                }
                l if l & 0xC0 != 0 => return Err(WireError::BadLabelType),
                l => {
                    let label = r.get_slice(l as usize)?.to_vec();
                    wire_len += 1 + label.len();
                    if wire_len > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong);
                    }
                    labels.push(label);
                }
            }
        }
        if let Some(pos) = resume {
            r.seek(pos)?;
        }
        Ok(Name { labels })
    }
}

impl std::fmt::Display for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        for label in &self.labels {
            for &b in label {
                if b.is_ascii_graphic() && b != b'.' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{b:03}")?;
                }
            }
            f.write_str(".")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Name {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

/// A copy-cheap handle to a name interned in a [`NameInterner`].
///
/// Ids are only meaningful against the interner that issued them; they
/// are dense (`0..interner.len()`), assigned in first-intern order, and
/// case-insensitive — `WWW.Example.COM` and `www.example.com` intern to
/// the same id. Hot paths (workload tables, cache keys, in-flight
/// coalescing) compare and hash the 4-byte id instead of walking heap
/// label vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(u32);

impl NameId {
    /// The dense index this id maps to (`0..interner.len()`), usable as
    /// a direct index into caller-side side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A case-insensitive name interner: deduplicates [`Name`]s and issues
/// dense [`NameId`] handles for allocation-free comparison and hashing.
///
/// The canonical spelling stored is the **first** one interned; later
/// interns of case-variants return the same id without replacing it
/// (matching how DNS caches treat 0x20 case randomisation).
#[derive(Debug, Clone, Default)]
pub struct NameInterner {
    names: Vec<Name>,
    /// Lowercased uncompressed wire form -> index into `names`.
    ids: std::collections::HashMap<Vec<u8>, u32>,
}

impl NameInterner {
    pub fn new() -> Self {
        NameInterner::default()
    }

    /// Intern `name`, returning its id — existing if a case-equal name
    /// was interned before, freshly assigned otherwise.
    pub fn intern(&mut self, name: &Name) -> NameId {
        let mut key = Vec::with_capacity(name.wire_len());
        name.append_lower_wire(&mut key);
        if let Some(&id) = self.ids.get(&key) {
            return NameId(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.clone());
        self.ids.insert(key, id);
        NameId(id)
    }

    /// The id of a previously interned name, without interning.
    pub fn get(&self, name: &Name) -> Option<NameId> {
        let mut key = Vec::with_capacity(name.wire_len());
        name.append_lower_wire(&mut key);
        self.ids.get(&key).map(|&id| NameId(id))
    }

    /// The canonical (first-interned) spelling behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different interner and is out of
    /// range here.
    pub fn resolve(&self, id: NameId) -> &Name {
        &self.names[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_one(name: &Name) -> Vec<u8> {
        let mut w = WireWriter::new();
        name.encode(&mut w);
        w.finish()
    }

    #[test]
    fn interner_is_case_insensitive_and_dense() {
        let mut it = NameInterner::new();
        let a = it.intern(&Name::parse("www.Example.COM").unwrap());
        let b = it.intern(&Name::parse("www.example.com").unwrap());
        let c = it.intern(&Name::parse("mail.example.com").unwrap());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(it.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 1);
        // Canonical spelling is the first-interned one.
        assert_eq!(it.resolve(a).to_string(), "www.Example.COM.");
        assert_eq!(it.get(&Name::parse("WWW.EXAMPLE.COM").unwrap()), Some(a));
        assert_eq!(it.get(&Name::parse("other.example").unwrap()), None);
    }

    #[test]
    fn interner_distinguishes_label_boundaries() {
        // "ab.c" and "a.bc" must not collide: the length bytes in the
        // lowercased wire key keep boundaries distinct.
        let mut it = NameInterner::new();
        let a = it.intern(&Name::parse("ab.c").unwrap());
        let b = it.intern(&Name::parse("a.bc").unwrap());
        assert_ne!(a, b);
        // Root interns fine (empty key).
        let r = it.intern(&Name::root());
        assert_eq!(it.resolve(r), &Name::root());
    }

    #[test]
    fn lower_wire_key_matches_case_equality() {
        let a = Name::parse("GoOgle.Com").unwrap();
        let b = Name::parse("google.com").unwrap();
        let (mut ka, mut kb) = (Vec::new(), Vec::new());
        a.append_lower_wire(&mut ka);
        b.append_lower_wire(&mut kb);
        assert_eq!(ka, kb);
        assert_eq!(ka, b"\x06google\x03com".to_vec());
    }

    #[test]
    fn parse_and_display() {
        let n = Name::parse("www.Google.com").unwrap();
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.to_string(), "www.Google.com.");
        assert_eq!(
            Name::parse("google.com.").unwrap().to_string(),
            "google.com."
        );
        assert_eq!(Name::root().to_string(), ".");
        assert_eq!(Name::parse("").unwrap(), Name::root());
        assert_eq!(Name::parse(".").unwrap(), Name::root());
    }

    #[test]
    fn parse_rejects_bad_names() {
        assert!(Name::parse("a..b").is_err());
        assert!(Name::parse(&"x".repeat(64)).is_err());
        // 255-byte total limit: four 63-byte labels = 4*64+1 = 257.
        let long = [&"x".repeat(63)[..]; 4].join(".");
        assert!(Name::parse(&long).is_err());
    }

    #[test]
    fn simple_encode() {
        let n = Name::parse("google.com").unwrap();
        assert_eq!(encode_one(&n), b"\x06google\x03com\x00".to_vec());
        assert_eq!(n.wire_len(), 12);
    }

    #[test]
    fn roundtrip_uncompressed() {
        for s in ["google.com", "a.b.c.d.e.example", "x.y"] {
            let n = Name::parse(s).unwrap();
            let buf = encode_one(&n);
            let mut r = WireReader::new(&buf);
            let m = Name::decode(&mut r).unwrap();
            assert_eq!(n, m);
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn compression_pointer_emitted_and_decoded() {
        let mut w = WireWriter::new();
        let a = Name::parse("www.google.com").unwrap();
        let b = Name::parse("mail.google.com").unwrap();
        a.encode(&mut w);
        let len_after_first = w.len();
        b.encode(&mut w);
        let buf = w.finish();
        // Second name should use a pointer to "google.com" (offset 4).
        assert_eq!(&buf[len_after_first..], b"\x04mail\xC0\x04");
        let mut r = WireReader::new(&buf);
        assert_eq!(Name::decode(&mut r).unwrap(), a);
        assert_eq!(Name::decode(&mut r).unwrap(), b);
        assert!(r.is_at_end());
    }

    #[test]
    fn whole_name_pointer() {
        let mut w = WireWriter::new();
        let a = Name::parse("google.com").unwrap();
        a.encode(&mut w);
        a.encode(&mut w);
        let buf = w.finish();
        assert_eq!(&buf[12..], b"\xC0\x00");
        let mut r = WireReader::new(&buf);
        assert_eq!(Name::decode(&mut r).unwrap(), a);
        assert_eq!(Name::decode(&mut r).unwrap(), a);
    }

    #[test]
    fn compression_is_case_insensitive() {
        let mut w = WireWriter::new();
        Name::parse("GOOGLE.COM").unwrap().encode(&mut w);
        let before = w.len();
        Name::parse("google.com").unwrap().encode(&mut w);
        assert_eq!(w.len() - before, 2, "expected a bare pointer");
    }

    #[test]
    fn pointer_loop_rejected() {
        // A name at offset 0 that points to itself.
        let buf = [0xC0, 0x00];
        let mut r = WireReader::new(&buf);
        assert_eq!(Name::decode(&mut r), Err(WireError::BadPointer));
    }

    #[test]
    fn forward_pointer_rejected() {
        let buf = [0xC0, 0x05, 0, 0, 0, 0x01, b'a', 0x00];
        let mut r = WireReader::new(&buf);
        assert_eq!(Name::decode(&mut r), Err(WireError::BadPointer));
    }

    #[test]
    fn mutual_pointer_loop_rejected() {
        // Two pointers pointing at each other: 0 -> 2, 2 -> 0.
        let buf = [0xC0, 0x02, 0xC0, 0x00];
        let mut r = WireReader::new(&buf);
        r.seek(2).unwrap();
        assert_eq!(Name::decode(&mut r), Err(WireError::BadPointer));
    }

    #[test]
    fn reserved_label_types_rejected() {
        let buf = [0x40, 0x00];
        let mut r = WireReader::new(&buf);
        assert_eq!(Name::decode(&mut r), Err(WireError::BadLabelType));
        let buf = [0x80, 0x00];
        let mut r = WireReader::new(&buf);
        assert_eq!(Name::decode(&mut r), Err(WireError::BadLabelType));
    }

    #[test]
    fn truncated_name_rejected() {
        let mut r = WireReader::new(b"\x06goog");
        assert_eq!(Name::decode(&mut r), Err(WireError::Truncated));
        let mut r = WireReader::new(b"\x03com");
        assert_eq!(Name::decode(&mut r), Err(WireError::Truncated));
    }

    #[test]
    fn eq_ignore_case_and_subdomain() {
        let a = Name::parse("WWW.Google.Com").unwrap();
        let b = Name::parse("www.google.com").unwrap();
        let zone = Name::parse("google.com").unwrap();
        assert!(a.eq_ignore_case(&b));
        assert_ne!(a, b); // exact equality is case-sensitive
        assert!(a.is_subdomain_of(&zone));
        assert!(zone.is_subdomain_of(&zone));
        assert!(!zone.is_subdomain_of(&a));
        assert!(a.is_subdomain_of(&Name::root()));
    }

    #[test]
    fn parent_chain() {
        let n = Name::parse("a.b.c").unwrap();
        let p = n.parent().unwrap();
        assert_eq!(p.to_string(), "b.c.");
        assert_eq!(Name::root().parent(), None);
    }

    #[test]
    fn display_escapes_non_printable() {
        let n = Name {
            labels: vec![vec![0x07, b'.']],
        };
        assert_eq!(n.to_string(), "\\007\\046.");
    }
}
