//! # doqlab-dnswire — DNS wire format from scratch
//!
//! A self-contained implementation of the DNS message format (RFC 1035
//! and friends), used by every DNS transport in the workspace:
//!
//! * [`name`] — domain names with full compression-pointer support on
//!   both encode and decode (pointer loops and forward pointers are
//!   rejected).
//! * [`types`] — record types, classes, opcodes and response codes.
//! * [`record`] — resource records and typed RDATA (A, AAAA, NS, CNAME,
//!   SOA, PTR, MX, TXT, OPT, SVCB/HTTPS).
//! * [`edns`] — EDNS(0) (RFC 6891), including the `edns-tcp-keepalive`
//!   option (RFC 7828) and the Padding option (RFC 7830), both of which
//!   the paper checks resolver support for.
//! * [`message`] — the full message codec.
//! * [`framing`] — the two-byte length prefix used by DNS over stream
//!   transports (RFC 1035 §4.2.2) and by DoQ's `doq-i03`+ stream
//!   mapping.
//!
//! The codec is strict on decode (all errors are reported, nothing
//! panics on malformed input) and deterministic on encode, which the
//! byte-accounting experiments (Table 1) rely on.

pub mod edns;
pub mod framing;
pub mod message;
pub mod name;
pub mod record;
pub mod types;
pub mod wire;

pub use edns::{EdnsOption, OptRecord};
pub use framing::LengthPrefixedReader;
pub use message::{Header, Message, Question};
pub use name::{Name, NameId, NameInterner};
pub use record::{RData, ResourceRecord, SvcParam};
pub use types::{Opcode, Rcode, RecordClass, RecordType};
pub use wire::{WireError, WireReader, WireWriter};

/// Errors produced by this crate.
pub type Result<T> = std::result::Result<T, WireError>;
