//! Property-based tests: arbitrary messages roundtrip through the
//! codec, and arbitrary bytes never panic the decoder.

use doqlab_dnswire::*;
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9-]{1,20}").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| Name::parse(&labels.join(".")).unwrap())
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(RData::A),
        any::<[u8; 16]>().prop_map(RData::Aaaa),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..4)
            .prop_map(RData::Txt),
        (arb_name(), arb_name(), any::<u32>(), any::<u32>()).prop_map(
            |(mname, rname, serial, refresh)| RData::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry: 300,
                expire: 600,
                minimum: 60,
            }
        ),
        (any::<u16>(), arb_name()).prop_map(|(priority, target)| RData::Svcb {
            priority,
            target,
            params: vec![
                SvcParam::Alpn(vec![b"doq".to_vec(), b"h3".to_vec()]),
                SvcParam::Port(853),
            ],
        }),
    ]
}

fn arb_record() -> impl Strategy<Value = ResourceRecord> {
    (arb_name(), any::<u32>(), arb_rdata())
        .prop_map(|(name, ttl, rdata)| ResourceRecord::new(name, ttl, rdata))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        proptest::collection::vec(arb_record(), 0..6),
        proptest::collection::vec(arb_record(), 0..3),
        any::<bool>(),
    )
        .prop_map(|(id, qname, answers, authorities, response)| {
            let mut m = Message::query(id, qname, RecordType::A);
            m.header.response = response;
            m.answers = answers;
            m.authorities = authorities;
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_roundtrips(msg in arb_message()) {
        let wire = msg.encode();
        let back = Message::decode(&wire).expect("own encoding must decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn reencoding_decoded_message_is_stable(msg in arb_message()) {
        // encode -> decode -> encode must be a fixed point: compression
        // decisions depend only on message content.
        let wire = msg.encode();
        let back = Message::decode(&wire).unwrap();
        prop_assert_eq!(back.encode(), wire);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_message(
        msg in arb_message(),
        flip_at in any::<usize>(),
        new_byte in any::<u8>(),
    ) {
        let mut wire = msg.encode();
        if !wire.is_empty() {
            let at = flip_at % wire.len();
            wire[at] = new_byte;
        }
        let _ = Message::decode(&wire);
    }

    #[test]
    fn name_parse_display_roundtrip(labels in proptest::collection::vec(arb_label(), 1..5)) {
        let s = labels.join(".");
        let n = Name::parse(&s).unwrap();
        let displayed = n.to_string();
        let reparsed = Name::parse(&displayed).unwrap();
        prop_assert_eq!(n, reparsed);
    }

    #[test]
    fn framing_roundtrips_under_any_chunking(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..100), 1..5),
        chunk in 1usize..17,
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend(framing::frame(m));
        }
        let mut reader = LengthPrefixedReader::new();
        let mut out = Vec::new();
        for c in wire.chunks(chunk) {
            reader.push(c);
            while let Some(m) = reader.next_message() {
                out.push(m);
            }
        }
        prop_assert_eq!(out, msgs);
    }
}
