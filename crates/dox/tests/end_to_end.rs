//! End-to-end tests: every DNS transport against a full
//! [`DnsServerSet`] over the discrete-event simulator — the same wiring
//! the measurement harness uses.

use doqlab_dnswire::{Message, Name, OptRecord, RData, RecordType, ResourceRecord};
use doqlab_dox::*;
use doqlab_simnet::path::FixedPathModel;
use doqlab_simnet::*;
use std::any::Any;

const ONE_WAY_MS: u64 = 25;

fn client_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 1)
}

fn resolver_ip() -> Ipv4Addr {
    Ipv4Addr::new(192, 0, 2, 1)
}

/// A resolver host that answers every query instantly from "cache".
struct EchoResolver {
    set: DnsServerSet,
}

impl Host for EchoResolver {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let mut out = Vec::new();
        self.set.on_packet(ctx.now, &pkt, &mut out);
        self.answer(ctx.now, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = Vec::new();
        self.set.poll(ctx.now, &mut out);
        self.answer(ctx.now, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        self.set.next_timeout()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl EchoResolver {
    fn answer(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        let queries = self.set.take_queries();
        for ev in queries {
            let answer = ResourceRecord::new(
                ev.query.question().unwrap().name.clone(),
                300,
                RData::A([93, 184, 216, 34]),
            );
            let resp = Message::response_to(&ev.query, vec![answer]);
            self.set.respond(now, ev.key, &resp);
        }
        self.set.poll(now, out);
    }
}

fn build_sim(server_cfg: ServerConfig) -> (Simulator, HostId, HostId) {
    let mut sim = Simulator::new(
        42,
        Box::new(FixedPathModel::new(Duration::from_millis(ONE_WAY_MS))),
    );
    sim.enable_trace();
    let resolver = EchoResolver {
        set: DnsServerSet::new(server_cfg),
    };
    let resolver_id = sim.add_host(Box::new(resolver), &[resolver_ip()]);
    (sim, resolver_id, 0)
}

fn query() -> Message {
    Message::query(0x1234, Name::parse("google.com").unwrap(), RecordType::A)
}

/// Run one query over `transport`; returns (handshake ms, resolve-at ms,
/// captured session) and asserts a valid response arrived.
fn run_query(
    transport: DnsTransport,
    server_cfg: ServerConfig,
    client_cfg: ClientConfig,
) -> (Option<f64>, f64, SessionState) {
    let (mut sim, _resolver_id, _) = build_sim(server_cfg);
    let local = SocketAddr::new(client_ip(), 40_000);
    let remote = SocketAddr::new(resolver_ip(), transport.port());
    let client = DnsClientHost::new(transport, local, remote, &client_cfg);
    let cid = sim.add_host(Box::new(client), &[client_ip()]);
    sim.with_host::<DnsClientHost, _>(cid, |c, ctx| c.start_with_query(ctx, &query()));
    sim.run_until(SimTime::from_secs(20));
    let client = sim.host_mut::<DnsClientHost>(cid);
    assert!(!client.responses.is_empty(), "{transport}: no response");
    let (at, msg) = client.responses[0].clone();
    assert_eq!(msg.header.id, 0x1234, "{transport}: id mismatch");
    assert_eq!(msg.answers.len(), 1);
    let hs = client.handshake_time().map(|d| d.as_secs_f64() * 1000.0);
    let session = client.session_state();
    (hs, at.as_millis_f64(), session)
}

#[test]
fn doudp_resolves_in_one_rtt() {
    let (hs, at, session) = run_query(
        DnsTransport::DoUdp,
        ServerConfig::default(),
        ClientConfig::default(),
    );
    assert_eq!(hs, Some(0.0), "UDP has no handshake");
    assert!((at - 50.0).abs() < 1.0, "resolve at {at} ms");
    assert!(session.is_empty());
}

#[test]
fn dotcp_takes_two_rtts_total() {
    let (hs, at, _) = run_query(
        DnsTransport::DoTcp,
        ServerConfig::default(),
        ClientConfig::default(),
    );
    // Handshake 1 RTT, then query/response 1 RTT.
    assert!((hs.unwrap() - 50.0).abs() < 1.0, "handshake {hs:?}");
    assert!((at - 100.0).abs() < 1.0, "resolve at {at}");
}

#[test]
fn dot_full_handshake_is_two_rtts_after_tcp() {
    let (hs, at, session) = run_query(
        DnsTransport::DoT,
        ServerConfig::default(),
        ClientConfig::default(),
    );
    // TCP 1 RTT + TLS1.3 1 RTT = 2 RTT handshake; query rides with Fin.
    assert!((hs.unwrap() - 100.0).abs() < 1.0, "handshake {hs:?}");
    assert!((at - 150.0).abs() < 1.0, "resolve at {at}");
    assert!(
        session.tls_ticket.is_some(),
        "ticket captured for resumption"
    );
}

#[test]
fn dot_resumption_still_two_rtts_but_no_cert() {
    let (_, _, session) = run_query(
        DnsTransport::DoT,
        ServerConfig::default(),
        ClientConfig::default(),
    );
    let cfg = ClientConfig {
        session,
        ..ClientConfig::default()
    };
    let (hs, at, _) = run_query(DnsTransport::DoT, ServerConfig::default(), cfg);
    assert!((hs.unwrap() - 100.0).abs() < 1.0);
    assert!((at - 150.0).abs() < 1.0);
}

#[test]
fn doh_matches_dot_round_trips() {
    let (hs, at, session) = run_query(
        DnsTransport::DoH,
        ServerConfig::default(),
        ClientConfig::default(),
    );
    assert!((hs.unwrap() - 100.0).abs() < 1.0, "handshake {hs:?}");
    assert!((at - 150.0).abs() < 1.0, "resolve at {at}");
    assert!(session.tls_ticket.is_some());
}

#[test]
fn doq_handshake_is_one_rtt_with_resumption() {
    // First connection: full handshake, captures ticket+token+version.
    let (hs1, _, session) = run_query(
        DnsTransport::DoQ,
        ServerConfig::default(),
        ClientConfig::default(),
    );
    assert!(
        (hs1.unwrap() - 50.0).abs() < 1.0,
        "fresh DoQ handshake {hs1:?}"
    );
    assert!(session.tls_ticket.is_some());
    assert!(session.quic_token.is_some());
    assert_eq!(session.quic_version, Some(doqlab_netstack::quic::QUIC_V1));

    // Resumed: still 1 RTT handshake, query+response 1 more RTT.
    let cfg = ClientConfig {
        session,
        ..ClientConfig::default()
    };
    let (hs2, at, _) = run_query(DnsTransport::DoQ, ServerConfig::default(), cfg);
    assert!(
        (hs2.unwrap() - 50.0).abs() < 1.0,
        "resumed DoQ handshake {hs2:?}"
    );
    assert!((at - 100.0).abs() < 1.0, "resolve at {at}");
}

#[test]
fn doq_total_beats_dot_and_doh_by_one_rtt() {
    let (_, doq_at, _) = run_query(
        DnsTransport::DoQ,
        ServerConfig::default(),
        ClientConfig::default(),
    );
    let (_, dot_at, _) = run_query(
        DnsTransport::DoT,
        ServerConfig::default(),
        ClientConfig::default(),
    );
    let (_, doh_at, _) = run_query(
        DnsTransport::DoH,
        ServerConfig::default(),
        ClientConfig::default(),
    );
    assert!(
        (dot_at - doq_at - 50.0).abs() < 1.0,
        "DoT {dot_at} vs DoQ {doq_at}"
    );
    assert!(
        (doh_at - doq_at - 50.0).abs() < 1.0,
        "DoH {doh_at} vs DoQ {doq_at}"
    );
}

#[test]
fn doq_zero_rtt_resolves_in_one_rtt_total() {
    // Against a 0-RTT-enabled resolver (the paper's future-work case).
    let server = ServerConfig {
        enable_0rtt: true,
        ..ServerConfig::default()
    };
    let (_, _, session) = run_query(DnsTransport::DoQ, server.clone(), ClientConfig::default());
    assert!(session.tls_ticket.as_ref().unwrap().allows_early_data);
    let cfg = ClientConfig {
        session,
        enable_0rtt: true,
        ..ClientConfig::default()
    };
    let (_, at, _) = run_query(DnsTransport::DoQ, server, cfg);
    // Query goes out with the first flight: resolve in 1 RTT, like DoUDP.
    assert!((at - 50.0).abs() < 1.0, "0-RTT resolve at {at}");
}

#[test]
fn dot_and_doh_zero_rtt_resolve_one_rtt_sooner() {
    // TLS-over-TCP 0-RTT: the framed query (DoT) / the H2 request (DoH)
    // ride the ClientHello as early data, the server answers from
    // `read_early` in the same flight as its handshake — resolve drops
    // from 150 ms (3 RTT) to 100 ms (2 RTT).
    let server = ServerConfig {
        enable_0rtt: true,
        ..ServerConfig::default()
    };
    for transport in [DnsTransport::DoT, DnsTransport::DoH] {
        let (_, _, session) = run_query(transport, server.clone(), ClientConfig::default());
        assert!(
            session.tls_ticket.as_ref().unwrap().allows_early_data,
            "{transport}: 0-RTT server issues early-data tickets"
        );
        let cfg = ClientConfig {
            session,
            enable_0rtt: true,
            ..ClientConfig::default()
        };
        let (_, at, _) = run_query(transport, server.clone(), cfg);
        assert!(
            (at - 100.0).abs() < 1.0,
            "{transport}: 0-RTT resolve at {at}"
        );
    }
}

#[test]
fn zero_rtt_reject_replays_and_never_fails() {
    // An early-data ticket presented to a resolver that no longer
    // accepts 0-RTT: the server rejects, the client replays the early
    // data after the handshake, and the query completes at the plain
    // resumed-1-RTT timing — it must never be lost.
    let zrtt_server = ServerConfig {
        enable_0rtt: true,
        ..ServerConfig::default()
    };
    for (transport, expect_at) in [
        (DnsTransport::DoQ, 100.0),
        (DnsTransport::DoT, 150.0),
        (DnsTransport::DoH, 150.0),
    ] {
        let (_, _, session) = run_query(transport, zrtt_server.clone(), ClientConfig::default());
        assert!(session.tls_ticket.as_ref().unwrap().allows_early_data);
        let cfg = ClientConfig {
            session,
            enable_0rtt: true,
            ..ClientConfig::default()
        };
        // run_query asserts a valid response arrived.
        let (_, at, _) = run_query(transport, ServerConfig::default(), cfg);
        assert!(
            (at - expect_at).abs() < 1.0,
            "{transport}: rejected 0-RTT resolves at {at}, want {expect_at}"
        );
    }
}

#[test]
fn tls12_tickets_never_advertise_early_data() {
    // RFC 8446 §4.2.10: early data is 1.3-only. A 0-RTT-enabled server
    // that negotiated 1.2 must not hand out tickets claiming early
    // data — a client trusting one would send 0-RTT records the 1.2
    // server silently drops.
    use doqlab_netstack::tls::TlsVersion;
    let server = ServerConfig {
        enable_0rtt: true,
        tls_versions: vec![TlsVersion::Tls12],
        ..ServerConfig::default()
    };
    let (_, _, session) = run_query(DnsTransport::DoT, server.clone(), ClientConfig::default());
    let ticket = session.tls_ticket.as_ref().expect("1.2 session ticket");
    assert!(!ticket.allows_early_data, "1.2 ticket advertises 0-RTT");
    // And the resumed connection still answers at 1.2 timing.
    let cfg = ClientConfig {
        session,
        enable_0rtt: true,
        ..ClientConfig::default()
    };
    let (_, at, _) = run_query(DnsTransport::DoT, server, cfg);
    assert!((at - 150.0).abs() < 1.0, "1.2 resumption resolves at {at}");
}

#[test]
fn tfo_dotcp_resolves_in_one_rtt_total() {
    // TCP Fast Open with a cached cookie: the query rides the SYN and
    // the server's answer rides the SYN-ACK flight — DoTCP at DoUDP
    // speed (RFC 7413's motivating case).
    let server = ServerConfig {
        enable_tfo: true,
        ..ServerConfig::default()
    };
    let tfo_client = ClientConfig {
        enable_tfo: true,
        ..ClientConfig::default()
    };
    // First connection requests and caches the cookie (still 2 RTT).
    let (_, at1, session) = run_query(DnsTransport::DoTcp, server.clone(), tfo_client.clone());
    assert!((at1 - 100.0).abs() < 1.0, "cookie-request resolve at {at1}");
    assert!(session.tfo_cookie.is_some(), "cookie cached");
    // Second connection: SYN carries the query, SYN-ACK the answer.
    let cfg = ClientConfig {
        session,
        ..tfo_client
    };
    let (_, at2, _) = run_query(DnsTransport::DoTcp, server, cfg);
    assert!((at2 - 50.0).abs() < 1.0, "TFO resolve at {at2}");
}

#[test]
fn doq_works_with_both_stream_mappings() {
    // doq-i02 (bare message, the most common deployment) and doq-i03 /
    // RFC 9250 (2-byte length prefix) resolvers both answer.
    for alpns in [
        vec![DoqAlpn::Draft(2)],
        vec![DoqAlpn::Draft(3)],
        vec![DoqAlpn::Rfc9250],
        vec![DoqAlpn::Draft(0)],
    ] {
        let server = ServerConfig {
            doq_alpns: alpns.clone(),
            ..ServerConfig::default()
        };
        let (_, at, _) = run_query(DnsTransport::DoQ, server, ClientConfig::default());
        assert!((at - 100.0).abs() < 1.0, "{alpns:?}: resolve at {at}");
    }
}

/// A query asking for EDNS version 1 (we implement version 0).
fn v1_query() -> Message {
    let mut q = query();
    q.additionals.clear();
    q.additionals.push(
        OptRecord {
            version: 1,
            ..OptRecord::default()
        }
        .to_record(),
    );
    q
}

#[test]
fn edns_version_above_zero_gets_badvers_not_an_answer() {
    // RFC 6891 §6.1.3, on every transport: the server answers BADVERS
    // itself; the query never reaches the resolver (which would have
    // answered with a record — EchoResolver answers everything).
    for transport in DnsTransport::ALL {
        let (mut sim, _r, _) = build_sim(ServerConfig::default());
        let local = SocketAddr::new(client_ip(), 40_000);
        let remote = SocketAddr::new(resolver_ip(), transport.port());
        let client = DnsClientHost::new(transport, local, remote, &ClientConfig::default());
        let cid = sim.add_host(Box::new(client), &[client_ip()]);
        sim.with_host::<DnsClientHost, _>(cid, |c, ctx| c.start_with_query(ctx, &v1_query()));
        sim.run_until(SimTime::from_secs(20));
        let client = sim.host_mut::<DnsClientHost>(cid);
        assert!(!client.responses.is_empty(), "{transport}: no BADVERS");
        let (_, msg) = client.responses[0].clone();
        assert!(msg.answers.is_empty(), "{transport}: answered a v1 query");
        let opt = msg.opt().expect("BADVERS carries an OPT");
        assert_eq!(opt.extended_rcode, 1, "{transport}: extended rcode 16");
    }
}

#[test]
fn edns_version_zero_is_answered_normally() {
    // The other direction: a plain version-0 query (the default built
    // by Message::query) still gets a real answer, not BADVERS.
    let (_, _, _) = run_query(
        DnsTransport::DoUdp,
        ServerConfig::default(),
        ClientConfig::default(),
    );
}

#[test]
fn badvers_survives_the_keepalive_opt_merge_on_dotcp() {
    // A keepalive-advertising server must merge its edns-tcp-keepalive
    // option into the BADVERS OPT, not clobber the extended rcode.
    let server = ServerConfig {
        tcp_keepalive: true,
        close_tcp_after_response: false,
        ..ServerConfig::default()
    };
    let (mut sim, _r, _) = build_sim(server);
    let local = SocketAddr::new(client_ip(), 40_000);
    let remote = SocketAddr::new(resolver_ip(), DnsTransport::DoTcp.port());
    let client = DnsClientHost::new(DnsTransport::DoTcp, local, remote, &ClientConfig::default());
    let cid = sim.add_host(Box::new(client), &[client_ip()]);
    sim.with_host::<DnsClientHost, _>(cid, |c, ctx| c.start_with_query(ctx, &v1_query()));
    sim.run_until(SimTime::from_secs(20));
    let client = sim.host_mut::<DnsClientHost>(cid);
    assert!(!client.responses.is_empty());
    let (_, msg) = client.responses[0].clone();
    let opt = msg.opt().unwrap();
    assert_eq!(opt.extended_rcode, 1, "BADVERS preserved");
    assert!(opt.tcp_keepalive().is_some(), "keepalive merged in");
}

#[test]
fn unsupported_protocol_gets_no_answer() {
    let server = ServerConfig {
        supports_udp: false,
        ..ServerConfig::default()
    };
    let (mut sim, _r, _) = build_sim(server);
    let local = SocketAddr::new(client_ip(), 40_000);
    let remote = SocketAddr::new(resolver_ip(), 53);
    let client = DnsClientHost::new(DnsTransport::DoUdp, local, remote, &ClientConfig::default());
    let cid = sim.add_host(Box::new(client), &[client_ip()]);
    sim.with_host::<DnsClientHost, _>(cid, |c, ctx| c.start_with_query(ctx, &query()));
    sim.run_until(SimTime::from_secs(30));
    let client = sim.host_mut::<DnsClientHost>(cid);
    assert!(client.responses.is_empty());
    assert!(client.conn.failed(), "retries exhausted");
}

#[test]
fn tls12_resolver_adds_a_round_trip_for_dot() {
    use doqlab_netstack::tls::TlsVersion;
    let server = ServerConfig {
        tls_versions: vec![TlsVersion::Tls12],
        ..ServerConfig::default()
    };
    let (hs, at, _) = run_query(DnsTransport::DoT, server, ClientConfig::default());
    // TCP 1 RTT + TLS1.2 2 RTT = 3 RTT handshake.
    assert!((hs.unwrap() - 150.0).abs() < 1.0, "handshake {hs:?}");
    assert!((at - 200.0).abs() < 1.0, "resolve at {at}");
}

#[test]
fn table1_size_shape_holds_per_transport() {
    // Directional IP-payload byte totals per protocol: DoUDP smallest,
    // DoQ handshake heaviest (padded Initials), DoH above DoT.
    let mut totals = std::collections::HashMap::new();
    for transport in DnsTransport::ALL {
        let (mut sim, _r, _) = build_sim(ServerConfig::default());
        let local = SocketAddr::new(client_ip(), 40_000);
        let remote = SocketAddr::new(resolver_ip(), transport.port());
        let client = DnsClientHost::new(transport, local, remote, &ClientConfig::default());
        let cid = sim.add_host(Box::new(client), &[client_ip()]);
        sim.with_host::<DnsClientHost, _>(cid, |c, ctx| c.start_with_query(ctx, &query()));
        sim.run_until(SimTime::from_secs(2));
        assert!(
            !sim.host::<DnsClientHost>(cid).responses.is_empty(),
            "{transport}"
        );
        let trace = sim.trace().unwrap();
        let c2r = trace.total_bytes(local, remote);
        let r2c = trace.total_bytes(remote, local);
        totals.insert(transport, c2r + r2c);
    }
    assert!(totals[&DnsTransport::DoUdp] < 200);
    assert!(totals[&DnsTransport::DoTcp] < 600);
    assert!(
        totals[&DnsTransport::DoQ] > totals[&DnsTransport::DoH],
        "DoQ {} vs DoH {}",
        totals[&DnsTransport::DoQ],
        totals[&DnsTransport::DoH]
    );
    assert!(
        totals[&DnsTransport::DoH] > totals[&DnsTransport::DoT],
        "DoH {} vs DoT {}",
        totals[&DnsTransport::DoH],
        totals[&DnsTransport::DoT]
    );
}
