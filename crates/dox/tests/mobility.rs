//! Mobility and failover: client hosts crossing a wifi→cellular address
//! change mid-query, and the cross-transport happy-eyeballs ladder
//! ([`FailoverPolicy`]) racing fallback transports against a primary
//! that cannot deliver.

use doqlab_dnswire::{Message, Name, RData, RecordType, ResourceRecord};
use doqlab_dox::*;
use doqlab_simnet::path::FixedPathModel;
use doqlab_simnet::*;
use std::any::Any;

const ONE_WAY_MS: u64 = 25;

fn wifi_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 1)
}

fn cellular_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 99, 0, 1)
}

fn resolver_ip() -> Ipv4Addr {
    Ipv4Addr::new(192, 0, 2, 1)
}

/// A resolver host answering every query instantly from "cache".
struct EchoResolver {
    set: DnsServerSet,
}

impl Host for EchoResolver {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let mut out = Vec::new();
        self.set.on_packet(ctx.now, &pkt, &mut out);
        self.answer(ctx.now, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = Vec::new();
        self.set.poll(ctx.now, &mut out);
        self.answer(ctx.now, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        self.set.next_timeout()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl EchoResolver {
    fn answer(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        for ev in self.set.take_queries() {
            let answer = ResourceRecord::new(
                ev.query.question().unwrap().name.clone(),
                300,
                RData::A([93, 184, 216, 34]),
            );
            let resp = Message::response_to(&ev.query, vec![answer]);
            self.set.respond(now, ev.key, &resp);
        }
        self.set.poll(now, out);
    }
}

fn query() -> Message {
    Message::query(0x1234, Name::parse("google.com").unwrap(), RecordType::A)
}

/// Simulator + resolver + one client host on the wifi address.
fn setup(
    transport: DnsTransport,
    server_cfg: ServerConfig,
    client_cfg: &ClientConfig,
) -> (Simulator, HostId) {
    let mut sim = Simulator::new(
        7,
        Box::new(FixedPathModel::new(Duration::from_millis(ONE_WAY_MS))),
    );
    let resolver = EchoResolver {
        set: DnsServerSet::new(server_cfg),
    };
    sim.add_host(Box::new(resolver), &[resolver_ip()]);
    let local = SocketAddr::new(wifi_ip(), 40_000);
    let remote = SocketAddr::new(resolver_ip(), transport.port());
    let client = DnsClientHost::new(transport, local, remote, client_cfg);
    let cid = sim.add_host(Box::new(client), &[wifi_ip()]);
    sim.with_host::<DnsClientHost, _>(cid, |c, ctx| c.start_with_query(ctx, &query()));
    (sim, cid)
}

/// Move the client from wifi to cellular: simulator address map first,
/// then the endpoint itself.
fn rebind(sim: &mut Simulator, cid: HostId, profile: PathProfile) {
    sim.rebind_host(cid, wifi_ip(), cellular_ip(), profile);
    sim.with_host::<DnsClientHost, _>(cid, |c, ctx| c.rebind_local(ctx, cellular_ip()));
}

#[test]
fn doq_survives_mid_query_rebind() {
    let (mut sim, cid) = setup(
        DnsTransport::DoQ,
        ServerConfig::default(),
        &ClientConfig::default(),
    );
    // Handshake completes at 50 ms, query goes out, answer lands at
    // 100 ms. Rebind at 60 ms: the answer is already in flight to the
    // wifi address and is lost with it.
    sim.run_until(SimTime::from_millis(60));
    rebind(&mut sim, cid, PathProfile::default());
    sim.run_until(SimTime::from_secs(10));
    let c = sim.host_mut::<DnsClientHost>(cid);
    assert!(
        !c.responses.is_empty(),
        "DoQ must migrate and recover the lost answer"
    );
    assert_eq!(c.responses[0].1.header.id, 0x1234);
    assert!(c.failure().is_none());
    assert_eq!(c.reconnects(), 0, "migration, not reconnection");
}

#[test]
fn doq_survives_rebind_onto_slower_path() {
    let (mut sim, cid) = setup(
        DnsTransport::DoQ,
        ServerConfig::default(),
        &ClientConfig::default(),
    );
    sim.run_until(SimTime::from_millis(60));
    rebind(
        &mut sim,
        cid,
        PathProfile {
            extra_delay: Duration::from_millis(30),
            loss: None,
        },
    );
    sim.run_until(SimTime::from_secs(10));
    let c = sim.host_mut::<DnsClientHost>(cid);
    assert!(!c.responses.is_empty(), "survives onto the cellular path");
    assert!(c.failure().is_none());
}

#[test]
fn doudp_and_dot_are_stranded_by_rebind() {
    for transport in [DnsTransport::DoUdp, DnsTransport::DoT] {
        let cfg = ClientConfig {
            query_deadline: Some(Duration::from_secs(8)),
            ..ClientConfig::default()
        };
        let (mut sim, cid) = setup(transport, ServerConfig::default(), &cfg);
        // For DoT the handshake is done at 100 ms and the answer lands
        // at 150 ms; rebind at 110 ms catches it in flight. For DoUDP
        // the answer would land at 50 ms, so rebind at 40 ms.
        let at = if transport == DnsTransport::DoUdp {
            40
        } else {
            110
        };
        sim.run_until(SimTime::from_millis(at));
        rebind(&mut sim, cid, PathProfile::default());
        sim.run_until(SimTime::from_secs(20));
        let c = sim.host_mut::<DnsClientHost>(cid);
        assert!(
            c.responses.is_empty(),
            "{transport}: socket is stranded on the wifi address"
        );
        assert!(c.failure().is_some(), "{transport}: classified as failed");
    }
}

#[test]
fn failover_ladder_rescues_a_stranded_primary() {
    // DoT primary, stranded by the rebind; the ladder's DoUDP rung
    // dials from the *new* address at the stagger and wins.
    let cfg = ClientConfig {
        failover: Some(FailoverPolicy {
            ladder: vec![DnsTransport::DoUdp],
            stagger: std::time::Duration::from_millis(300),
        }),
        ..ClientConfig::default()
    };
    let (mut sim, cid) = setup(DnsTransport::DoT, ServerConfig::default(), &cfg);
    sim.run_until(SimTime::from_millis(110));
    rebind(&mut sim, cid, PathProfile::default());
    sim.run_until(SimTime::from_secs(20));
    let c = sim.host_mut::<DnsClientHost>(cid);
    assert!(!c.responses.is_empty(), "the fallback rung must answer");
    assert_eq!(c.winner(), Some(DnsTransport::DoUdp));
    assert_eq!(c.rungs_dialed(), 1);
    assert!(
        c.wasted_bytes() > 0,
        "the stranded DoT connection's bytes are waste"
    );
    assert!(c.failure().is_none());
    // DoUDP resolves one RTT after the 300 ms stagger.
    let at = c.responses[0].0.as_millis_f64();
    assert!((at - 350.0).abs() < 1.0, "rescued at {at} ms");
}

#[test]
fn failover_stays_quiet_when_the_primary_wins() {
    let cfg = ClientConfig {
        failover: Some(FailoverPolicy::doq_ladder(
            std::time::Duration::from_millis(500),
        )),
        ..ClientConfig::default()
    };
    let (mut sim, cid) = setup(DnsTransport::DoQ, ServerConfig::default(), &cfg);
    sim.run_until(SimTime::from_secs(5));
    let c = sim.host_mut::<DnsClientHost>(cid);
    assert!(!c.responses.is_empty());
    assert_eq!(c.winner(), Some(DnsTransport::DoQ));
    assert_eq!(c.rungs_dialed(), 0, "no rung dialed before the stagger");
    assert_eq!(c.wasted_bytes(), 0);
}

#[test]
fn failover_races_past_an_unsupported_primary() {
    // The resolver speaks no DoQ: the primary's handshake can never
    // complete, and the DoT rung dialed at the stagger answers.
    let server = ServerConfig {
        supports_doq: false,
        ..ServerConfig::default()
    };
    let cfg = ClientConfig {
        failover: Some(FailoverPolicy::doq_ladder(
            std::time::Duration::from_millis(250),
        )),
        ..ClientConfig::default()
    };
    let (mut sim, cid) = setup(DnsTransport::DoQ, server, &cfg);
    sim.run_until(SimTime::from_secs(20));
    let c = sim.host_mut::<DnsClientHost>(cid);
    assert!(!c.responses.is_empty(), "a fallback rung must answer");
    assert_eq!(c.winner(), Some(DnsTransport::DoT));
    assert!(c.wasted_bytes() > 0, "the DoQ attempt's bytes are waste");
    assert!(c.failure().is_none());
    // DoT from a standing start: 250 ms stagger + 2 RTT handshake +
    // 1 RTT query.
    let at = c.responses[0].0.as_millis_f64();
    assert!((at - 400.0).abs() < 1.0, "rescued at {at} ms");
}

#[test]
fn exhausted_ladder_reports_the_primary_failure() {
    // Nothing at all listens: the primary and every rung fail, and the
    // host reports a terminal failure instead of hanging.
    let server = ServerConfig {
        supports_udp: false,
        supports_dot: false,
        supports_doq: false,
        ..ServerConfig::default()
    };
    let cfg = ClientConfig {
        failover: Some(FailoverPolicy::doq_ladder(
            std::time::Duration::from_millis(250),
        )),
        query_deadline: Some(Duration::from_secs(30)),
        ..ClientConfig::default()
    };
    let (mut sim, cid) = setup(DnsTransport::DoQ, server, &cfg);
    sim.run_until(SimTime::from_secs(120));
    let c = sim.host_mut::<DnsClientHost>(cid);
    assert!(c.responses.is_empty());
    assert!(c.failure().is_some(), "the race must reach a verdict");
    assert_eq!(c.winner(), None);
    assert_eq!(c.rungs_dialed(), 2, "every rung was tried");
    assert!(c.wasted_bytes() > 0, "everything sent was waste");
}
