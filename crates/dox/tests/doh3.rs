//! End-to-end DoH3 tests (§4 future work): DNS over HTTP/3 against the
//! full server set, compared with DoQ and DoH on the same topology.

use doqlab_dnswire::{Message, Name, RData, RecordType, ResourceRecord};
use doqlab_dox::server::ConnKey;
use doqlab_dox::*;
use doqlab_simnet::path::FixedPathModel;
use doqlab_simnet::*;
use std::any::Any;

fn client_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 1)
}

fn resolver_ip() -> Ipv4Addr {
    Ipv4Addr::new(192, 0, 2, 1)
}

struct EchoResolver {
    set: DnsServerSet,
}

impl EchoResolver {
    fn answer(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        for ev in self.set.take_queries() {
            let answer = ResourceRecord::new(
                ev.query.question().unwrap().name.clone(),
                300,
                RData::A([9, 9, 9, 9]),
            );
            let resp = Message::response_to(&ev.query, vec![answer]);
            self.set.respond(now, ev.key, &resp);
        }
        self.set.poll(now, out);
    }
}

impl Host for EchoResolver {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let mut out = Vec::new();
        self.set.on_packet(ctx.now, &pkt, &mut out);
        self.answer(ctx.now, &mut out);
        for p in out {
            ctx.send(p);
        }
    }
    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = Vec::new();
        self.set.poll(ctx.now, &mut out);
        self.answer(ctx.now, &mut out);
        for p in out {
            ctx.send(p);
        }
    }
    fn next_wakeup(&self) -> Option<SimTime> {
        self.set.next_timeout()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn run_query(
    transport: DnsTransport,
    server_cfg: ServerConfig,
    client_cfg: ClientConfig,
) -> (Option<f64>, f64, SessionState, usize) {
    let mut sim = Simulator::new(11, Box::new(FixedPathModel::new(Duration::from_millis(25))));
    sim.enable_trace();
    let resolver = EchoResolver {
        set: DnsServerSet::new(server_cfg),
    };
    sim.add_host(Box::new(resolver), &[resolver_ip()]);
    let local = SocketAddr::new(client_ip(), 40_000);
    let remote = SocketAddr::new(resolver_ip(), transport.port());
    let client = DnsClientHost::new(transport, local, remote, &client_cfg);
    let cid = sim.add_host(Box::new(client), &[client_ip()]);
    let q = Message::query(0x0D0A, Name::parse("google.com").unwrap(), RecordType::A);
    sim.with_host::<DnsClientHost, _>(cid, |c, ctx| c.start_with_query(ctx, &q));
    sim.run_until(SimTime::from_secs(10));
    let total_bytes = {
        let t = sim.trace().unwrap();
        t.total_bytes(local, remote) + t.total_bytes(remote, local)
    };
    let client = sim.host_mut::<DnsClientHost>(cid);
    assert!(!client.responses.is_empty(), "{transport}: no response");
    let (at, msg) = client.responses[0].clone();
    assert_eq!(msg.header.id, 0x0D0A);
    assert_eq!(msg.answers.len(), 1);
    let hs = client.handshake_time().map(|d| d.as_secs_f64() * 1000.0);
    let session = client.session_state();
    (hs, at.as_millis_f64(), session, total_bytes)
}

fn doh3_server() -> ServerConfig {
    ServerConfig {
        supports_doh3: true,
        ..ServerConfig::default()
    }
}

#[test]
fn doh3_resolves_like_doq_round_trips() {
    let (hs, at, session, _) =
        run_query(DnsTransport::DoH3, doh3_server(), ClientConfig::default());
    // QUIC handshake 1 RTT, request/response 1 RTT.
    assert!((hs.unwrap() - 50.0).abs() < 1.0, "handshake {hs:?}");
    assert!((at - 100.0).abs() < 1.0, "resolve at {at}");
    assert!(session.tls_ticket.is_some());
    assert!(session.quic_token.is_some());
}

#[test]
fn doh3_matches_doq_and_beats_doh_on_time() {
    let (_, doh3_at, _, _) = run_query(DnsTransport::DoH3, doh3_server(), ClientConfig::default());
    let (_, doq_at, _, _) = run_query(DnsTransport::DoQ, doh3_server(), ClientConfig::default());
    let (_, doh_at, _, _) = run_query(DnsTransport::DoH, doh3_server(), ClientConfig::default());
    assert!(
        (doh3_at - doq_at).abs() < 1.0,
        "DoH3 {doh3_at} vs DoQ {doq_at}"
    );
    assert!(
        (doh_at - doh3_at - 50.0).abs() < 1.0,
        "DoH {doh_at} vs DoH3 {doh3_at}"
    );
}

#[test]
fn doh3_costs_more_bytes_than_doq() {
    // Same transport, but HTTP framing + QPACK headers per query.
    let (_, _, _, doh3_bytes) =
        run_query(DnsTransport::DoH3, doh3_server(), ClientConfig::default());
    let (_, _, _, doq_bytes) = run_query(DnsTransport::DoQ, doh3_server(), ClientConfig::default());
    assert!(
        doh3_bytes > doq_bytes + 100,
        "DoH3 {doh3_bytes} vs DoQ {doq_bytes}"
    );
}

#[test]
fn doh3_resumption_and_0rtt() {
    // Capture a ticket, resume with 0-RTT on an upgraded resolver:
    // the query rides the first flight, 1 RTT total like DoUDP.
    let server = ServerConfig {
        enable_0rtt: true,
        ..doh3_server()
    };
    let (_, _, session, _) = run_query(DnsTransport::DoH3, server.clone(), ClientConfig::default());
    assert!(session.tls_ticket.as_ref().unwrap().allows_early_data);
    let cfg = ClientConfig {
        session,
        enable_0rtt: true,
        ..ClientConfig::default()
    };
    let (_, at, _, _) = run_query(DnsTransport::DoH3, server, cfg);
    assert!((at - 50.0).abs() < 1.0, "0-RTT DoH3 resolve at {at}");
}

#[test]
fn default_resolvers_do_not_speak_doh3() {
    // The study-era population: UDP 443 is silent (only Cloudflare had
    // deployed DoH3) — the client times out and fails.
    let mut sim = Simulator::new(3, Box::new(FixedPathModel::new(Duration::from_millis(25))));
    let resolver = EchoResolver {
        set: DnsServerSet::new(ServerConfig::default()),
    };
    sim.add_host(Box::new(resolver), &[resolver_ip()]);
    let client = DnsClientHost::new(
        DnsTransport::DoH3,
        SocketAddr::new(client_ip(), 40_000),
        SocketAddr::new(resolver_ip(), 443),
        &ClientConfig::default(),
    );
    let cid = sim.add_host(Box::new(client), &[client_ip()]);
    let q = Message::query(1, Name::parse("x.y").unwrap(), RecordType::A);
    sim.with_host::<DnsClientHost, _>(cid, |c, ctx| c.start_with_query(ctx, &q));
    sim.run_until(SimTime::from_secs(40));
    assert!(sim.host::<DnsClientHost>(cid).responses.is_empty());
}

#[test]
fn doh3_and_doq_coexist_on_one_resolver() {
    let server = doh3_server();
    let (_, _, _, _) = run_query(DnsTransport::DoQ, server.clone(), ClientConfig::default());
    let (_, _, _, _) = run_query(DnsTransport::DoH3, server.clone(), ClientConfig::default());
    let (_, _, _, _) = run_query(DnsTransport::DoH, server, ClientConfig::default());
}

#[test]
fn doh3_key_is_distinct_conn_key() {
    // Sanity: the ConnKey variants stay disjoint for routing.
    let a = ConnKey::Doh3 {
        peer: SocketAddr::new(client_ip(), 1),
        stream: 0,
    };
    let b = ConnKey::Doq {
        peer: SocketAddr::new(client_ip(), 1),
        port: 443,
        stream: 0,
    };
    assert_ne!(a, b);
}
