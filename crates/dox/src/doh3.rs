//! DoH3: DNS over HTTP/3 (RFC 8484 over RFC 9114) — the paper's §4
//! future work. HTTP/3 runs over QUIC on UDP 443; like DoQ it gets the
//! combined 1-RTT transport+crypto handshake and Session Resumption,
//! but pays HTTP framing and QPACK header overhead per query. The
//! `doh3_preview` experiment compares all three encrypted QUIC-era
//! options.

use crate::client::{ClientConfig, ConnMetadata, DnsClientConn, FailureKind, SessionState};
use crate::doq::classify_quic_failure;
use doqlab_dnswire::Message;
use doqlab_netstack::http3::{control_stream_preamble, doh3_request, doh3_response, H3Message};
use doqlab_netstack::quic::{QuicConfig, QuicConnection, QUIC_V1};
use doqlab_netstack::tls::TlsConfig;
use doqlab_simnet::{Packet, SimRng, SimTime, SocketAddr};
use doqlab_telemetry::metrics::{self, Counter};
use doqlab_telemetry::{sink, Event};
use std::collections::HashMap;

/// A DoH3 client connection.
#[derive(Debug)]
pub struct DoH3Client {
    quic_cfg: QuicConfig,
    local: SocketAddr,
    remote: SocketAddr,
    initial_version: u32,
    session_in: SessionState,
    authority: String,
    conn: Option<QuicConnection>,
    control_sent: bool,
    queued: Vec<Message>,
    /// request stream -> original query id.
    inflight: HashMap<u64, (u16, Vec<u8>)>,
    responses: Vec<(SimTime, Message)>,
    session_out: SessionState,
    early_permitted: bool,
}

impl DoH3Client {
    pub fn new(local: SocketAddr, remote: SocketAddr, cfg: &ClientConfig) -> Self {
        let tls = TlsConfig {
            alpn: vec![b"h3".to_vec()],
            enable_0rtt: cfg.enable_0rtt,
            ..TlsConfig::default()
        };
        let early_permitted = cfg.enable_0rtt
            && cfg
                .session
                .tls_ticket
                .as_ref()
                .is_some_and(|t| t.allows_early_data);
        DoH3Client {
            quic_cfg: QuicConfig {
                tls,
                ..QuicConfig::default()
            },
            local,
            remote,
            initial_version: cfg.session.quic_version.unwrap_or(QUIC_V1),
            session_in: cfg.session.clone(),
            authority: format!("dns-{}.resolver", remote.ip),
            conn: None,
            control_sent: false,
            queued: Vec::new(),
            inflight: HashMap::new(),
            responses: Vec::new(),
            session_out: SessionState::default(),
            early_permitted,
        }
    }

    fn flush_queries(&mut self, now: SimTime) {
        let Some(conn) = &mut self.conn else { return };
        if !(conn.is_established() || self.early_permitted) {
            return;
        }
        if !self.control_sent {
            self.control_sent = true;
            let control = conn.open_uni();
            conn.stream_send(control, &control_stream_preamble(), false);
        }
        for mut msg in std::mem::take(&mut self.queued) {
            let orig_id = msg.header.id;
            msg.header.id = 0; // cache-friendly, like DoH (RFC 8484 §4.1)
            let request = doh3_request(&self.authority, msg.encode());
            let stream = conn.open_bi();
            conn.stream_send(stream, &request.encode(), true);
            sink::emit(now.as_nanos(), || Event::HttpRequestSent {
                protocol: "h3",
                stream_id: stream,
            });
            metrics::count(Counter::HttpRequestsSent, 1);
            self.inflight.insert(stream, (orig_id, Vec::new()));
        }
    }

    fn pump(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.flush_queries(now);
        let Some(conn) = &mut self.conn else { return };
        let mut done = Vec::new();
        for (&stream, (orig_id, buf)) in self.inflight.iter_mut() {
            let (data, fin) = conn.stream_recv(stream);
            buf.extend_from_slice(&data);
            if fin {
                if let Some(h3) = H3Message::decode(buf) {
                    let status = h3
                        .header(":status")
                        .and_then(|s| s.parse::<u32>().ok())
                        .unwrap_or(0);
                    sink::emit(now.as_nanos(), || Event::HttpResponseReceived {
                        protocol: "h3",
                        stream_id: stream,
                        status,
                    });
                    metrics::count(Counter::HttpResponsesReceived, 1);
                    if status == 200 {
                        if let Ok(mut msg) = Message::decode(&h3.body) {
                            msg.header.id = *orig_id;
                            self.responses.push((now, msg));
                        }
                    }
                }
                done.push(stream);
            }
        }
        for s in done {
            self.inflight.remove(&s);
        }
        if conn.is_established() {
            for ticket in conn.take_tickets() {
                self.session_out.tls_ticket = Some(ticket);
            }
            if let Some(token) = conn.take_new_token() {
                self.session_out.quic_token = Some(token);
            }
            self.session_out.quic_version = Some(conn.version());
        }
        for dgram in conn.poll_transmit(now) {
            out.push(Packet::udp(self.local, self.remote, dgram));
        }
    }
}

impl DnsClientConn for DoH3Client {
    fn start(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        assert!(self.conn.is_none(), "start twice");
        let token = if self.session_in.tls_ticket.is_some() {
            self.session_in.quic_token.clone()
        } else {
            None
        };
        self.conn = Some(QuicConnection::client(
            self.quic_cfg.clone(),
            self.local,
            self.remote,
            self.initial_version,
            self.session_in.tls_ticket.clone(),
            token,
            rng,
            now,
        ));
        self.pump(now, out);
    }

    fn query(&mut self, _now: SimTime, msg: &Message) {
        self.queued.push(msg.clone());
    }

    fn on_packet(&mut self, now: SimTime, pkt: &Packet, out: &mut Vec<Packet>) {
        if let Some(conn) = &mut self.conn {
            conn.handle_datagram(now, &pkt.payload);
        }
        self.pump(now, out);
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.pump(now, out);
    }

    fn next_timeout(&self) -> Option<SimTime> {
        self.conn.as_ref().and_then(|c| c.next_timeout())
    }

    fn take_responses(&mut self) -> Vec<(SimTime, Message)> {
        std::mem::take(&mut self.responses)
    }

    fn handshake_done_at(&self) -> Option<SimTime> {
        self.conn.as_ref().and_then(|c| c.established_at())
    }

    fn failed(&self) -> bool {
        self.failure().is_some()
    }

    fn failure(&self) -> Option<FailureKind> {
        classify_quic_failure(self.conn.as_ref()?)
    }

    fn session_state(&mut self) -> SessionState {
        std::mem::take(&mut self.session_out)
    }

    fn close(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        if let Some(conn) = &mut self.conn {
            conn.close(0x100); // H3_NO_ERROR
        }
        self.pump(now, out);
    }

    fn rebind(&mut self, now: SimTime, new_local: SocketAddr, out: &mut Vec<Packet>) {
        self.local = new_local;
        if let Some(conn) = &mut self.conn {
            conn.rebind(now, new_local);
        }
        self.pump(now, out);
    }

    fn metadata(&self) -> ConnMetadata {
        ConnMetadata {
            quic_version: self.conn.as_ref().map(|c| c.version()),
            tls13: Some(true),
            resumed: self.conn.as_ref().is_some_and(|c| c.is_resumption()),
            zero_rtt: self
                .conn
                .as_ref()
                .and_then(|c| c.early_data_accepted())
                .unwrap_or(false),
            ..ConnMetadata::default()
        }
    }
}

/// Server-side helper: build the H3 response bytes for a DNS answer.
pub fn doh3_response_bytes(msg: &Message) -> Vec<u8> {
    let mut resp = msg.clone();
    resp.header.id = 0;
    doh3_response(resp.encode()).encode()
}
