//! Simulator-host glue: wraps any [`DnsClientConn`] as a
//! [`doqlab_simnet::Host`], which is how the measurement harness and
//! the DNS proxy drive client connections.
//!
//! Beyond forwarding packets and timers, the host is the resilience
//! layer shared by all five transports: it enforces the per-query
//! deadline ([`ClientConfig::query_deadline`]), and when the underlying
//! connection fails permanently it can tear it down and dial a fresh
//! one with exponential backoff ([`ClientConfig::reconnect_max`]),
//! re-issuing the pending queries and carrying forward any session
//! ticket the failed attempt managed to gather. With both knobs at
//! their defaults (no deadline, no reconnects) the host behaves exactly
//! as it did before the resilience layer existed.
//!
//! With [`ClientConfig::pool_idle_timeout`] set the host switches to
//! **pooled mode** for population-scale workloads: the connection stays
//! open across queries (amortizing the TLS/QUIC handshake — counted as
//! `pool.reuse`), a connection idle past the timeout is closed and
//! bookkept as a pool eviction (`pool.evict_idle`, never a reconnect),
//! and the next query after an eviction or failure dials fresh,
//! presenting whatever session ticket earlier connections captured.
//! Pooled failure redials re-issue only the still-unanswered queries.

use crate::client::{ClientConfig, DnsClientConn, DnsTransport, FailureKind, SessionState};
use crate::doh::DoHClient;
use crate::doh3::DoH3Client;
use crate::doq::DoQClient;
use crate::dot::DoTClient;
use crate::tcp::DoTcpClient;
use crate::udp::DoUdpClient;
use doqlab_dnswire::Message;
use doqlab_simnet::{Ctx, Host, Packet, SimRng, SimTime, SocketAddr};
use doqlab_telemetry::metrics::{self, Counter};
use std::any::Any;

/// Construct a client connection for any of the five transports.
pub fn make_client(
    transport: DnsTransport,
    local: SocketAddr,
    remote: SocketAddr,
    cfg: &ClientConfig,
) -> Box<dyn DnsClientConn> {
    match transport {
        DnsTransport::DoUdp => Box::new(DoUdpClient::new(local, remote, cfg)),
        DnsTransport::DoTcp => Box::new(DoTcpClient::new(local, remote, cfg)),
        DnsTransport::DoT => Box::new(DoTClient::new(local, remote, cfg)),
        DnsTransport::DoH => Box::new(DoHClient::new(local, remote, cfg)),
        DnsTransport::DoQ => Box::new(DoQClient::new(local, remote, cfg)),
        DnsTransport::DoH3 => Box::new(DoH3Client::new(local, remote, cfg)),
    }
}

/// A simulator host owning one DNS client connection.
pub struct DnsClientHost {
    pub conn: Box<dyn DnsClientConn>,
    /// Responses accumulated across the connection's lifetime.
    pub responses: Vec<(SimTime, Message)>,
    started_at: Option<SimTime>,
    // Everything needed to dial a replacement connection.
    transport: DnsTransport,
    local: SocketAddr,
    remote: SocketAddr,
    cfg: ClientConfig,
    /// Queries issued so far, re-sent on a reconnected connection.
    issued: Vec<Message>,
    /// Absolute per-query deadline, armed at start.
    deadline: Option<SimTime>,
    /// Pending reconnect: dial again at this time.
    reconnect_at: Option<SimTime>,
    reconnects_done: u32,
    /// Terminal verdict; once set the host goes quiet.
    terminal: Option<FailureKind>,
    // --- pooled mode (cfg.pool_idle_timeout = Some) -------------------
    /// Unanswered queries with their issue times; a pool redial
    /// re-issues only these, never the full history.
    pending: Vec<(SimTime, Message)>,
    /// Last query issue or response arrival; the idle clock.
    last_activity: SimTime,
    /// A live (dialed, not evicted) connection exists.
    dialed: bool,
    /// When the live connection was dialed (handshake-deadline clock).
    dialed_at: SimTime,
    /// The source port of the first dial; each pool redial binds a
    /// fresh port above it, as a real stub's sockets would.
    base_port: u16,
    /// Pooled dials so far (drives the source-port rotation).
    dials: u32,
    /// Reconnect budget consumed by the current query flow (reset once
    /// the flow completes, unlike the monotonic `reconnects_done`).
    pool_budget_used: u32,
    pool_evictions: u32,
    /// Queries issued on an already-established pooled connection.
    pool_reuses: u64,
    /// Queries abandoned after the reconnect budget was exhausted.
    failed_queries: u64,
    /// The abandoned queries themselves, for the owner to collect.
    abandoned: Vec<Message>,
    /// Resumption material carried across pool evictions and redials.
    cached_session: SessionState,
}

impl DnsClientHost {
    pub fn new(
        transport: DnsTransport,
        local: SocketAddr,
        remote: SocketAddr,
        cfg: &ClientConfig,
    ) -> Self {
        DnsClientHost {
            conn: make_client(transport, local, remote, cfg),
            responses: Vec::new(),
            started_at: None,
            transport,
            local,
            remote,
            cfg: cfg.clone(),
            issued: Vec::new(),
            deadline: None,
            reconnect_at: None,
            reconnects_done: 0,
            terminal: None,
            pending: Vec::new(),
            last_activity: SimTime::ZERO,
            dialed: false,
            dialed_at: SimTime::ZERO,
            base_port: local.port,
            dials: 0,
            pool_budget_used: 0,
            pool_evictions: 0,
            pool_reuses: 0,
            failed_queries: 0,
            abandoned: Vec::new(),
            cached_session: SessionState::default(),
        }
    }

    /// Pooling is on: the host keeps the connection across queries.
    fn pooled(&self) -> bool {
        self.cfg.pool_idle_timeout.is_some()
    }

    /// Queue a query and open the connection (idempotent open).
    pub fn start_with_query(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        if self.pooled() {
            self.pool_query(ctx, msg);
            return;
        }
        self.issued.push(msg.clone());
        self.conn.query(ctx.now, msg);
        let mut out = Vec::new();
        if self.started_at.is_none() {
            self.started_at = Some(ctx.now);
            if let Some(d) = self.cfg.query_deadline {
                self.deadline = Some(ctx.now + d);
            }
            self.conn.start(ctx.now, ctx.rng, &mut out);
        }
        self.conn.poll(ctx.now, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    /// When the connection attempt began.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// Time from first packet to usable session.
    pub fn handshake_time(&self) -> Option<doqlab_simnet::Duration> {
        Some(self.conn.handshake_done_at()? - self.started_at?)
    }

    /// Resumption material captured on this connection.
    pub fn session_state(&mut self) -> SessionState {
        self.conn.session_state()
    }

    /// Why the query run failed, if it did: the host-level verdict
    /// (deadline exceeded, reconnects exhausted) or, failing that, the
    /// live connection's own classification. `None` once any response
    /// arrived.
    pub fn failure(&self) -> Option<FailureKind> {
        if !self.responses.is_empty() {
            return None;
        }
        self.terminal.or_else(|| self.conn.failure())
    }

    /// How many replacement connections were dialed.
    pub fn reconnects(&self) -> u32 {
        self.reconnects_done
    }

    /// Resilience supervision, run after every event: enforce the
    /// per-query deadline, detect a dead connection and schedule or
    /// perform the reconnect. A no-op for default configs.
    fn supervise(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        if self.terminal.is_some() {
            return;
        }
        if let Some(d) = self.deadline {
            if !self.responses.is_empty() {
                self.deadline = None;
            } else if now >= d {
                // The deadline is terminal: abandon the query whatever
                // the transport is doing.
                self.deadline = None;
                self.reconnect_at = None;
                // If the transport already knows why it died, keep that
                // diagnosis; otherwise the deadline itself is the cause.
                self.terminal = Some(self.conn.failure().unwrap_or(FailureKind::DeadlineExceeded));
                self.conn.close(now, out);
                return;
            }
        }
        if let Some(at) = self.reconnect_at {
            if now >= at {
                self.reconnect_at = None;
                self.reconnect(now, rng, out);
            }
            return;
        }
        if self.cfg.reconnect_max > 0 && self.responses.is_empty() && self.conn.failed() {
            if self.reconnects_done < self.cfg.reconnect_max {
                // Exponential backoff: base * 2^attempts.
                let backoff = self
                    .cfg
                    .reconnect_backoff
                    .saturating_mul(1u32 << self.reconnects_done.min(16));
                self.reconnect_at = Some(now + backoff);
            } else {
                self.terminal = self.conn.failure();
            }
        }
    }

    /// Replace the dead connection with a fresh one, re-issuing every
    /// query and reusing any resumption material gathered so far.
    fn reconnect(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        metrics::count(Counter::Reconnects, 1);
        let session = self.conn.session_state();
        let mut cfg = self.cfg.clone();
        if !session.is_empty() {
            cfg.session = session;
        }
        self.conn = make_client(self.transport, self.local, self.remote, &cfg);
        self.reconnects_done += 1;
        for q in &self.issued {
            self.conn.query(now, q);
        }
        self.conn.start(now, rng, out);
        self.conn.poll(now, out);
    }

    // --- pooled mode --------------------------------------------------

    /// Pool evictions performed (idle-timeout closes). Never counted
    /// into [`DnsClientHost::reconnects`]: an idle eviction is not a
    /// failure.
    pub fn pool_evictions(&self) -> u32 {
        self.pool_evictions
    }

    /// Queries abandoned after the reconnect budget ran out (pooled
    /// mode only).
    pub fn failed_queries(&self) -> u64 {
        self.failed_queries
    }

    /// Queries that rode an already-established pooled connection — the
    /// handshakes the pool amortized away.
    pub fn pool_reuses(&self) -> u64 {
        self.pool_reuses
    }

    /// Drain the queries the pool abandoned (budget exhausted), so the
    /// owning stub can fail the waiting clients instead of leaking them.
    pub fn take_abandoned(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.abandoned)
    }

    /// Queries currently in flight (pooled mode only).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Keep the freshest non-empty resumption material for later dials.
    fn capture_session(&mut self) {
        let s = self.conn.session_state();
        if !s.is_empty() {
            self.cached_session = s;
        }
    }

    /// Issue a query on the pooled connection, dialing one if none is
    /// live. Reuse of an established connection is the pooling payoff
    /// and is counted as such.
    fn pool_query(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        self.pending.push((ctx.now, msg.clone()));
        self.last_activity = ctx.now;
        let mut out = Vec::new();
        if self.dialed {
            if self.conn.handshake_done_at().is_some() {
                self.pool_reuses += 1;
                metrics::count(Counter::PoolReuse, 1);
            }
            self.conn.query(ctx.now, msg);
            self.conn.poll(ctx.now, &mut out);
        } else {
            self.pool_dial(ctx.now, ctx.rng, &mut out);
        }
        for p in out {
            ctx.send(p);
        }
    }

    /// Dial a fresh pooled connection and issue every pending query on
    /// it, presenting any session material captured so far.
    fn pool_dial(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        let mut cfg = self.cfg.clone();
        if !self.cached_session.is_empty() {
            cfg.session = self.cached_session.clone();
        }
        // Every dial binds a fresh source port, as a real stub's socket
        // would. Reusing the 4-tuple would hand the new handshake to
        // whatever stale state the server still holds for it — e.g.
        // when the previous connection's CLOSE was lost in transit, a
        // QUIC server keeps routing the old connection by 4-tuple and
        // the new handshake retries forever against it.
        self.local = SocketAddr::new(
            self.local.ip,
            self.base_port.wrapping_add((self.dials % 16_384) as u16),
        );
        self.dials += 1;
        self.dialed_at = now;
        self.conn = make_client(self.transport, self.local, self.remote, &cfg);
        if self.started_at.is_none() {
            self.started_at = Some(now);
        }
        let pending: Vec<Message> = self.pending.iter().map(|(_, q)| q.clone()).collect();
        for q in &pending {
            self.conn.query(now, q);
        }
        self.conn.start(now, rng, out);
        self.conn.poll(now, out);
        self.dialed = true;
    }

    /// Failure recovery for the pooled connection: dial a replacement
    /// and re-issue only the *pending* queries. This is a genuine
    /// reconnect and counts as one — unlike a pool eviction.
    fn pool_failure_redial(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        metrics::count(Counter::Reconnects, 1);
        self.capture_session();
        self.reconnects_done += 1;
        self.pool_budget_used += 1;
        self.dialed = false;
        self.pool_dial(now, rng, out);
    }

    /// Pooled-mode supervision: recover from transport failures within
    /// the reconnect budget, and close connections that sat idle past
    /// `pool_idle_timeout` (bookkept as evictions, never reconnects).
    fn supervise_pooled(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        let idle = self.cfg.pool_idle_timeout.expect("pooled");
        if let Some(at) = self.reconnect_at {
            if now >= at {
                self.reconnect_at = None;
                self.pool_failure_redial(now, rng, out);
            }
            return;
        }
        // A handshake that neither completes nor reaches a terminal
        // error within the budget (e.g. endless PTO retries against a
        // peer that will never answer) is treated as a failure.
        let hs_overdue = self.dialed
            && self.conn.handshake_done_at().is_none()
            && now >= self.dialed_at + self.cfg.pool_handshake_timeout;
        if self.dialed && (self.conn.failed() || hs_overdue) {
            if !self.pending.is_empty()
                && self.cfg.reconnect_max > 0
                && self.pool_budget_used < self.cfg.reconnect_max
            {
                let backoff = self
                    .cfg
                    .reconnect_backoff
                    .saturating_mul(1u32 << self.pool_budget_used.min(16));
                self.reconnect_at = Some(now + backoff);
            } else {
                // Budget exhausted (or nothing in flight): abandon the
                // pending queries and tear the connection down; the
                // next query dials fresh with a fresh budget.
                self.failed_queries += self.pending.len() as u64;
                self.abandoned
                    .extend(self.pending.drain(..).map(|(_, q)| q));
                self.capture_session();
                self.conn.close(now, out);
                self.dialed = false;
                self.pool_budget_used = 0;
            }
            return;
        }
        if self.dialed && self.pending.is_empty() && now >= self.last_activity + idle {
            self.capture_session();
            self.conn.close(now, out);
            self.dialed = false;
            self.pool_evictions += 1;
            self.pool_budget_used = 0;
            metrics::count(Counter::PoolEvictIdle, 1);
        }
    }

    /// Fold freshly-taken responses into the host: in pooled mode they
    /// retire their pending queries (matched by message id) and restart
    /// the idle clock.
    fn absorb_responses(&mut self, taken: Vec<(SimTime, Message)>) {
        if self.pooled() && !taken.is_empty() {
            for (at, resp) in &taken {
                self.pending.retain(|(_, q)| q.header.id != resp.header.id);
                self.last_activity = *at;
            }
            self.pool_budget_used = 0;
        }
        self.responses.extend(taken);
    }
}

impl Host for DnsClientHost {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        // Pooled dials rotate source ports; a packet addressed to a
        // retired port belongs to an evicted or replaced connection and
        // must not be pumped into the current one's state machine.
        if self.pooled() && pkt.dst.port != self.local.port {
            return;
        }
        let mut out = Vec::new();
        // Once the verdict is terminal or a replacement dial is
        // pending, the connection is dead: late packets addressed to it
        // are dropped instead of pumped into closed state machines.
        if self.terminal.is_none() && self.reconnect_at.is_none() {
            self.conn.on_packet(ctx.now, &pkt, &mut out);
            self.conn.poll(ctx.now, &mut out);
            let taken = self.conn.take_responses();
            self.absorb_responses(taken);
        }
        if self.pooled() {
            self.supervise_pooled(ctx.now, ctx.rng, &mut out);
        } else {
            self.supervise(ctx.now, ctx.rng, &mut out);
        }
        for p in out {
            ctx.send(p);
        }
    }

    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = Vec::new();
        if self.terminal.is_none() && self.reconnect_at.is_none() {
            self.conn.poll(ctx.now, &mut out);
            let taken = self.conn.take_responses();
            self.absorb_responses(taken);
        }
        if self.pooled() {
            self.supervise_pooled(ctx.now, ctx.rng, &mut out);
        } else {
            self.supervise(ctx.now, ctx.rng, &mut out);
        }
        for p in out {
            ctx.send(p);
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        if self.pooled() {
            // Pooled connections never go terminal; their timers are
            // the live connection's, the pending failure redial, and
            // the idle-eviction sweep.
            let mut next = match self.reconnect_at {
                Some(at) => Some(at),
                None if self.dialed => self.conn.next_timeout(),
                None => None,
            };
            if self.dialed && self.reconnect_at.is_none() && self.pending.is_empty() {
                let evict = self.last_activity + self.cfg.pool_idle_timeout.expect("pooled");
                next = Some(next.map_or(evict, |n| n.min(evict)));
            }
            if self.dialed && self.reconnect_at.is_none() && self.conn.handshake_done_at().is_none()
            {
                let hs = self.dialed_at + self.cfg.pool_handshake_timeout;
                next = Some(next.map_or(hs, |n| n.min(hs)));
            }
            return next;
        }
        // Once terminal, the host goes quiet: re-advertising the dead
        // connection's timers would spin the event loop forever.
        if self.terminal.is_some() {
            return None;
        }
        // While a replacement dial is pending the dead connection's
        // timers are irrelevant (and would spin the loop, since its
        // wakeups are no longer delivered).
        let mut next = match self.reconnect_at {
            Some(at) => Some(at),
            None => self.conn.next_timeout(),
        };
        if self.responses.is_empty() {
            if let Some(d) = self.deadline {
                next = Some(next.map_or(d, |n| n.min(d)));
            }
        }
        next
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
