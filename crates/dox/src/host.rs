//! Simulator-host glue: wraps any [`DnsClientConn`] as a
//! [`doqlab_simnet::Host`], which is how the measurement harness and
//! the DNS proxy drive client connections.
//!
//! Beyond forwarding packets and timers, the host is the resilience
//! layer shared by all five transports: it enforces the per-query
//! deadline ([`ClientConfig::query_deadline`]), and when the underlying
//! connection fails permanently it can tear it down and dial a fresh
//! one with exponential backoff ([`ClientConfig::reconnect_max`]),
//! re-issuing the pending queries and carrying forward any session
//! ticket the failed attempt managed to gather. With both knobs at
//! their defaults (no deadline, no reconnects) the host behaves exactly
//! as it did before the resilience layer existed.
//!
//! With [`ClientConfig::pool_idle_timeout`] set the host switches to
//! **pooled mode** for population-scale workloads: the connection stays
//! open across queries (amortizing the TLS/QUIC handshake — counted as
//! `pool.reuse`), a connection idle past the timeout is closed and
//! bookkept as a pool eviction (`pool.evict_idle`, never a reconnect),
//! and the next query after an eviction or failure dials fresh,
//! presenting whatever session ticket earlier connections captured.
//! Pooled failure redials re-issue only the still-unanswered queries.

use crate::client::{
    ClientConfig, DnsClientConn, DnsTransport, FailureKind, SessionCache, SessionState,
};
use crate::doh::DoHClient;
use crate::doh3::DoH3Client;
use crate::doq::DoQClient;
use crate::dot::DoTClient;
use crate::tcp::DoTcpClient;
use crate::udp::DoUdpClient;
use doqlab_dnswire::Message;
use doqlab_simnet::{Ctx, Host, Packet, SimRng, SimTime, SocketAddr};
use doqlab_telemetry::metrics::{self, Counter};
use doqlab_telemetry::{sink, Event};
use std::any::Any;

/// Construct a client connection for any of the five transports.
pub fn make_client(
    transport: DnsTransport,
    local: SocketAddr,
    remote: SocketAddr,
    cfg: &ClientConfig,
) -> Box<dyn DnsClientConn> {
    match transport {
        DnsTransport::DoUdp => Box::new(DoUdpClient::new(local, remote, cfg)),
        DnsTransport::DoTcp => Box::new(DoTcpClient::new(local, remote, cfg)),
        DnsTransport::DoT => Box::new(DoTClient::new(local, remote, cfg)),
        DnsTransport::DoH => Box::new(DoHClient::new(local, remote, cfg)),
        DnsTransport::DoQ => Box::new(DoQClient::new(local, remote, cfg)),
        DnsTransport::DoH3 => Box::new(DoH3Client::new(local, remote, cfg)),
    }
}

/// A simulator host owning one DNS client connection.
pub struct DnsClientHost {
    pub conn: Box<dyn DnsClientConn>,
    /// Responses accumulated across the connection's lifetime.
    pub responses: Vec<(SimTime, Message)>,
    started_at: Option<SimTime>,
    // Everything needed to dial a replacement connection.
    transport: DnsTransport,
    local: SocketAddr,
    remote: SocketAddr,
    cfg: ClientConfig,
    /// Queries issued so far, re-sent on a reconnected connection.
    issued: Vec<Message>,
    /// Absolute per-query deadline, armed at start.
    deadline: Option<SimTime>,
    /// Pending reconnect: dial again at this time.
    reconnect_at: Option<SimTime>,
    reconnects_done: u32,
    /// Terminal verdict; once set the host goes quiet.
    terminal: Option<FailureKind>,
    // --- pooled mode (cfg.pool_idle_timeout = Some) -------------------
    /// Unanswered queries with their issue times; a pool redial
    /// re-issues only these, never the full history.
    pending: Vec<(SimTime, Message)>,
    /// Last query issue or response arrival; the idle clock.
    last_activity: SimTime,
    /// A live (dialed, not evicted) connection exists.
    dialed: bool,
    /// When the live connection was dialed (handshake-deadline clock).
    dialed_at: SimTime,
    /// The source port of the first dial; each pool redial binds a
    /// fresh port above it, as a real stub's sockets would.
    base_port: u16,
    /// Pooled dials so far (drives the source-port rotation).
    dials: u32,
    /// Reconnect budget consumed by the current query flow (reset once
    /// the flow completes, unlike the monotonic `reconnects_done`).
    pool_budget_used: u32,
    pool_evictions: u32,
    /// Queries issued on an already-established pooled connection.
    pool_reuses: u64,
    /// Queries abandoned after the reconnect budget was exhausted.
    failed_queries: u64,
    /// The abandoned queries themselves, for the owner to collect.
    abandoned: Vec<Message>,
    /// Resumption material captured so far, keyed by resolver address;
    /// carried across pool evictions, redials and reconnects, and
    /// exportable so a later host can resume where this one left off.
    sessions: SessionCache,
    // --- cross-transport failover (cfg.failover = Some) ---------------
    /// Fallback connections raced against the primary, in ladder order.
    racers: Vec<Racer>,
    /// Transport that produced the first response (set once).
    winner: Option<DnsTransport>,
    /// Bytes spent on connections that did not win (all bytes if the
    /// whole race failed).
    wasted_bytes: u64,
    /// Bytes the primary connection moved (tracked only while racing).
    primary_bytes: u64,
    /// The race is over (won, failed, or deadline); losers are closed.
    race_settled: bool,
}

/// One fallback rung of the failover ladder: a full client connection
/// on its own source port, racing the primary.
struct Racer {
    transport: DnsTransport,
    conn: Box<dyn DnsClientConn>,
    local: SocketAddr,
    bytes: u64,
}

impl DnsClientHost {
    pub fn new(
        transport: DnsTransport,
        local: SocketAddr,
        remote: SocketAddr,
        cfg: &ClientConfig,
    ) -> Self {
        // Resumption material handed in via the config belongs in the
        // cache too: a redial must not forget what the caller knew.
        let mut sessions = SessionCache::default();
        sessions.store(remote, cfg.session.clone());
        DnsClientHost {
            conn: make_client(transport, local, remote, cfg),
            responses: Vec::new(),
            started_at: None,
            transport,
            local,
            remote,
            cfg: cfg.clone(),
            issued: Vec::new(),
            deadline: None,
            reconnect_at: None,
            reconnects_done: 0,
            terminal: None,
            pending: Vec::new(),
            last_activity: SimTime::ZERO,
            dialed: false,
            dialed_at: SimTime::ZERO,
            base_port: local.port,
            dials: 0,
            pool_budget_used: 0,
            pool_evictions: 0,
            pool_reuses: 0,
            failed_queries: 0,
            abandoned: Vec::new(),
            sessions,
            racers: Vec::new(),
            winner: None,
            wasted_bytes: 0,
            primary_bytes: 0,
            race_settled: false,
        }
    }

    /// Pooling is on: the host keeps the connection across queries.
    fn pooled(&self) -> bool {
        self.cfg.pool_idle_timeout.is_some()
    }

    /// Queue a query and open the connection (idempotent open).
    pub fn start_with_query(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        if self.pooled() {
            self.pool_query(ctx, msg);
            return;
        }
        self.issued.push(msg.clone());
        self.conn.query(ctx.now, msg);
        let mut out = Vec::new();
        if self.started_at.is_none() {
            self.started_at = Some(ctx.now);
            if let Some(d) = self.cfg.query_deadline {
                self.deadline = Some(ctx.now + d);
            }
            self.conn.start(ctx.now, ctx.rng, &mut out);
        }
        self.conn.poll(ctx.now, &mut out);
        if self.racing() {
            for p in &out {
                self.primary_bytes += p.payload.len() as u64;
            }
        }
        for p in out {
            ctx.send(p);
        }
    }

    /// When the connection attempt began.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// Time from first packet to usable session.
    pub fn handshake_time(&self) -> Option<doqlab_simnet::Duration> {
        Some(self.conn.handshake_done_at()? - self.started_at?)
    }

    /// Resumption material captured so far for this host's resolver:
    /// the live connection's capture merged over anything earlier
    /// dials (or the config) contributed.
    pub fn session_state(&mut self) -> SessionState {
        self.capture_session();
        self.sessions.get(self.remote).cloned().unwrap_or_default()
    }

    /// Why the query run failed, if it did: the host-level verdict
    /// (deadline exceeded, reconnects exhausted) or, failing that, the
    /// live connection's own classification. `None` once any response
    /// arrived.
    pub fn failure(&self) -> Option<FailureKind> {
        if !self.responses.is_empty() {
            return None;
        }
        self.terminal.or_else(|| self.conn.failure())
    }

    /// How many replacement connections were dialed.
    pub fn reconnects(&self) -> u32 {
        self.reconnects_done
    }

    /// Resilience supervision, run after every event: enforce the
    /// per-query deadline, detect a dead connection and schedule or
    /// perform the reconnect. A no-op for default configs.
    fn supervise(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        if self.terminal.is_some() {
            return;
        }
        if let Some(d) = self.deadline {
            if !self.responses.is_empty() {
                self.deadline = None;
            } else if now >= d {
                // The deadline is terminal: abandon the query whatever
                // the transport is doing.
                self.deadline = None;
                self.reconnect_at = None;
                // If the transport already knows why it died, keep that
                // diagnosis; otherwise the deadline itself is the cause.
                self.terminal = Some(self.conn.failure().unwrap_or(FailureKind::DeadlineExceeded));
                self.conn.close(now, out);
                return;
            }
        }
        if let Some(at) = self.reconnect_at {
            if now >= at {
                self.reconnect_at = None;
                self.reconnect(now, rng, out);
            }
            return;
        }
        if self.cfg.reconnect_max > 0 && self.responses.is_empty() && self.conn.failed() {
            if self.reconnects_done < self.cfg.reconnect_max {
                // Exponential backoff: base * 2^attempts.
                let backoff = self
                    .cfg
                    .reconnect_backoff
                    .saturating_mul(1u32 << self.reconnects_done.min(16));
                self.reconnect_at = Some(now + backoff);
            } else {
                self.terminal = self.conn.failure();
            }
        }
    }

    /// Replace the dead connection with a fresh one, re-issuing every
    /// query and reusing any resumption material gathered so far.
    fn reconnect(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        metrics::count(Counter::Reconnects, 1);
        self.capture_session();
        let mut cfg = self.cfg.clone();
        if let Some(s) = self.sessions.get(self.remote) {
            cfg.session = s.clone();
        }
        self.conn = make_client(self.transport, self.local, self.remote, &cfg);
        self.reconnects_done += 1;
        for q in &self.issued {
            self.conn.query(now, q);
        }
        self.conn.start(now, rng, out);
        self.conn.poll(now, out);
    }

    // --- pooled mode --------------------------------------------------

    /// Pool evictions performed (idle-timeout closes). Never counted
    /// into [`DnsClientHost::reconnects`]: an idle eviction is not a
    /// failure.
    pub fn pool_evictions(&self) -> u32 {
        self.pool_evictions
    }

    /// Queries abandoned after the reconnect budget ran out (pooled
    /// mode only).
    pub fn failed_queries(&self) -> u64 {
        self.failed_queries
    }

    /// Queries that rode an already-established pooled connection — the
    /// handshakes the pool amortized away.
    pub fn pool_reuses(&self) -> u64 {
        self.pool_reuses
    }

    /// Drain the queries the pool abandoned (budget exhausted), so the
    /// owning stub can fail the waiting clients instead of leaking them.
    pub fn take_abandoned(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.abandoned)
    }

    /// Queries currently in flight (pooled mode only).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Fold the live connection's resumption material into the session
    /// cache under the resolver it came from.
    fn capture_session(&mut self) {
        let s = self.conn.session_state();
        self.sessions.store(self.remote, s);
    }

    /// The host's session cache: resumption material keyed by resolver.
    pub fn session_cache(&self) -> &SessionCache {
        &self.sessions
    }

    /// Export the session cache (folding in whatever the live
    /// connection holds first), e.g. to seed a later host's cache.
    pub fn export_sessions(&mut self) -> SessionCache {
        self.capture_session();
        self.sessions.clone()
    }

    /// Seed the session cache from another host's export; the next
    /// dial to a cached resolver presents the merged material.
    pub fn import_sessions(&mut self, cache: SessionCache) {
        self.sessions.absorb(cache);
    }

    /// Issue a query on the pooled connection, dialing one if none is
    /// live. Reuse of an established connection is the pooling payoff
    /// and is counted as such.
    fn pool_query(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        self.pending.push((ctx.now, msg.clone()));
        self.last_activity = ctx.now;
        let mut out = Vec::new();
        if self.dialed {
            if self.conn.handshake_done_at().is_some() {
                self.pool_reuses += 1;
                metrics::count(Counter::PoolReuse, 1);
            }
            self.conn.query(ctx.now, msg);
            self.conn.poll(ctx.now, &mut out);
        } else {
            self.pool_dial(ctx.now, ctx.rng, &mut out);
        }
        for p in out {
            ctx.send(p);
        }
    }

    /// Dial a fresh pooled connection and issue every pending query on
    /// it, presenting any session material captured so far.
    fn pool_dial(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        let mut cfg = self.cfg.clone();
        if let Some(s) = self.sessions.get(self.remote) {
            cfg.session = s.clone();
        }
        // Every dial binds a fresh source port, as a real stub's socket
        // would. Reusing the 4-tuple would hand the new handshake to
        // whatever stale state the server still holds for it — e.g.
        // when the previous connection's CLOSE was lost in transit, a
        // QUIC server keeps routing the old connection by 4-tuple and
        // the new handshake retries forever against it.
        self.local = SocketAddr::new(
            self.local.ip,
            self.base_port.wrapping_add((self.dials % 16_384) as u16),
        );
        self.dials += 1;
        self.dialed_at = now;
        self.conn = make_client(self.transport, self.local, self.remote, &cfg);
        if self.started_at.is_none() {
            self.started_at = Some(now);
        }
        let pending: Vec<Message> = self.pending.iter().map(|(_, q)| q.clone()).collect();
        for q in &pending {
            self.conn.query(now, q);
        }
        self.conn.start(now, rng, out);
        self.conn.poll(now, out);
        self.dialed = true;
    }

    /// Failure recovery for the pooled connection: dial a replacement
    /// and re-issue only the *pending* queries. This is a genuine
    /// reconnect and counts as one — unlike a pool eviction.
    fn pool_failure_redial(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        metrics::count(Counter::Reconnects, 1);
        self.capture_session();
        self.reconnects_done += 1;
        self.pool_budget_used += 1;
        self.dialed = false;
        self.pool_dial(now, rng, out);
    }

    /// Pooled-mode supervision: recover from transport failures within
    /// the reconnect budget, and close connections that sat idle past
    /// `pool_idle_timeout` (bookkept as evictions, never reconnects).
    fn supervise_pooled(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        let idle = self.cfg.pool_idle_timeout.expect("pooled");
        if let Some(at) = self.reconnect_at {
            if now >= at {
                self.reconnect_at = None;
                self.pool_failure_redial(now, rng, out);
            }
            return;
        }
        // A handshake that neither completes nor reaches a terminal
        // error within the budget (e.g. endless PTO retries against a
        // peer that will never answer) is treated as a failure.
        let hs_overdue = self.dialed
            && self.conn.handshake_done_at().is_none()
            && now >= self.dialed_at + self.cfg.pool_handshake_timeout;
        if self.dialed && (self.conn.failed() || hs_overdue) {
            if !self.pending.is_empty()
                && self.cfg.reconnect_max > 0
                && self.pool_budget_used < self.cfg.reconnect_max
            {
                let backoff = self
                    .cfg
                    .reconnect_backoff
                    .saturating_mul(1u32 << self.pool_budget_used.min(16));
                self.reconnect_at = Some(now + backoff);
            } else {
                // Budget exhausted (or nothing in flight): abandon the
                // pending queries and tear the connection down; the
                // next query dials fresh with a fresh budget.
                self.failed_queries += self.pending.len() as u64;
                self.abandoned
                    .extend(self.pending.drain(..).map(|(_, q)| q));
                self.capture_session();
                self.conn.close(now, out);
                self.dialed = false;
                self.pool_budget_used = 0;
            }
            return;
        }
        if self.dialed && self.pending.is_empty() && now >= self.last_activity + idle {
            self.capture_session();
            self.conn.close(now, out);
            self.dialed = false;
            self.pool_evictions += 1;
            self.pool_budget_used = 0;
            metrics::count(Counter::PoolEvictIdle, 1);
        }
    }

    /// Fold freshly-taken responses into the host: in pooled mode they
    /// retire their pending queries (matched by message id) and restart
    /// the idle clock.
    fn absorb_responses(&mut self, taken: Vec<(SimTime, Message)>) {
        if self.pooled() && !taken.is_empty() {
            for (at, resp) in &taken {
                self.pending.retain(|(_, q)| q.header.id != resp.header.id);
                self.last_activity = *at;
            }
            self.pool_budget_used = 0;
        }
        self.responses.extend(taken);
    }

    // --- cross-transport failover racing ------------------------------

    /// Failover racing is active: a ladder is configured and the host
    /// is in non-pooled (single query flow) mode. Racing and pooling
    /// are mutually exclusive; racing configs should also leave
    /// `reconnect_max` at 0 — the ladder *is* the recovery strategy.
    fn racing(&self) -> bool {
        self.cfg.failover.is_some() && !self.pooled()
    }

    /// Transport that produced the first response, once the race is
    /// decided. `None` while undecided or when everything failed.
    pub fn winner(&self) -> Option<DnsTransport> {
        self.winner
    }

    /// Bytes moved by connections that did not produce the winning
    /// response (every connection, if the whole race failed).
    pub fn wasted_bytes(&self) -> u64 {
        self.wasted_bytes
    }

    /// Fallback rungs actually dialed.
    pub fn rungs_dialed(&self) -> u32 {
        self.racers.len() as u32
    }

    /// Source address for ladder rung `k`: the primary's current IP,
    /// one port per rung above the primary's.
    fn rung_local(&self, k: usize) -> SocketAddr {
        SocketAddr::new(self.local.ip, self.local.port.wrapping_add(k as u16 + 1))
    }

    /// When rung `k` becomes eligible by stagger alone. `None` once the
    /// ladder is exhausted or before the first query started.
    fn rung_due(&self, k: usize) -> Option<SimTime> {
        let policy = self.cfg.failover.as_ref()?;
        if k >= policy.ladder.len() {
            return None;
        }
        Some(self.started_at? + policy.stagger * (k as u32 + 1))
    }

    /// Dial the next ladder rung: a fresh connection on its own source
    /// port, aimed at the fallback transport's well-known server port,
    /// carrying every query issued so far.
    fn dial_rung(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        let Some(policy) = self.cfg.failover.clone() else {
            return;
        };
        let k = self.racers.len();
        let Some(&transport) = policy.ladder.get(k) else {
            return;
        };
        let local = self.rung_local(k);
        let remote = SocketAddr::new(self.remote.ip, transport.port());
        let mut cfg = self.cfg.clone();
        cfg.failover = None;
        cfg.session = SessionState::default();
        let primary = self.transport;
        sink::emit(now.as_nanos(), || Event::FailoverRaced {
            from: primary.name(),
            to: transport.name(),
        });
        metrics::count(Counter::FailoverRaced, 1);
        let mut conn = make_client(transport, local, remote, &cfg);
        for q in &self.issued {
            conn.query(now, q);
        }
        let mut sent = Vec::new();
        conn.start(now, rng, &mut sent);
        conn.poll(now, &mut sent);
        let bytes = sent.iter().map(|p| p.payload.len() as u64).sum();
        out.extend(sent);
        self.racers.push(Racer {
            transport,
            conn,
            local,
            bytes,
        });
    }

    /// Pump a racer's timers and collect its responses. The first
    /// response from any racer decides the race.
    fn poll_racers(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        for i in 0..self.racers.len() {
            let taken = {
                let r = &mut self.racers[i];
                let before = out.len();
                r.conn.poll(now, out);
                for p in &out[before..] {
                    r.bytes += p.payload.len() as u64;
                }
                r.conn.take_responses()
            };
            if !taken.is_empty() && self.winner.is_none() {
                self.winner = Some(self.racers[i].transport);
            }
            self.absorb_responses(taken);
        }
    }

    /// Race supervision, run after every event while racing: decide a
    /// settled race, dial the next rung when its stagger elapses (or
    /// sooner, if everything already dialed has failed), and give the
    /// whole race a terminal verdict once the ladder is exhausted.
    fn supervise_failover(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        if self.race_settled {
            return;
        }
        if !self.responses.is_empty() {
            let winner = self.winner.unwrap_or(self.transport);
            self.settle_race(now, winner, out);
            return;
        }
        if self.terminal.is_some() {
            // Host-level verdict (per-query deadline): race over.
            self.settle_race_failed(now, out);
            return;
        }
        let k = self.racers.len();
        let primary_dead = self.conn.failed();
        let racers_dead = self.racers.iter().all(|r| r.conn.failed());
        if self.rung_due(k).is_some() {
            // Ladder not yet exhausted: dial on stagger expiry, or
            // immediately once everything already running is dead.
            let due = self.rung_due(k).is_some_and(|d| now >= d);
            if due || (primary_dead && racers_dead) {
                self.dial_rung(now, rng, out);
            }
        } else if primary_dead && racers_dead {
            self.terminal = Some(
                self.conn
                    .failure()
                    .or_else(|| self.racers.iter().find_map(|r| r.conn.failure()))
                    .unwrap_or(FailureKind::Timeout),
            );
            self.settle_race_failed(now, out);
        }
    }

    /// A response arrived: record the winner, close every loser, and
    /// book the bytes the losers moved as waste.
    fn settle_race(&mut self, now: SimTime, winner: DnsTransport, out: &mut Vec<Packet>) {
        self.race_settled = true;
        self.winner = Some(winner);
        if winner != self.transport {
            self.wasted_bytes += self.primary_bytes;
            self.conn.close(now, out);
        }
        for r in &mut self.racers {
            if r.transport != winner {
                self.wasted_bytes += r.bytes;
                r.conn.close(now, out);
            }
        }
    }

    /// The whole race failed: everything was waste.
    fn settle_race_failed(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.race_settled = true;
        self.wasted_bytes += self.primary_bytes;
        for r in &mut self.racers {
            self.wasted_bytes += r.bytes;
            r.conn.close(now, out);
        }
        self.conn.close(now, out);
    }

    /// A packet addressed to one of the racer ports.
    fn racer_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let Some(i) = self.racers.iter().position(|r| r.local == pkt.dst) else {
            return;
        };
        let mut out = Vec::new();
        if !self.race_settled {
            let taken = {
                let r = &mut self.racers[i];
                r.bytes += pkt.payload.len() as u64;
                r.conn.on_packet(ctx.now, &pkt, &mut out);
                r.conn.poll(ctx.now, &mut out);
                for p in &out {
                    r.bytes += p.payload.len() as u64;
                }
                r.conn.take_responses()
            };
            if !taken.is_empty() && self.winner.is_none() {
                self.winner = Some(self.racers[i].transport);
            }
            self.absorb_responses(taken);
            self.supervise_failover(ctx.now, ctx.rng, &mut out);
        }
        for p in out {
            ctx.send(p);
        }
    }

    /// Move the host's primary socket to a new local IP — the endpoint
    /// half of the simulator's `rebind_host` (which moves the address
    /// the network delivers to). QUIC transports migrate the live
    /// connection (RFC 9000 §9); the rest inherit the default no-op
    /// [`DnsClientConn::rebind`] and are left with a stranded socket
    /// that only reconnects or failover racing can recover from.
    pub fn rebind_local(&mut self, ctx: &mut Ctx<'_>, new_ip: doqlab_simnet::Ipv4Addr) {
        self.local = SocketAddr::new(new_ip, self.local.port);
        let mut out = Vec::new();
        self.conn.rebind(ctx.now, self.local, &mut out);
        if self.racing() {
            for p in &out {
                self.primary_bytes += p.payload.len() as u64;
            }
        }
        // Rungs dialed before the change are as stranded as the
        // primary (only QUIC migrates): redial each one from the new
        // address, like a stub re-racing after a network change. The
        // old rung's bytes are already waste; its dying socket can't
        // emit anything onto the vanished interface, so its close
        // output is discarded.
        if self.racing() && !self.race_settled {
            for i in 0..self.racers.len() {
                let transport = self.racers[i].transport;
                let local = SocketAddr::new(new_ip, self.racers[i].local.port);
                let mut cfg = self.cfg.clone();
                cfg.failover = None;
                cfg.session = SessionState::default();
                let remote = SocketAddr::new(self.remote.ip, transport.port());
                let mut conn = make_client(transport, local, remote, &cfg);
                for q in &self.issued {
                    conn.query(ctx.now, q);
                }
                let mut sent = Vec::new();
                conn.start(ctx.now, ctx.rng, &mut sent);
                conn.poll(ctx.now, &mut sent);
                let bytes = sent.iter().map(|p| p.payload.len() as u64).sum();
                out.extend(sent);
                let old = std::mem::replace(
                    &mut self.racers[i],
                    Racer {
                        transport,
                        conn,
                        local,
                        bytes,
                    },
                );
                self.wasted_bytes += old.bytes;
            }
        }
        for p in out {
            ctx.send(p);
        }
    }
}

impl Host for DnsClientHost {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        // Only the current sockets receive: racing rungs listen on
        // their own addresses, and anything else is retired — a pooled
        // dial's rotated-away port, or (after a rebind) the primary's
        // old address that already-routed in-flight packets still
        // carry. A real stack's stranded socket would never see those.
        if pkt.dst != self.local {
            if self.racing() && self.racers.iter().any(|r| r.local == pkt.dst) {
                self.racer_packet(ctx, pkt);
            }
            return;
        }
        let mut out = Vec::new();
        // Once the verdict is terminal or a replacement dial is
        // pending, the connection is dead: late packets addressed to it
        // are dropped instead of pumped into closed state machines.
        if self.terminal.is_none() && self.reconnect_at.is_none() {
            self.conn.on_packet(ctx.now, &pkt, &mut out);
            self.conn.poll(ctx.now, &mut out);
            if self.racing() {
                self.primary_bytes += pkt.payload.len() as u64;
                for p in &out {
                    self.primary_bytes += p.payload.len() as u64;
                }
            }
            let taken = self.conn.take_responses();
            self.absorb_responses(taken);
        }
        if self.pooled() {
            self.supervise_pooled(ctx.now, ctx.rng, &mut out);
        } else {
            self.supervise(ctx.now, ctx.rng, &mut out);
            if self.racing() {
                self.supervise_failover(ctx.now, ctx.rng, &mut out);
            }
        }
        for p in out {
            ctx.send(p);
        }
    }

    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = Vec::new();
        if self.terminal.is_none() && self.reconnect_at.is_none() {
            self.conn.poll(ctx.now, &mut out);
            if self.racing() {
                for p in &out {
                    self.primary_bytes += p.payload.len() as u64;
                }
            }
            let taken = self.conn.take_responses();
            self.absorb_responses(taken);
        }
        if self.racing() && !self.race_settled {
            self.poll_racers(ctx.now, &mut out);
        }
        if self.pooled() {
            self.supervise_pooled(ctx.now, ctx.rng, &mut out);
        } else {
            self.supervise(ctx.now, ctx.rng, &mut out);
            if self.racing() {
                self.supervise_failover(ctx.now, ctx.rng, &mut out);
            }
        }
        for p in out {
            ctx.send(p);
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        if self.pooled() {
            // Pooled connections never go terminal; their timers are
            // the live connection's, the pending failure redial, and
            // the idle-eviction sweep.
            let mut next = match self.reconnect_at {
                Some(at) => Some(at),
                None if self.dialed => self.conn.next_timeout(),
                None => None,
            };
            if self.dialed && self.reconnect_at.is_none() && self.pending.is_empty() {
                let evict = self.last_activity + self.cfg.pool_idle_timeout.expect("pooled");
                next = Some(next.map_or(evict, |n| n.min(evict)));
            }
            if self.dialed && self.reconnect_at.is_none() && self.conn.handshake_done_at().is_none()
            {
                let hs = self.dialed_at + self.cfg.pool_handshake_timeout;
                next = Some(next.map_or(hs, |n| n.min(hs)));
            }
            return next;
        }
        // Once terminal, the host goes quiet: re-advertising the dead
        // connection's timers would spin the event loop forever.
        if self.terminal.is_some() {
            return None;
        }
        // While a replacement dial is pending the dead connection's
        // timers are irrelevant (and would spin the loop, since its
        // wakeups are no longer delivered).
        let mut next = match self.reconnect_at {
            Some(at) => Some(at),
            None => self.conn.next_timeout(),
        };
        if self.responses.is_empty() {
            if let Some(d) = self.deadline {
                next = Some(next.map_or(d, |n| n.min(d)));
            }
        }
        if self.racing() && !self.race_settled {
            // Racer timers, plus the next rung's stagger expiry.
            for r in &self.racers {
                if let Some(t) = r.conn.next_timeout() {
                    next = Some(next.map_or(t, |n| n.min(t)));
                }
            }
            if let Some(due) = self.rung_due(self.racers.len()) {
                next = Some(next.map_or(due, |n| n.min(due)));
            }
        }
        next
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
