//! Simulator-host glue: wraps any [`DnsClientConn`] as a
//! [`doqlab_simnet::Host`], which is how the measurement harness and
//! the DNS proxy drive client connections.
//!
//! Beyond forwarding packets and timers, the host is the resilience
//! layer shared by all five transports: it enforces the per-query
//! deadline ([`ClientConfig::query_deadline`]), and when the underlying
//! connection fails permanently it can tear it down and dial a fresh
//! one with exponential backoff ([`ClientConfig::reconnect_max`]),
//! re-issuing the pending queries and carrying forward any session
//! ticket the failed attempt managed to gather. With both knobs at
//! their defaults (no deadline, no reconnects) the host behaves exactly
//! as it did before the resilience layer existed.

use crate::client::{ClientConfig, DnsClientConn, DnsTransport, FailureKind, SessionState};
use crate::doh::DoHClient;
use crate::doh3::DoH3Client;
use crate::doq::DoQClient;
use crate::dot::DoTClient;
use crate::tcp::DoTcpClient;
use crate::udp::DoUdpClient;
use doqlab_dnswire::Message;
use doqlab_simnet::{Ctx, Host, Packet, SimRng, SimTime, SocketAddr};
use doqlab_telemetry::metrics::{self, Counter};
use std::any::Any;

/// Construct a client connection for any of the five transports.
pub fn make_client(
    transport: DnsTransport,
    local: SocketAddr,
    remote: SocketAddr,
    cfg: &ClientConfig,
) -> Box<dyn DnsClientConn> {
    match transport {
        DnsTransport::DoUdp => Box::new(DoUdpClient::new(local, remote, cfg)),
        DnsTransport::DoTcp => Box::new(DoTcpClient::new(local, remote, cfg)),
        DnsTransport::DoT => Box::new(DoTClient::new(local, remote, cfg)),
        DnsTransport::DoH => Box::new(DoHClient::new(local, remote, cfg)),
        DnsTransport::DoQ => Box::new(DoQClient::new(local, remote, cfg)),
        DnsTransport::DoH3 => Box::new(DoH3Client::new(local, remote, cfg)),
    }
}

/// A simulator host owning one DNS client connection.
pub struct DnsClientHost {
    pub conn: Box<dyn DnsClientConn>,
    /// Responses accumulated across the connection's lifetime.
    pub responses: Vec<(SimTime, Message)>,
    started_at: Option<SimTime>,
    // Everything needed to dial a replacement connection.
    transport: DnsTransport,
    local: SocketAddr,
    remote: SocketAddr,
    cfg: ClientConfig,
    /// Queries issued so far, re-sent on a reconnected connection.
    issued: Vec<Message>,
    /// Absolute per-query deadline, armed at start.
    deadline: Option<SimTime>,
    /// Pending reconnect: dial again at this time.
    reconnect_at: Option<SimTime>,
    reconnects_done: u32,
    /// Terminal verdict; once set the host goes quiet.
    terminal: Option<FailureKind>,
}

impl DnsClientHost {
    pub fn new(
        transport: DnsTransport,
        local: SocketAddr,
        remote: SocketAddr,
        cfg: &ClientConfig,
    ) -> Self {
        DnsClientHost {
            conn: make_client(transport, local, remote, cfg),
            responses: Vec::new(),
            started_at: None,
            transport,
            local,
            remote,
            cfg: cfg.clone(),
            issued: Vec::new(),
            deadline: None,
            reconnect_at: None,
            reconnects_done: 0,
            terminal: None,
        }
    }

    /// Queue a query and open the connection (idempotent open).
    pub fn start_with_query(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        self.issued.push(msg.clone());
        self.conn.query(ctx.now, msg);
        let mut out = Vec::new();
        if self.started_at.is_none() {
            self.started_at = Some(ctx.now);
            if let Some(d) = self.cfg.query_deadline {
                self.deadline = Some(ctx.now + d);
            }
            self.conn.start(ctx.now, ctx.rng, &mut out);
        }
        self.conn.poll(ctx.now, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    /// When the connection attempt began.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// Time from first packet to usable session.
    pub fn handshake_time(&self) -> Option<doqlab_simnet::Duration> {
        Some(self.conn.handshake_done_at()? - self.started_at?)
    }

    /// Resumption material captured on this connection.
    pub fn session_state(&mut self) -> SessionState {
        self.conn.session_state()
    }

    /// Why the query run failed, if it did: the host-level verdict
    /// (deadline exceeded, reconnects exhausted) or, failing that, the
    /// live connection's own classification. `None` once any response
    /// arrived.
    pub fn failure(&self) -> Option<FailureKind> {
        if !self.responses.is_empty() {
            return None;
        }
        self.terminal.or_else(|| self.conn.failure())
    }

    /// How many replacement connections were dialed.
    pub fn reconnects(&self) -> u32 {
        self.reconnects_done
    }

    /// Resilience supervision, run after every event: enforce the
    /// per-query deadline, detect a dead connection and schedule or
    /// perform the reconnect. A no-op for default configs.
    fn supervise(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        if self.terminal.is_some() {
            return;
        }
        if let Some(d) = self.deadline {
            if !self.responses.is_empty() {
                self.deadline = None;
            } else if now >= d {
                // The deadline is terminal: abandon the query whatever
                // the transport is doing.
                self.deadline = None;
                self.reconnect_at = None;
                // If the transport already knows why it died, keep that
                // diagnosis; otherwise the deadline itself is the cause.
                self.terminal = Some(self.conn.failure().unwrap_or(FailureKind::DeadlineExceeded));
                self.conn.close(now, out);
                return;
            }
        }
        if let Some(at) = self.reconnect_at {
            if now >= at {
                self.reconnect_at = None;
                self.reconnect(now, rng, out);
            }
            return;
        }
        if self.cfg.reconnect_max > 0 && self.responses.is_empty() && self.conn.failed() {
            if self.reconnects_done < self.cfg.reconnect_max {
                // Exponential backoff: base * 2^attempts.
                let backoff = self
                    .cfg
                    .reconnect_backoff
                    .saturating_mul(1u32 << self.reconnects_done.min(16));
                self.reconnect_at = Some(now + backoff);
            } else {
                self.terminal = self.conn.failure();
            }
        }
    }

    /// Replace the dead connection with a fresh one, re-issuing every
    /// query and reusing any resumption material gathered so far.
    fn reconnect(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        metrics::count(Counter::Reconnects, 1);
        let session = self.conn.session_state();
        let mut cfg = self.cfg.clone();
        if !session.is_empty() {
            cfg.session = session;
        }
        self.conn = make_client(self.transport, self.local, self.remote, &cfg);
        self.reconnects_done += 1;
        for q in &self.issued {
            self.conn.query(now, q);
        }
        self.conn.start(now, rng, out);
        self.conn.poll(now, out);
    }
}

impl Host for DnsClientHost {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let mut out = Vec::new();
        // Once the verdict is terminal or a replacement dial is
        // pending, the connection is dead: late packets addressed to it
        // are dropped instead of pumped into closed state machines.
        if self.terminal.is_none() && self.reconnect_at.is_none() {
            self.conn.on_packet(ctx.now, &pkt, &mut out);
            self.conn.poll(ctx.now, &mut out);
            self.responses.extend(self.conn.take_responses());
        }
        self.supervise(ctx.now, ctx.rng, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = Vec::new();
        if self.terminal.is_none() && self.reconnect_at.is_none() {
            self.conn.poll(ctx.now, &mut out);
            self.responses.extend(self.conn.take_responses());
        }
        self.supervise(ctx.now, ctx.rng, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        // Once terminal, the host goes quiet: re-advertising the dead
        // connection's timers would spin the event loop forever.
        if self.terminal.is_some() {
            return None;
        }
        // While a replacement dial is pending the dead connection's
        // timers are irrelevant (and would spin the loop, since its
        // wakeups are no longer delivered).
        let mut next = match self.reconnect_at {
            Some(at) => Some(at),
            None => self.conn.next_timeout(),
        };
        if self.responses.is_empty() {
            if let Some(d) = self.deadline {
                next = Some(next.map_or(d, |n| n.min(d)));
            }
        }
        next
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
