//! Simulator-host glue: wraps any [`DnsClientConn`] as a
//! [`doqlab_simnet::Host`], which is how the measurement harness and
//! the DNS proxy drive client connections.

use crate::client::{ClientConfig, DnsClientConn, DnsTransport, SessionState};
use crate::doh::DoHClient;
use crate::doh3::DoH3Client;
use crate::doq::DoQClient;
use crate::dot::DoTClient;
use crate::tcp::DoTcpClient;
use crate::udp::DoUdpClient;
use doqlab_dnswire::Message;
use doqlab_simnet::{Ctx, Host, Packet, SimTime, SocketAddr};
use std::any::Any;

/// Construct a client connection for any of the five transports.
pub fn make_client(
    transport: DnsTransport,
    local: SocketAddr,
    remote: SocketAddr,
    cfg: &ClientConfig,
) -> Box<dyn DnsClientConn> {
    match transport {
        DnsTransport::DoUdp => Box::new(DoUdpClient::new(local, remote, cfg)),
        DnsTransport::DoTcp => Box::new(DoTcpClient::new(local, remote, cfg)),
        DnsTransport::DoT => Box::new(DoTClient::new(local, remote, cfg)),
        DnsTransport::DoH => Box::new(DoHClient::new(local, remote, cfg)),
        DnsTransport::DoQ => Box::new(DoQClient::new(local, remote, cfg)),
        DnsTransport::DoH3 => Box::new(DoH3Client::new(local, remote, cfg)),
    }
}

/// A simulator host owning one DNS client connection.
pub struct DnsClientHost {
    pub conn: Box<dyn DnsClientConn>,
    /// Responses accumulated across the connection's lifetime.
    pub responses: Vec<(SimTime, Message)>,
    started_at: Option<SimTime>,
}

impl DnsClientHost {
    pub fn new(
        transport: DnsTransport,
        local: SocketAddr,
        remote: SocketAddr,
        cfg: &ClientConfig,
    ) -> Self {
        DnsClientHost {
            conn: make_client(transport, local, remote, cfg),
            responses: Vec::new(),
            started_at: None,
        }
    }

    /// Queue a query and open the connection (idempotent open).
    pub fn start_with_query(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        self.conn.query(ctx.now, msg);
        let mut out = Vec::new();
        if self.started_at.is_none() {
            self.started_at = Some(ctx.now);
            self.conn.start(ctx.now, ctx.rng, &mut out);
        }
        self.conn.poll(ctx.now, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    /// When the connection attempt began.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// Time from first packet to usable session.
    pub fn handshake_time(&self) -> Option<doqlab_simnet::Duration> {
        Some(self.conn.handshake_done_at()? - self.started_at?)
    }

    /// Resumption material captured on this connection.
    pub fn session_state(&mut self) -> SessionState {
        self.conn.session_state()
    }
}

impl Host for DnsClientHost {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let mut out = Vec::new();
        self.conn.on_packet(ctx.now, &pkt, &mut out);
        self.conn.poll(ctx.now, &mut out);
        self.responses.extend(self.conn.take_responses());
        for p in out {
            ctx.send(p);
        }
    }

    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = Vec::new();
        self.conn.poll(ctx.now, &mut out);
        self.responses.extend(self.conn.take_responses());
        for p in out {
            ctx.send(p);
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        self.conn.next_timeout()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
