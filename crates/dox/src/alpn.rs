//! DoQ ALPN identifiers and their stream mappings.
//!
//! The paper's tooling supports `doq` (RFC 9250) plus the draft
//! versions `doq-i00` … `doq-i11`, and observes `doq-i02` in 87.4% of
//! measurements, `doq-i03` in 10.8% and `doq-i00` in 1.8%. The relevant
//! behavioural difference: from `doq-i03` on, messages on a stream are
//! prefixed with a 2-byte length so one query can have several
//! responses (e.g. XFR); earlier drafts put the bare DNS message on the
//! stream and close it.

/// A DoQ ALPN identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DoqAlpn {
    /// RFC 9250 (`doq`).
    Rfc9250,
    /// `doq-iNN` draft.
    Draft(u8),
}

impl DoqAlpn {
    /// Every identifier the tooling supports, newest first (the order a
    /// client offers them).
    pub fn all_supported() -> Vec<DoqAlpn> {
        let mut v = vec![DoqAlpn::Rfc9250];
        for n in (0..=11).rev() {
            v.push(DoqAlpn::Draft(n));
        }
        v
    }

    /// The wire bytes of the identifier.
    pub fn wire(&self) -> Vec<u8> {
        match self {
            DoqAlpn::Rfc9250 => b"doq".to_vec(),
            DoqAlpn::Draft(n) => format!("doq-i{n:02}").into_bytes(),
        }
    }

    pub fn from_wire(bytes: &[u8]) -> Option<DoqAlpn> {
        if bytes == b"doq" {
            return Some(DoqAlpn::Rfc9250);
        }
        let s = std::str::from_utf8(bytes).ok()?;
        let n = s.strip_prefix("doq-i")?.parse::<u8>().ok()?;
        (n <= 11).then_some(DoqAlpn::Draft(n))
    }

    /// Whether stream messages carry the 2-byte length prefix
    /// (introduced in draft -03 and kept by RFC 9250).
    pub fn uses_length_prefix(&self) -> bool {
        match self {
            DoqAlpn::Rfc9250 => true,
            DoqAlpn::Draft(n) => *n >= 3,
        }
    }
}

impl std::fmt::Display for DoqAlpn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DoqAlpn::Rfc9250 => f.write_str("doq"),
            DoqAlpn::Draft(n) => write!(f, "doq-i{n:02}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        for alpn in DoqAlpn::all_supported() {
            assert_eq!(DoqAlpn::from_wire(&alpn.wire()), Some(alpn));
        }
        assert_eq!(DoqAlpn::from_wire(b"doq-i02"), Some(DoqAlpn::Draft(2)));
        assert_eq!(DoqAlpn::from_wire(b"doq"), Some(DoqAlpn::Rfc9250));
        assert_eq!(DoqAlpn::from_wire(b"h3"), None);
        assert_eq!(DoqAlpn::from_wire(b"doq-i12"), None);
    }

    #[test]
    fn all_supported_covers_paper_tooling() {
        // "doq for the standard, as well as doq-i00 to doq-i11".
        let all = DoqAlpn::all_supported();
        assert_eq!(all.len(), 13);
        assert_eq!(all[0], DoqAlpn::Rfc9250);
    }

    #[test]
    fn length_prefix_rule_matches_drafts() {
        assert!(!DoqAlpn::Draft(0).uses_length_prefix());
        assert!(!DoqAlpn::Draft(2).uses_length_prefix());
        assert!(DoqAlpn::Draft(3).uses_length_prefix());
        assert!(DoqAlpn::Draft(11).uses_length_prefix());
        assert!(DoqAlpn::Rfc9250.uses_length_prefix());
    }

    #[test]
    fn display_matches_wire() {
        for alpn in DoqAlpn::all_supported() {
            assert_eq!(alpn.to_string().into_bytes(), alpn.wire());
        }
    }
}
