//! DoH: DNS over HTTPS (RFC 8484) — HTTP/2 POST requests with
//! `application/dns-message` bodies over TLS over TCP, port 443.

use crate::client::{ClientConfig, ConnMetadata, DnsClientConn, FailureKind, SessionState};
use crate::tcp::{classify_tcp_failure, segments_to_packets};
use doqlab_dnswire::Message;
use doqlab_netstack::http2::{doh_request_headers, doh_response_headers, H2Connection};
use doqlab_netstack::tcp::{TcpConfig, TcpSegment, TcpSocket};
use doqlab_netstack::tls::{TlsClient, TlsConfig};
use doqlab_simnet::{Packet, SimRng, SimTime, SocketAddr};
use doqlab_telemetry::metrics::{self, Counter};
use doqlab_telemetry::{sink, Event};

/// A DoH client connection.
#[derive(Debug)]
pub struct DoHClient {
    tcp: TcpSocket,
    tls: TlsClient,
    tls_started: bool,
    h2: H2Connection,
    authority: String,
    responses: Vec<(SimTime, Message)>,
    /// The presented ticket permits 0-RTT: requests issued before the
    /// handshake ride the first flight as early data instead of
    /// queueing (rejects replay after the handshake).
    early_permitted: bool,
    /// Queries issued before the connection was usable.
    queued: Vec<Message>,
    outstanding: usize,
    session_out: SessionState,
}

impl DoHClient {
    pub fn new(local: SocketAddr, remote: SocketAddr, cfg: &ClientConfig) -> Self {
        let tls_cfg = TlsConfig {
            alpn: vec![b"h2".to_vec()],
            enable_0rtt: cfg.enable_0rtt,
            ..TlsConfig::default()
        };
        let early_permitted = cfg.enable_0rtt
            && cfg
                .session
                .tls_ticket
                .as_ref()
                .is_some_and(|t| t.allows_early_data);
        DoHClient {
            tcp: TcpSocket::client(local, remote, 0, TcpConfig::default()),
            tls: TlsClient::new(tls_cfg, cfg.session.tls_ticket.clone()),
            tls_started: false,
            h2: H2Connection::client(),
            early_permitted,
            authority: format!("dns-{}.resolver", remote.ip),
            responses: Vec::new(),
            queued: Vec::new(),
            outstanding: 0,
            session_out: SessionState::default(),
        }
    }

    fn send_request(&mut self, now: SimTime, msg: &Message) {
        let body = msg.encode();
        let headers = doh_request_headers(&self.authority, body.len());
        let header_refs: Vec<(&str, &str)> = headers
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_str()))
            .collect();
        let stream_id = self.h2.send_request(&header_refs, &body);
        sink::emit(now.as_nanos(), || Event::HttpRequestSent {
            protocol: "h2",
            stream_id: stream_id as u64,
        });
        metrics::count(Counter::HttpRequestsSent, 1);
        self.outstanding += 1;
    }

    fn pump(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        // Flush queued queries once TLS is up (HTTP/2 bytes themselves
        // ride as TLS application data, including 0-RTT).
        if self.tls.is_connected() && !self.queued.is_empty() {
            for msg in std::mem::take(&mut self.queued) {
                self.send_request(now, &msg);
            }
        }
        // TCP -> TLS -> HTTP/2.
        let data = self.tcp.recv();
        if !data.is_empty() {
            self.tls.read_wire(now, &data);
        }
        let plain = self.tls.read_app();
        if !plain.is_empty() {
            self.h2.read_wire(&plain);
        }
        for m in self.h2.take_messages() {
            let status = m
                .header(":status")
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(0);
            let stream_id = m.stream_id as u64;
            sink::emit(now.as_nanos(), || Event::HttpResponseReceived {
                protocol: "h2",
                stream_id,
                status,
            });
            metrics::count(Counter::HttpResponsesReceived, 1);
            if status == 200 {
                if let Ok(msg) = Message::decode(&m.body) {
                    self.outstanding = self.outstanding.saturating_sub(1);
                    self.responses.push((now, msg));
                }
            }
        }
        for ticket in self.tls.take_tickets() {
            self.session_out.tls_ticket = Some(ticket);
        }
        // HTTP/2 -> TLS -> TCP.
        let h2_out = self.h2.take_output();
        if !h2_out.is_empty() {
            self.tls.write_app(&h2_out);
        }
        // A dying socket (closed by the resilience layer, or reset) no
        // longer accepts data; drop the TLS output rather than
        // asserting.
        let wire = self.tls.take_output();
        if !wire.is_empty() && self.tcp.can_send() {
            self.tcp.send(&wire);
        }
        let (local, remote) = (self.tcp.local, self.tcp.remote);
        segments_to_packets(local, remote, self.tcp.poll(now), out);
    }
}

impl DnsClientConn for DoHClient {
    fn start(&mut self, now: SimTime, _rng: &mut SimRng, out: &mut Vec<Packet>) {
        self.tcp.open(now);
        self.pump(now, out);
    }

    fn query(&mut self, now: SimTime, msg: &Message) {
        if self.tls.is_connected() {
            self.send_request(now, msg);
        } else if self.early_permitted && !self.tls_started {
            // The H2 request bytes join the preface in the TLS engine's
            // pending buffer and ride the ClientHello as 0-RTT early
            // data; a rejection replays them after the handshake.
            self.send_request(now, msg);
        } else {
            self.queued.push(msg.clone());
        }
    }

    fn on_packet(&mut self, now: SimTime, pkt: &Packet, out: &mut Vec<Packet>) {
        if let Some(seg) = TcpSegment::decode(&pkt.payload) {
            self.tcp.on_segment(now, &seg);
        }
        if self.tcp.is_established() && !self.tls_started {
            self.tls_started = true;
            self.tls.start(now);
        }
        self.pump(now, out);
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        if self.tcp.is_established() && !self.tls_started {
            self.tls_started = true;
            self.tls.start(now);
        }
        self.pump(now, out);
    }

    fn next_timeout(&self) -> Option<SimTime> {
        self.tcp.next_timeout()
    }

    fn take_responses(&mut self) -> Vec<(SimTime, Message)> {
        std::mem::take(&mut self.responses)
    }

    fn handshake_done_at(&self) -> Option<SimTime> {
        self.tls.connected_at()
    }

    fn failed(&self) -> bool {
        self.tcp.is_reset() || self.tls.error().is_some()
    }

    fn failure(&self) -> Option<FailureKind> {
        if self.tls.error().is_some() {
            return Some(FailureKind::HandshakeFail);
        }
        classify_tcp_failure(&self.tcp)
    }

    fn session_state(&mut self) -> SessionState {
        std::mem::take(&mut self.session_out)
    }

    fn close(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.h2.go_away();
        self.tcp.close();
        self.pump(now, out);
    }

    fn metadata(&self) -> ConnMetadata {
        ConnMetadata {
            tls13: self
                .tls
                .negotiated_version()
                .map(|v| v == doqlab_netstack::tls::TlsVersion::Tls13),
            zero_rtt: self.tls.early_data_accepted() == Some(true),
            ..ConnMetadata::default()
        }
    }
}

/// Build the HTTP/2 response for a DoH query (server side helper).
pub fn doh_response_parts(msg: &Message) -> (Vec<(String, String)>, Vec<u8>) {
    let body = msg.encode();
    (doh_response_headers(body.len()), body)
}
