//! DoQ: DNS over Dedicated QUIC Connections (RFC 9250).
//!
//! Each query is one client-initiated bidirectional stream; the DNS
//! message ID is zero on the wire and correlation happens by stream.
//! ALPN decides the stream mapping: `doq-i03`+ and `doq` prefix each
//! message with a 2-byte length, earlier drafts place the bare message
//! on the stream. Session Resumption, address-validation tokens and
//! remembered QUIC versions ride in via [`SessionState`], following the
//! RFC 9250 recommendation the paper implements (tokens only together
//! with resumption).

use crate::alpn::DoqAlpn;
use crate::client::{ClientConfig, ConnMetadata, DnsClientConn, FailureKind, SessionState};
use doqlab_dnswire::{framing, LengthPrefixedReader, Message};
use doqlab_netstack::quic::{QuicConfig, QuicConnection, QuicError, QUIC_V1};
use doqlab_netstack::tls::TlsConfig;
use doqlab_simnet::{Packet, SimRng, SimTime, SocketAddr};
use std::collections::HashMap;

/// Classify a dead QUIC connection for the failure taxonomy. `None`
/// while the connection is healthy or the error struck after the
/// session was already established and usable. Shared by DoQ and DoH3.
pub(crate) fn classify_quic_failure(conn: &QuicConnection) -> Option<FailureKind> {
    match conn.error()? {
        // Path validation fails *after* establishment (a rebind onto an
        // unreachable path); the connection is dead regardless, and
        // what the query experiences is unanswered retransmissions.
        QuicError::PathValidationFailed => Some(FailureKind::Timeout),
        _ if conn.is_established() => None,
        QuicError::IdleTimeout | QuicError::TooManyRetries => Some(FailureKind::Timeout),
        QuicError::HandshakeFailed(_) | QuicError::NoCommonAlpn | QuicError::NoCommonVersion => {
            Some(FailureKind::HandshakeFail)
        }
        QuicError::PeerClosed(_) => Some(FailureKind::Reset),
    }
}

/// A DoQ client connection.
#[derive(Debug)]
pub struct DoQClient {
    quic_cfg: QuicConfig,
    local: SocketAddr,
    remote: SocketAddr,
    initial_version: u32,
    session_in: SessionState,
    conn: Option<QuicConnection>,
    /// Queries waiting for the stream mapping to be known.
    queued: Vec<Message>,
    /// stream id -> (original query id, response reassembly).
    inflight: HashMap<u64, (u16, LengthPrefixedReader, Vec<u8>)>,
    alpn: Option<DoqAlpn>,
    responses: Vec<(SimTime, Message)>,
    session_out: SessionState,
    early_permitted: bool,
}

impl DoQClient {
    pub fn new(local: SocketAddr, remote: SocketAddr, cfg: &ClientConfig) -> Self {
        let tls = TlsConfig {
            alpn: DoqAlpn::all_supported().iter().map(|a| a.wire()).collect(),
            enable_0rtt: cfg.enable_0rtt,
            ..TlsConfig::default()
        };
        let early_permitted = cfg.enable_0rtt
            && cfg
                .session
                .tls_ticket
                .as_ref()
                .is_some_and(|t| t.allows_early_data);
        DoQClient {
            quic_cfg: QuicConfig {
                tls,
                ..QuicConfig::default()
            },
            local,
            remote,
            initial_version: cfg.session.quic_version.unwrap_or(QUIC_V1),
            session_in: cfg.session.clone(),
            conn: None,
            queued: Vec::new(),
            inflight: HashMap::new(),
            alpn: None,
            responses: Vec::new(),
            session_out: SessionState::default(),
            early_permitted,
        }
    }

    /// Negotiated (or, pre-handshake, ticket-implied) ALPN.
    pub fn doq_alpn(&self) -> Option<DoqAlpn> {
        self.alpn
    }

    fn try_resolve_alpn(&mut self) {
        if self.alpn.is_some() {
            return;
        }
        if let Some(conn) = &self.conn {
            if let Some(wire) = conn.negotiated_alpn() {
                self.alpn = DoqAlpn::from_wire(wire);
                return;
            }
        }
        if self.early_permitted {
            // Resuming with 0-RTT: the mapping is the ticket's ALPN.
            if let Some(t) = &self.session_in.tls_ticket {
                self.alpn = DoqAlpn::from_wire(&t.alpn);
            }
        }
    }

    fn flush_queries(&mut self) {
        let Some(alpn) = self.alpn else { return };
        let Some(conn) = &mut self.conn else { return };
        for mut msg in std::mem::take(&mut self.queued) {
            let orig_id = msg.header.id;
            msg.header.id = 0; // RFC 9250 §4.2.1
            let wire = msg.encode();
            let payload = if alpn.uses_length_prefix() {
                framing::frame(&wire)
            } else {
                wire
            };
            let stream = conn.open_bi();
            conn.stream_send(stream, &payload, true);
            self.inflight
                .insert(stream, (orig_id, LengthPrefixedReader::new(), Vec::new()));
        }
    }

    fn pump(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.try_resolve_alpn();
        if self.conn.as_ref().is_some_and(|c| c.is_established()) || self.early_permitted {
            self.flush_queries();
        }
        let Some(conn) = &mut self.conn else { return };
        // Read responses.
        let mut done = Vec::new();
        for (&stream, (orig_id, reader, raw)) in self.inflight.iter_mut() {
            let (data, fin) = conn.stream_recv(stream);
            let use_prefix = self.alpn.is_some_and(|a| a.uses_length_prefix());
            if use_prefix {
                reader.push(&data);
                if let Some(wire) = reader.next_message() {
                    if let Ok(mut msg) = Message::decode(&wire) {
                        msg.header.id = *orig_id;
                        self.responses.push((now, msg));
                        done.push(stream);
                    }
                }
            } else {
                raw.extend_from_slice(&data);
                if fin {
                    if let Ok(mut msg) = Message::decode(raw) {
                        msg.header.id = *orig_id;
                        self.responses.push((now, msg));
                    }
                    done.push(stream);
                }
            }
        }
        for s in done {
            self.inflight.remove(&s);
        }
        // Capture resumption material.
        if conn.is_established() {
            for ticket in conn.take_tickets() {
                self.session_out.tls_ticket = Some(ticket);
            }
            if let Some(token) = conn.take_new_token() {
                self.session_out.quic_token = Some(token);
            }
            self.session_out.quic_version = Some(conn.version());
        }
        for dgram in conn.poll_transmit(now) {
            out.push(Packet::udp(self.local, self.remote, dgram));
        }
    }
}

impl DnsClientConn for DoQClient {
    fn start(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>) {
        assert!(self.conn.is_none(), "start twice");
        // RFC 9250: tokens should only be used together with Session
        // Resumption (the paper follows this recommendation).
        let token = if self.session_in.tls_ticket.is_some() {
            self.session_in.quic_token.clone()
        } else {
            None
        };
        self.conn = Some(QuicConnection::client(
            self.quic_cfg.clone(),
            self.local,
            self.remote,
            self.initial_version,
            self.session_in.tls_ticket.clone(),
            token,
            rng,
            now,
        ));
        self.pump(now, out);
    }

    fn query(&mut self, now: SimTime, msg: &Message) {
        self.queued.push(msg.clone());
        let _ = now;
    }

    fn on_packet(&mut self, now: SimTime, pkt: &Packet, out: &mut Vec<Packet>) {
        if let Some(conn) = &mut self.conn {
            conn.handle_datagram(now, &pkt.payload);
        }
        self.pump(now, out);
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.pump(now, out);
    }

    fn next_timeout(&self) -> Option<SimTime> {
        self.conn.as_ref().and_then(|c| c.next_timeout())
    }

    fn take_responses(&mut self) -> Vec<(SimTime, Message)> {
        std::mem::take(&mut self.responses)
    }

    fn handshake_done_at(&self) -> Option<SimTime> {
        self.conn.as_ref().and_then(|c| c.established_at())
    }

    fn failed(&self) -> bool {
        self.failure().is_some()
    }

    fn failure(&self) -> Option<FailureKind> {
        classify_quic_failure(self.conn.as_ref()?)
    }

    fn session_state(&mut self) -> SessionState {
        std::mem::take(&mut self.session_out)
    }

    fn close(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        if let Some(conn) = &mut self.conn {
            // DOQ_NO_ERROR (0x0).
            conn.close(0);
        }
        self.pump(now, out);
    }

    fn rebind(&mut self, now: SimTime, new_local: SocketAddr, out: &mut Vec<Packet>) {
        self.local = new_local;
        if let Some(conn) = &mut self.conn {
            conn.rebind(now, new_local);
        }
        // Flush immediately: the PATH_CHALLENGE probe and any pending
        // retransmissions leave from the new address right away.
        self.pump(now, out);
    }

    fn metadata(&self) -> ConnMetadata {
        ConnMetadata {
            quic_version: self.conn.as_ref().map(|c| c.version()),
            doq_alpn: self.alpn.map(|a| a.to_string()),
            tls13: Some(true), // QUIC mandates TLS 1.3
            resumed: self.conn.as_ref().is_some_and(|c| c.is_resumption()),
            zero_rtt: self
                .conn
                .as_ref()
                .and_then(|c| c.early_data_accepted())
                .unwrap_or(false),
        }
    }
}

impl DoQClient {
    /// Number of version-negotiation round trips this connection paid.
    pub fn vn_round_trips(&self) -> u32 {
        self.conn.as_ref().map_or(0, |c| c.vn_round_trips)
    }

    /// Negotiated QUIC version.
    pub fn quic_version(&self) -> Option<u32> {
        self.conn.as_ref().map(|c| c.version())
    }
}
