//! DoUDP: classic DNS over UDP.
//!
//! The transport has no recovery, so the *application* retries — the
//! paper attributes DoUDP's long-tail outliers to Chromium's 5-second
//! application-layer retransmit (resolv.conf default), versus the 1 s
//! transport-layer timeouts of TCP and QUIC. That asymmetry is
//! reproduced here.

use crate::client::{ClientConfig, DnsClientConn, SessionState};
use doqlab_dnswire::Message;
use doqlab_simnet::{Duration, Packet, SimRng, SimTime, SocketAddr};
use std::collections::HashMap;

/// A DoUDP client "connection" (a socket pair, really).
#[derive(Debug)]
pub struct DoUdpClient {
    local: SocketAddr,
    remote: SocketAddr,
    retry_timeout: Duration,
    max_retries: u32,
    started_at: Option<SimTime>,
    /// id -> (encoded query, retries left, next retry time). Entries
    /// whose retries are exhausted are removed at their final deadline,
    /// so `next_timeout` never advertises a deadline nothing will act
    /// on.
    pending: HashMap<u16, (Vec<u8>, u32, SimTime)>,
    responses: Vec<(SimTime, Message)>,
    failed: bool,
    /// Queries issued before `start`.
    queued: Vec<Vec<u8>>,
    /// Queries accepted after `start`, transmitted on the next poll to
    /// keep the sans-I/O trait uniform (`query` cannot emit packets).
    ready: Vec<Vec<u8>>,
    /// When the earliest `ready` entry was queued — the immediate
    /// wakeup `next_timeout` advertises until the next poll drains it.
    ready_since: Option<SimTime>,
}

impl DoUdpClient {
    pub fn new(local: SocketAddr, remote: SocketAddr, cfg: &ClientConfig) -> Self {
        DoUdpClient {
            local,
            remote,
            retry_timeout: cfg.udp_retry_timeout,
            max_retries: cfg.udp_max_retries,
            started_at: None,
            pending: HashMap::new(),
            responses: Vec::new(),
            failed: false,
            queued: Vec::new(),
            ready: Vec::new(),
            ready_since: None,
        }
    }

    fn transmit(&mut self, now: SimTime, wire: Vec<u8>, out: &mut Vec<Packet>) {
        let msg = Message::decode(&wire).expect("own encoding");
        self.pending.insert(
            msg.header.id,
            (wire.clone(), self.max_retries, now + self.retry_timeout),
        );
        out.push(Packet::udp(self.local, self.remote, wire));
    }
}

impl DnsClientConn for DoUdpClient {
    fn start(&mut self, now: SimTime, _rng: &mut SimRng, out: &mut Vec<Packet>) {
        self.started_at = Some(now);
        for wire in std::mem::take(&mut self.queued) {
            self.transmit(now, wire, out);
        }
    }

    fn query(&mut self, now: SimTime, msg: &Message) {
        let wire = msg.encode();
        if self.started_at.is_some() {
            // An earlier version faked this by inserting a pending
            // entry with an inflated retry count and an already-past
            // deadline, which corrupted the retry bookkeeping; keep a
            // dedicated ready queue instead.
            self.ready.push(wire);
            self.ready_since.get_or_insert(now);
        } else {
            self.queued.push(wire);
        }
    }

    fn on_packet(&mut self, now: SimTime, pkt: &Packet, _out: &mut Vec<Packet>) {
        let Ok(msg) = Message::decode(&pkt.payload) else {
            return;
        };
        if !msg.header.response {
            return;
        }
        if self.pending.remove(&msg.header.id).is_some() {
            self.responses.push((now, msg));
        }
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        // Initial transmissions for queries issued since the last poll.
        for wire in std::mem::take(&mut self.ready) {
            self.transmit(now, wire, out);
        }
        self.ready_since = None;
        let due: Vec<u16> = self
            .pending
            .iter()
            .filter(|(_, (_, _, at))| *at <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in due {
            let (wire, retries, _) = self.pending.remove(&id).expect("listed");
            if retries == 0 {
                self.failed = true;
                continue;
            }
            self.pending
                .insert(id, (wire.clone(), retries - 1, now + self.retry_timeout));
            out.push(Packet::udp(self.local, self.remote, wire));
        }
    }

    fn next_timeout(&self) -> Option<SimTime> {
        let pending = self.pending.values().map(|(_, _, at)| *at).min();
        match (self.ready_since, pending) {
            (Some(r), Some(p)) => Some(r.min(p)),
            (Some(r), None) => Some(r),
            (None, p) => p,
        }
    }

    fn take_responses(&mut self) -> Vec<(SimTime, Message)> {
        std::mem::take(&mut self.responses)
    }

    fn handshake_done_at(&self) -> Option<SimTime> {
        self.started_at // connectionless: usable immediately
    }

    fn failed(&self) -> bool {
        self.failed
    }

    fn session_state(&mut self) -> SessionState {
        SessionState::default()
    }

    fn close(&mut self, _now: SimTime, _out: &mut Vec<Packet>) {
        self.pending.clear();
        self.ready.clear();
        self.ready_since = None;
    }
}

/// Server side: stateless — decode, hand to the resolver logic, encode.
/// Provided as a helper for [`crate::server::DnsServerSet`].
pub fn decode_udp_query(pkt: &Packet) -> Option<Message> {
    Message::decode(&pkt.payload)
        .ok()
        .filter(|m| !m.header.response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use doqlab_dnswire::{Name, RecordType};
    use doqlab_simnet::Ipv4Addr;

    fn sa(h: u8, p: u16) -> SocketAddr {
        SocketAddr::new(Ipv4Addr::new(10, 0, 0, h), p)
    }

    fn query(id: u16) -> Message {
        Message::query(id, Name::parse("google.com").unwrap(), RecordType::A)
    }

    fn client() -> DoUdpClient {
        DoUdpClient::new(sa(1, 5000), sa(2, 53), &ClientConfig::default())
    }

    #[test]
    fn query_is_sent_on_start() {
        let mut c = client();
        let mut rng = SimRng::new(1);
        c.query(SimTime::ZERO, &query(7));
        let mut out = Vec::new();
        c.start(SimTime::ZERO, &mut rng, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst.port, 53);
        assert_eq!(c.handshake_done_at(), Some(SimTime::ZERO));
    }

    #[test]
    fn response_is_matched_by_id() {
        let mut c = client();
        let mut rng = SimRng::new(1);
        c.query(SimTime::ZERO, &query(7));
        let mut out = Vec::new();
        c.start(SimTime::ZERO, &mut rng, &mut out);
        let resp = Message::response_to(&query(7), vec![]);
        let pkt = Packet::udp(sa(2, 53), sa(1, 5000), resp.encode());
        c.on_packet(SimTime::from_millis(30), &pkt, &mut out);
        let responses = c.take_responses();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].0, SimTime::from_millis(30));
        // Mismatched / duplicate ids are ignored.
        c.on_packet(SimTime::from_millis(31), &pkt, &mut out);
        assert!(c.take_responses().is_empty());
    }

    #[test]
    fn retransmits_after_5_seconds() {
        let mut c = client();
        let mut rng = SimRng::new(1);
        c.query(SimTime::ZERO, &query(7));
        let mut out = Vec::new();
        c.start(SimTime::ZERO, &mut rng, &mut out);
        out.clear();
        assert_eq!(c.next_timeout(), Some(SimTime::from_secs(5)));
        c.poll(SimTime::from_secs(4), &mut out);
        assert!(out.is_empty(), "no retry before the 5 s deadline");
        c.poll(SimTime::from_secs(5), &mut out);
        assert_eq!(out.len(), 1, "one retry at 5 s");
    }

    #[test]
    fn gives_up_after_max_retries() {
        let mut c = client();
        let mut rng = SimRng::new(1);
        c.query(SimTime::ZERO, &query(7));
        let mut out = Vec::new();
        c.start(SimTime::ZERO, &mut rng, &mut out);
        for _ in 0..5 {
            let Some(now) = c.next_timeout() else { break };
            c.poll(now, &mut out);
        }
        assert!(c.failed());
        assert_eq!(c.next_timeout(), None);
    }

    #[test]
    fn no_session_state() {
        let mut c = client();
        assert!(c.session_state().is_empty());
    }

    #[test]
    fn late_query_keeps_clean_retry_bookkeeping() {
        use crate::client::FailureKind;
        let mut c = client();
        let mut rng = SimRng::new(1);
        let mut out = Vec::new();
        c.start(SimTime::ZERO, &mut rng, &mut out);
        // Issue a query after start: it must request an immediate
        // wakeup, transmit on the next poll, and then carry a normal
        // retry deadline — not a stale past one.
        c.query(SimTime::from_millis(10), &query(9));
        assert_eq!(c.next_timeout(), Some(SimTime::from_millis(10)));
        c.poll(SimTime::from_millis(10), &mut out);
        assert_eq!(out.len(), 1, "transmitted on the poll after query()");
        let deadline = SimTime::from_millis(10) + Duration::from_secs(5);
        assert_eq!(c.next_timeout(), Some(deadline));
        // Full budget: one initial transmission plus `max_retries`
        // retransmissions (2 by default), then terminal failure with
        // the exhausted entry removed at its final deadline.
        let mut sends = 1;
        for _ in 0..10 {
            let Some(t) = c.next_timeout() else { break };
            assert!(t > SimTime::from_millis(10), "no stale past deadline");
            out.clear();
            c.poll(t, &mut out);
            sends += out.len();
        }
        assert_eq!(sends, 3);
        assert!(c.failed());
        assert_eq!(c.failure(), Some(FailureKind::Timeout));
        assert_eq!(c.next_timeout(), None, "exhausted entries are removed");
    }

    #[test]
    fn exhausted_entry_is_removed_at_final_deadline() {
        let mut c = client();
        let mut rng = SimRng::new(1);
        c.query(SimTime::ZERO, &query(7));
        let mut out = Vec::new();
        c.start(SimTime::ZERO, &mut rng, &mut out);
        // Walk every advertised deadline; each must be acted on (a
        // retransmission or the terminal removal), never re-advertised.
        let mut prev = SimTime::ZERO;
        while let Some(t) = c.next_timeout() {
            assert!(t > prev, "deadline {t} not after {prev}");
            prev = t;
            c.poll(t, &mut out);
        }
        assert!(c.failed());
    }
}
