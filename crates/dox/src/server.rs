//! The resolver-side server set: all five DNS transports behind one
//! IP, like the 313 verified DoX resolvers of the study.
//!
//! [`DnsServerSet`] owns a UDP responder, TCP and TLS listeners, an
//! HTTP/2 endpoint and one QUIC server per DoQ port, and surfaces
//! decoded queries as [`ServerEvent`]s. The owning host (the resolver
//! in `doqlab-resolver`) answers through [`DnsServerSet::respond`].
//! Feature support — which the paper probes per resolver — is all in
//! [`ServerConfig`].

use crate::alpn::DoqAlpn;
use crate::client::DnsTransport;
use crate::doh::doh_response_parts;
use crate::ports;
use doqlab_dnswire::{framing, EdnsOption, LengthPrefixedReader, Message};
use doqlab_netstack::http2::H2Connection;
use doqlab_netstack::quic::{QuicConfig, QuicServer};
use doqlab_netstack::tcp::{TcpConfig, TcpListener, TcpSegment};
use doqlab_netstack::tls::{TlsConfig, TlsServer, TlsVersion};
use doqlab_simnet::{Duration, Ipv4Addr, Packet, SimTime, SocketAddr, Transport};
use std::collections::HashMap;

/// Per-resolver feature configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    pub ip: Ipv4Addr,
    /// Identity for TLS tickets and QUIC tokens.
    pub server_id: u64,
    pub supports_udp: bool,
    pub supports_tcp: bool,
    pub supports_dot: bool,
    pub supports_doh: bool,
    pub supports_doq: bool,
    /// TLS versions, preference order (~99% of resolvers: 1.3).
    pub tls_versions: Vec<TlsVersion>,
    /// X.509 chain size; some resolvers exceed the QUIC amplification
    /// budget with theirs.
    pub cert_chain_len: u16,
    /// 0-RTT support (the paper found none).
    pub enable_0rtt: bool,
    /// TCP Fast Open support (the paper found none).
    pub enable_tfo: bool,
    /// edns-tcp-keepalive support (the paper found none).
    pub tcp_keepalive: bool,
    /// Close DoTCP connections right after responding (observed
    /// behaviour without keepalive).
    pub close_tcp_after_response: bool,
    /// QUIC versions, preference order.
    pub quic_versions: Vec<u32>,
    /// DoQ ALPN identifiers this resolver accepts, preference order
    /// (most deployed resolvers in the study: only `doq-i02`).
    pub doq_alpns: Vec<DoqAlpn>,
    /// UDP ports answering DoQ (784 / 853 / 8853).
    pub doq_ports: Vec<u16>,
    /// Demand Retry-based address validation.
    pub retry_required: bool,
    /// Serve DNS over HTTP/3 on UDP 443 (§4 future work; at the time of
    /// the study only Cloudflare deployed it).
    pub supports_doh3: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            ip: Ipv4Addr::new(192, 0, 2, 1),
            server_id: 1,
            supports_udp: true,
            supports_tcp: true,
            supports_dot: true,
            supports_doh: true,
            supports_doq: true,
            tls_versions: vec![TlsVersion::Tls13],
            cert_chain_len: 2400,
            enable_0rtt: false,
            enable_tfo: false,
            tcp_keepalive: false,
            close_tcp_after_response: true,
            quic_versions: vec![doqlab_netstack::quic::QUIC_V1],
            doq_alpns: vec![DoqAlpn::Draft(2)],
            doq_ports: vec![ports::DOQ, ports::DOQ_EARLY, ports::DOQ_ALT],
            retry_required: false,
            supports_doh3: false,
        }
    }
}

impl ServerConfig {
    fn tls(&self, alpn: Vec<Vec<u8>>) -> TlsConfig {
        TlsConfig {
            server_id: self.server_id,
            versions: self.tls_versions.clone(),
            alpn,
            cert_chain_len: self.cert_chain_len,
            enable_0rtt: self.enable_0rtt,
            ticket_lifetime: Duration::from_secs(7 * 24 * 3600),
            extra_client_hello_pad: 0,
        }
    }
}

/// Identifies where a query came from, for routing the response back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnKey {
    Udp(SocketAddr),
    Tcp(SocketAddr),
    Dot(SocketAddr),
    Doh(SocketAddr, u32),
    Doq {
        peer: SocketAddr,
        port: u16,
        stream: u64,
    },
    Doh3 {
        peer: SocketAddr,
        stream: u64,
    },
}

/// A decoded query event.
#[derive(Debug, Clone)]
pub struct ServerEvent {
    pub key: ConnKey,
    pub transport: DnsTransport,
    pub query: Message,
    pub received_at: SimTime,
}

#[derive(Debug)]
struct DotConn {
    tls: TlsServer,
    reader: LengthPrefixedReader,
}

#[derive(Debug)]
struct DohConn {
    tls: TlsServer,
    h2: H2Connection,
}

/// All five server endpoints behind one IP.
#[derive(Debug)]
pub struct DnsServerSet {
    cfg: ServerConfig,
    tcp: TcpListener,
    tcp_readers: HashMap<SocketAddr, LengthPrefixedReader>,
    dot: TcpListener,
    dot_conns: HashMap<SocketAddr, DotConn>,
    doh: TcpListener,
    doh_conns: HashMap<SocketAddr, DohConn>,
    doq: Vec<(u16, QuicServer)>,
    doh3: Option<QuicServer>,
    /// Partially received DoH3 request streams.
    doh3_buf: HashMap<(SocketAddr, u64), Vec<u8>>,
    events: Vec<ServerEvent>,
    /// UDP responses waiting for the next poll.
    udp_out: Vec<Packet>,
    /// DoTCP peers to close after their response drains.
    tcp_closing: Vec<SocketAddr>,
}

impl DnsServerSet {
    pub fn new(cfg: ServerConfig) -> Self {
        let tcp_cfg = TcpConfig {
            enable_tfo: cfg.enable_tfo,
            ..TcpConfig::default()
        };
        let doq = cfg
            .doq_ports
            .iter()
            .map(|&port| {
                let quic_cfg = QuicConfig {
                    versions: cfg.quic_versions.clone(),
                    tls: cfg.tls(cfg.doq_alpns.iter().map(|a| a.wire()).collect()),
                    retry_required: cfg.retry_required,
                    ..QuicConfig::default()
                };
                (
                    port,
                    QuicServer::new(SocketAddr::new(cfg.ip, port), quic_cfg),
                )
            })
            .collect();
        let doh3 = cfg.supports_doh3.then(|| {
            let quic_cfg = QuicConfig {
                versions: cfg.quic_versions.clone(),
                tls: cfg.tls(vec![b"h3".to_vec()]),
                retry_required: cfg.retry_required,
                ..QuicConfig::default()
            };
            QuicServer::new(SocketAddr::new(cfg.ip, ports::HTTPS), quic_cfg)
        });
        DnsServerSet {
            tcp: TcpListener::new(SocketAddr::new(cfg.ip, ports::DNS), tcp_cfg.clone()),
            tcp_readers: HashMap::new(),
            dot: TcpListener::new(SocketAddr::new(cfg.ip, ports::DOT), TcpConfig::default()),
            dot_conns: HashMap::new(),
            doh: TcpListener::new(SocketAddr::new(cfg.ip, ports::HTTPS), TcpConfig::default()),
            doh_conns: HashMap::new(),
            doq,
            doh3,
            doh3_buf: HashMap::new(),
            cfg,
            events: Vec::new(),
            udp_out: Vec::new(),
            tcp_closing: Vec::new(),
        }
    }

    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Route an inbound packet to the right endpoint.
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet, out: &mut Vec<Packet>) {
        match (pkt.transport, pkt.dst.port) {
            (Transport::Udp, ports::DNS) => {
                if !self.cfg.supports_udp {
                    return;
                }
                if let Ok(query) = Message::decode(&pkt.payload) {
                    if !query.header.response {
                        self.events.push(ServerEvent {
                            key: ConnKey::Udp(pkt.src),
                            transport: DnsTransport::DoUdp,
                            query,
                            received_at: now,
                        });
                    }
                }
            }
            (Transport::Udp, ports::HTTPS) => {
                if let Some(server) = &mut self.doh3 {
                    for (peer, dgram) in server.handle_datagram(now, pkt.src, &pkt.payload) {
                        out.push(Packet::udp(
                            SocketAddr::new(self.cfg.ip, ports::HTTPS),
                            peer,
                            dgram,
                        ));
                    }
                }
            }
            (Transport::Udp, port) if self.cfg.doq_ports.contains(&port) => {
                if !self.cfg.supports_doq {
                    return;
                }
                if let Some((_, server)) = self.doq.iter_mut().find(|(p, _)| *p == port) {
                    for (peer, dgram) in server.handle_datagram(now, pkt.src, &pkt.payload) {
                        out.push(Packet::udp(SocketAddr::new(self.cfg.ip, port), peer, dgram));
                    }
                }
            }
            (Transport::Tcp, ports::DNS) if self.cfg.supports_tcp => {
                if let Some(seg) = TcpSegment::decode(&pkt.payload) {
                    self.tcp.on_segment(now, pkt.src, &seg);
                }
            }
            (Transport::Tcp, ports::DOT) if self.cfg.supports_dot => {
                if let Some(seg) = TcpSegment::decode(&pkt.payload) {
                    self.dot.on_segment(now, pkt.src, &seg);
                }
            }
            (Transport::Tcp, ports::HTTPS) if self.cfg.supports_doh => {
                if let Some(seg) = TcpSegment::decode(&pkt.payload) {
                    self.doh.on_segment(now, pkt.src, &seg);
                }
            }
            _ => {}
        }
        self.pump(now, out);
    }

    /// Run protocol machinery; flush output packets.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.pump(now, out);
    }

    fn pump(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        out.append(&mut self.udp_out);

        // --- DoTCP ---
        let mut tcp_events = Vec::new();
        for (&peer, sock) in self.tcp.connections() {
            let data = sock.recv();
            if data.is_empty() {
                continue;
            }
            let reader = self.tcp_readers.entry(peer).or_default();
            reader.push(&data);
            while let Some(wire) = reader.next_message() {
                if let Ok(query) = Message::decode(&wire) {
                    if !query.header.response {
                        tcp_events.push(ServerEvent {
                            key: ConnKey::Tcp(peer),
                            transport: DnsTransport::DoTcp,
                            query,
                            received_at: now,
                        });
                    }
                }
            }
        }
        self.events.append(&mut tcp_events);
        // Close DoTCP connections whose response has drained.
        self.tcp_closing
            .retain(|peer| match self.tcp.connection(*peer) {
                Some(sock) if sock.tx_outstanding() == 0 => {
                    sock.close();
                    false
                }
                Some(_) => true,
                None => false,
            });
        for (peer, seg) in self.tcp.poll(now) {
            out.push(Packet::tcp(
                SocketAddr::new(self.cfg.ip, ports::DNS),
                peer,
                seg.encode_payload(),
            ));
        }
        // Pooled clients redial from fresh source ports, so abandoned
        // connections accumulate forever unless reaped (after poll, so
        // owed ACKs are already flushed).
        self.tcp.reap_quiescent();
        if self.tcp_readers.len() > self.tcp.len() {
            let tcp = &self.tcp;
            self.tcp_readers.retain(|peer, _| tcp.contains(*peer));
        }

        // --- DoT ---
        let mut dot_events = Vec::new();
        for (&peer, sock) in self.dot.connections() {
            let conn = self.dot_conns.entry(peer).or_insert_with(|| DotConn {
                tls: TlsServer::new(self.cfg.tls(vec![b"dot".to_vec()])),
                reader: LengthPrefixedReader::new(),
            });
            let data = sock.recv();
            if !data.is_empty() {
                conn.tls.read_wire(now, &data);
            }
            let mut plain = conn.tls.read_early();
            plain.extend(conn.tls.read_app());
            if !plain.is_empty() {
                conn.reader.push(&plain);
                while let Some(wire) = conn.reader.next_message() {
                    if let Ok(query) = Message::decode(&wire) {
                        if !query.header.response {
                            dot_events.push(ServerEvent {
                                key: ConnKey::Dot(peer),
                                transport: DnsTransport::DoT,
                                query,
                                received_at: now,
                            });
                        }
                    }
                }
            }
            let wire = conn.tls.take_output();
            if !wire.is_empty() {
                sock.send(&wire);
            }
        }
        self.events.append(&mut dot_events);
        for (peer, seg) in self.dot.poll(now) {
            out.push(Packet::tcp(
                SocketAddr::new(self.cfg.ip, ports::DOT),
                peer,
                seg.encode_payload(),
            ));
        }
        self.dot.reap_quiescent();
        if self.dot_conns.len() > self.dot.len() {
            let dot = &self.dot;
            self.dot_conns.retain(|peer, _| dot.contains(*peer));
        }

        // --- DoH ---
        let mut doh_events = Vec::new();
        for (&peer, sock) in self.doh.connections() {
            let conn = self.doh_conns.entry(peer).or_insert_with(|| DohConn {
                tls: TlsServer::new(self.cfg.tls(vec![b"h2".to_vec()])),
                h2: H2Connection::server(),
            });
            let data = sock.recv();
            if !data.is_empty() {
                conn.tls.read_wire(now, &data);
            }
            let mut plain = conn.tls.read_early();
            plain.extend(conn.tls.read_app());
            if !plain.is_empty() {
                conn.h2.read_wire(&plain);
            }
            for req in conn.h2.take_messages() {
                if let Ok(query) = Message::decode(&req.body) {
                    if !query.header.response {
                        doh_events.push(ServerEvent {
                            key: ConnKey::Doh(peer, req.stream_id),
                            transport: DnsTransport::DoH,
                            query,
                            received_at: now,
                        });
                    }
                }
            }
            let h2_out = conn.h2.take_output();
            if !h2_out.is_empty() {
                conn.tls.write_app(&h2_out);
            }
            let wire = conn.tls.take_output();
            if !wire.is_empty() {
                sock.send(&wire);
            }
        }
        self.events.append(&mut doh_events);
        for (peer, seg) in self.doh.poll(now) {
            out.push(Packet::tcp(
                SocketAddr::new(self.cfg.ip, ports::HTTPS),
                peer,
                seg.encode_payload(),
            ));
        }
        self.doh.reap_quiescent();
        if self.doh_conns.len() > self.doh.len() {
            let doh = &self.doh;
            self.doh_conns.retain(|peer, _| doh.contains(*peer));
        }

        // --- DoQ ---
        let mut doq_events = Vec::new();
        for (port, server) in &mut self.doq {
            for (&peer, conn) in server.connections() {
                let alpn = conn
                    .negotiated_alpn()
                    .and_then(DoqAlpn::from_wire)
                    .unwrap_or(DoqAlpn::Rfc9250);
                for stream in conn.take_new_peer_streams() {
                    let (data, fin) = conn.stream_recv(stream);
                    // Queries are small: they arrive in one frame in this
                    // simulation (one datagram covers any DNS query).
                    let wire = if alpn.uses_length_prefix() {
                        let mut r = LengthPrefixedReader::new();
                        r.push(&data);
                        r.next_message()
                    } else if fin {
                        Some(data)
                    } else {
                        None
                    };
                    if let Some(wire) = wire {
                        if let Ok(query) = Message::decode(&wire) {
                            if !query.header.response {
                                doq_events.push(ServerEvent {
                                    key: ConnKey::Doq {
                                        peer,
                                        port: *port,
                                        stream,
                                    },
                                    transport: DnsTransport::DoQ,
                                    query,
                                    received_at: now,
                                });
                            }
                        }
                    }
                }
            }
            for (peer, dgram) in server.poll_transmit(now) {
                out.push(Packet::udp(
                    SocketAddr::new(self.cfg.ip, *port),
                    peer,
                    dgram,
                ));
            }
            // Long-lived hosts see many connections per peer (pooled
            // clients redial after evictions); drained ones must not
            // accumulate.
            server.reap();
        }
        self.events.append(&mut doq_events);

        // --- DoH3 (future work) ---
        if let Some(server) = &mut self.doh3 {
            let mut doh3_events = Vec::new();
            for (&peer, conn) in server.connections() {
                for stream in conn.take_new_peer_streams() {
                    // Unidirectional peer streams (control/QPACK) are
                    // consumed and ignored; requests are client bidi.
                    self.doh3_buf.entry((peer, stream)).or_default();
                }
                let streams: Vec<u64> = self
                    .doh3_buf
                    .keys()
                    .filter(|(p, _)| *p == peer)
                    .map(|(_, s)| *s)
                    .collect();
                for stream in streams {
                    let (data, fin) = conn.stream_recv(stream);
                    let buf = self.doh3_buf.get_mut(&(peer, stream)).expect("listed");
                    buf.extend_from_slice(&data);
                    let is_request = stream % 4 == 0; // client bidi
                    if fin && is_request {
                        if let Some(req) = doqlab_netstack::http3::H3Message::decode(buf) {
                            if let Ok(query) = Message::decode(&req.body) {
                                if !query.header.response {
                                    doh3_events.push(ServerEvent {
                                        key: ConnKey::Doh3 { peer, stream },
                                        transport: DnsTransport::DoH3,
                                        query,
                                        received_at: now,
                                    });
                                }
                            }
                        }
                        self.doh3_buf.remove(&(peer, stream));
                    }
                }
            }
            for (peer, dgram) in server.poll_transmit(now) {
                out.push(Packet::udp(
                    SocketAddr::new(self.cfg.ip, ports::HTTPS),
                    peer,
                    dgram,
                ));
            }
            self.events.append(&mut doh3_events);
        }

        // RFC 6891 §6.1.3: a query asking for an EDNS version we do not
        // implement gets BADVERS straight back instead of being handed
        // to the resolver for a normal answer. Applies uniformly to
        // every transport, so the check sits after all of them.
        let bad: Vec<ServerEvent> = {
            let (bad, ok) = std::mem::take(&mut self.events)
                .into_iter()
                .partition(|ev| ev.query.edns_version().is_some_and(|v| v != 0));
            self.events = ok;
            bad
        };
        if !bad.is_empty() {
            for ev in bad {
                let resp = Message::badvers_response_to(&ev.query);
                self.respond(now, ev.key, &resp);
            }
            // Re-pump once so responses written into transport sockets
            // above are flushed now rather than on the next inbound
            // packet. Terminates: the offending events are consumed.
            self.pump(now, out);
        }
    }

    /// Decoded queries since the last call.
    pub fn take_queries(&mut self) -> Vec<ServerEvent> {
        std::mem::take(&mut self.events)
    }

    /// Send a response back on the connection a query arrived on.
    pub fn respond(&mut self, now: SimTime, key: ConnKey, msg: &Message) {
        match key {
            ConnKey::Udp(peer) => {
                self.udp_out.push(Packet::udp(
                    SocketAddr::new(self.cfg.ip, ports::DNS),
                    peer,
                    msg.encode(),
                ));
            }
            ConnKey::Tcp(peer) => {
                if let Some(sock) = self.tcp.connection(peer) {
                    let mut msg = msg.clone();
                    if self.cfg.tcp_keepalive {
                        // RFC 7828: advertise an idle timeout (in units
                        // of 100 ms) so the client holds the connection.
                        // Merge into any OPT already on the response —
                        // replacing it wholesale would clobber fields
                        // like a BADVERS extended_rcode.
                        let mut opt = msg.opt().unwrap_or_default();
                        if opt.tcp_keepalive().is_none() {
                            opt.options.push(EdnsOption::TcpKeepalive(Some(300)));
                        }
                        msg.additionals
                            .retain(|rr| rr.rtype != doqlab_dnswire::RecordType::Opt);
                        msg.additionals.push(opt.to_record());
                    }
                    sock.send(&framing::frame(&msg.encode()));
                    if self.cfg.close_tcp_after_response && !self.cfg.tcp_keepalive {
                        self.tcp_closing.push(peer);
                    }
                }
            }
            ConnKey::Dot(peer) => {
                if let Some(conn) = self.dot_conns.get_mut(&peer) {
                    conn.tls.write_app(&framing::frame(&msg.encode()));
                }
            }
            ConnKey::Doh(peer, stream) => {
                if let Some(conn) = self.doh_conns.get_mut(&peer) {
                    let (headers, body) = doh_response_parts(msg);
                    let refs: Vec<(&str, &str)> = headers
                        .iter()
                        .map(|(n, v)| (n.as_str(), v.as_str()))
                        .collect();
                    conn.h2.send_response(stream, &refs, &body);
                }
            }
            ConnKey::Doh3 { peer, stream } => {
                if let Some(server) = &mut self.doh3 {
                    if let Some(conn) = server.connection(peer) {
                        let bytes = crate::doh3::doh3_response_bytes(msg);
                        conn.stream_send(stream, &bytes, true);
                    }
                }
            }
            ConnKey::Doq { peer, port, stream } => {
                if let Some((_, server)) = self.doq.iter_mut().find(|(p, _)| *p == port) {
                    if let Some(conn) = server.connection(peer) {
                        let mut resp = msg.clone();
                        resp.header.id = 0; // RFC 9250
                        let alpn = conn
                            .negotiated_alpn()
                            .and_then(DoqAlpn::from_wire)
                            .unwrap_or(DoqAlpn::Rfc9250);
                        let wire = resp.encode();
                        let payload = if alpn.uses_length_prefix() {
                            framing::frame(&wire)
                        } else {
                            wire
                        };
                        conn.stream_send(stream, &payload, true);
                    }
                }
            }
        }
        let _ = now;
    }

    pub fn next_timeout(&self) -> Option<SimTime> {
        let mut t = self.tcp.next_timeout();
        for cand in [self.dot.next_timeout(), self.doh.next_timeout()] {
            t = match (t, cand) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        for (_, s) in &self.doq {
            t = match (t, s.next_timeout()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        if let Some(s) = &self.doh3 {
            t = match (t, s.next_timeout()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        t
    }
}
