//! # doqlab-dox — the five DNS transports
//!
//! Client and server endpoints for every protocol the paper measures,
//! glued from the `doqlab-netstack` state machines:
//!
//! | Module  | Protocol | RFC | Transport stack |
//! |---------|----------|-----|-----------------|
//! | [`udp`] | DoUDP    | 1035 | UDP; Chromium-style 5 s application retry |
//! | [`tcp`] | DoTCP    | 7766/9210 | TCP + 2-byte framing |
//! | [`dot`] | DoT      | 7858 | TLS over TCP, ALPN `dot`, port 853 |
//! | [`doh`] | DoH      | 8484 | HTTP/2 over TLS over TCP, port 443 |
//! | [`doq`] | DoQ      | 9250 | QUIC, ALPN `doq`/`doq-i*`, port 853/784/8853 |
//!
//! All clients implement [`client::DnsClientConn`], the sans-I/O
//! interface the measurement harness drives; [`server::DnsServerSet`]
//! bundles the five server endpoints for a resolver host.

pub mod alpn;
pub mod client;
pub mod doh;
pub mod doh3;
pub mod doq;
pub mod dot;
pub mod host;
pub mod server;
pub mod tcp;
pub mod udp;

pub use alpn::DoqAlpn;
pub use client::{
    ClientConfig, ConnMetadata, DnsClientConn, DnsTransport, FailoverPolicy, FailureKind,
    SessionCache, SessionState,
};
pub use host::{make_client, DnsClientHost};
pub use server::{DnsServerSet, ServerConfig, ServerEvent};

/// Well-known ports.
pub mod ports {
    /// DoUDP and DoTCP.
    pub const DNS: u16 = 53;
    /// DoT, and the standard DoQ port (RFC 9250).
    pub const DOT: u16 = 853;
    pub const DOQ: u16 = 853;
    /// Early DoQ deployments (draft).
    pub const DOQ_EARLY: u16 = 784;
    pub const DOQ_ALT: u16 = 8853;
    /// DoH.
    pub const HTTPS: u16 = 443;
}
