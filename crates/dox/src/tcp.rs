//! DoTCP: DNS over TCP (RFC 7766 / RFC 9210).
//!
//! The paper finds that no resolver supports TFO or
//! `edns-tcp-keepalive`, and that in practice a fresh connection is
//! made per query — so every DoTCP query costs two round trips (TCP
//! handshake + query). Both the keepalive request and TFO are
//! implemented and configurable so the recommended behaviour can be
//! measured as an ablation.

use crate::client::{ClientConfig, DnsClientConn, FailureKind, SessionState};
use doqlab_dnswire::{framing, EdnsOption, LengthPrefixedReader, Message, RecordType};
use doqlab_netstack::tcp::{TcpConfig, TcpFailure, TcpSegment, TcpSocket};
use doqlab_simnet::{Packet, SimRng, SimTime, SocketAddr};
use doqlab_telemetry::metrics::{self, Counter};
use std::collections::HashSet;

/// Classify a failed TCP socket for the failure taxonomy: a peer RST
/// (or local abort) is a reset; exhausted retransmissions count as a
/// handshake failure if the 3-way handshake never completed, and a
/// timeout otherwise. Shared by DoTCP, DoT and DoH.
pub(crate) fn classify_tcp_failure(tcp: &TcpSocket) -> Option<FailureKind> {
    Some(match tcp.failure()? {
        TcpFailure::PeerReset | TcpFailure::Aborted => FailureKind::Reset,
        TcpFailure::RetriesExhausted => {
            if tcp.established_at().is_none() {
                FailureKind::HandshakeFail
            } else {
                FailureKind::Timeout
            }
        }
    })
}

/// Convert TCP segments to simulator packets.
pub(crate) fn segments_to_packets(
    local: SocketAddr,
    remote: SocketAddr,
    segs: Vec<TcpSegment>,
    out: &mut Vec<Packet>,
) {
    for seg in segs {
        out.push(Packet::tcp(local, remote, seg.encode_payload()));
    }
}

/// A DoTCP client connection.
#[derive(Debug)]
pub struct DoTcpClient {
    tcp: TcpSocket,
    reader: LengthPrefixedReader,
    pending: HashSet<u16>,
    responses: Vec<(SimTime, Message)>,
    started: bool,
    /// RFC 7828: ask the server to hold the connection open.
    request_keepalive: bool,
    /// Timeout the server answered with (units of 100 ms), once seen.
    keepalive: Option<u16>,
}

impl DoTcpClient {
    pub fn new(local: SocketAddr, remote: SocketAddr, cfg: &ClientConfig) -> Self {
        let tcp_cfg = TcpConfig {
            enable_tfo: cfg.enable_tfo,
            ..TcpConfig::default()
        };
        // ISS is assigned at start() from the shared RNG.
        let mut tcp = TcpSocket::client(local, remote, 0, tcp_cfg);
        if cfg.enable_tfo {
            // A cookie from an earlier connection to this resolver lets
            // the first query ride the SYN (RFC 7413).
            if let Some(cookie) = &cfg.session.tfo_cookie {
                tcp.set_tfo_cookie(cookie.clone());
            }
        }
        DoTcpClient {
            tcp,
            reader: LengthPrefixedReader::new(),
            pending: HashSet::new(),
            responses: Vec::new(),
            started: false,
            request_keepalive: cfg.request_tcp_keepalive,
            keepalive: None,
        }
    }

    /// The edns-tcp-keepalive idle timeout the server granted, if any.
    pub fn keepalive_timeout(&self) -> Option<std::time::Duration> {
        self.keepalive
            .map(|t| std::time::Duration::from_millis(t as u64 * 100))
    }

    fn pump(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        let data = self.tcp.recv();
        if !data.is_empty() {
            self.reader.push(&data);
            while let Some(wire) = self.reader.next_message() {
                if let Ok(msg) = Message::decode(&wire) {
                    if msg.header.response && self.pending.remove(&msg.header.id) {
                        if self.keepalive.is_none() {
                            let granted = msg.opt().and_then(|o| match o.tcp_keepalive() {
                                Some(EdnsOption::TcpKeepalive(Some(t))) => Some(*t),
                                _ => None,
                            });
                            if let Some(t) = granted {
                                // The resolver honors RFC 7828: keep the
                                // connection instead of redialing per
                                // query. Counted once per connection.
                                self.keepalive = Some(t);
                                metrics::count(Counter::KeepaliveHonored, 1);
                            }
                        }
                        self.responses.push((now, msg));
                    }
                }
            }
        }
        let (local, remote) = (self.tcp.local, self.tcp.remote);
        segments_to_packets(local, remote, self.tcp.poll(now), out);
    }
}

impl DnsClientConn for DoTcpClient {
    fn start(&mut self, now: SimTime, _rng: &mut SimRng, out: &mut Vec<Packet>) {
        assert!(!self.started, "start twice");
        self.started = true;
        self.tcp.open(now);
        self.pump(now, out);
    }

    fn query(&mut self, _now: SimTime, msg: &Message) {
        self.pending.insert(msg.header.id);
        let mut msg = msg.clone();
        if self.request_keepalive {
            // RFC 7828 §3.2.1: the client sends the option with no
            // timeout, merged into the query's OPT record.
            let mut opt = msg.opt().unwrap_or_default();
            if opt.tcp_keepalive().is_none() {
                opt.options.push(EdnsOption::TcpKeepalive(None));
            }
            msg.additionals.retain(|rr| rr.rtype != RecordType::Opt);
            msg.additionals.push(opt.to_record());
        }
        self.tcp.send(&framing::frame(&msg.encode()));
    }

    fn on_packet(&mut self, now: SimTime, pkt: &Packet, out: &mut Vec<Packet>) {
        if let Some(seg) = TcpSegment::decode(&pkt.payload) {
            self.tcp.on_segment(now, &seg);
        }
        self.pump(now, out);
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.pump(now, out);
    }

    fn next_timeout(&self) -> Option<SimTime> {
        self.tcp.next_timeout()
    }

    fn take_responses(&mut self) -> Vec<(SimTime, Message)> {
        std::mem::take(&mut self.responses)
    }

    fn handshake_done_at(&self) -> Option<SimTime> {
        self.tcp.established_at()
    }

    fn failed(&self) -> bool {
        self.tcp.is_reset()
    }

    fn failure(&self) -> Option<FailureKind> {
        classify_tcp_failure(&self.tcp)
    }

    fn session_state(&mut self) -> SessionState {
        SessionState {
            tfo_cookie: self.tcp.tfo_cookie().map(|c| c.to_vec()),
            ..SessionState::default()
        }
    }

    fn close(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.tcp.close();
        self.pump(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doqlab_dnswire::{Name, RecordType};
    use doqlab_netstack::tcp::TcpListener;
    use doqlab_simnet::Ipv4Addr;

    fn sa(h: u8, p: u16) -> SocketAddr {
        SocketAddr::new(Ipv4Addr::new(10, 0, 0, h), p)
    }

    /// Minimal DoTCP echo server on a listener.
    fn drive(client: &mut DoTcpClient, listener: &mut TcpListener) -> Vec<(SimTime, Message)> {
        let mut rng = SimRng::new(9);
        let mut now = SimTime::ZERO;
        let mut out = Vec::new();
        client.start(now, &mut rng, &mut out);
        let client_addr = client.tcp.local;
        for _ in 0..200 {
            // Deliver client -> server.
            let to_server = std::mem::take(&mut out);
            now += doqlab_simnet::Duration::from_millis(5);
            for pkt in to_server {
                if let Some(seg) = TcpSegment::decode(&pkt.payload) {
                    listener.on_segment(now, client_addr, &seg);
                }
            }
            // Server DNS logic: respond to any framed query.
            if let Some(conn) = listener.connection(client_addr) {
                let data = conn.recv();
                if !data.is_empty() {
                    let mut reader = LengthPrefixedReader::new();
                    reader.push(&data);
                    while let Some(wire) = reader.next_message() {
                        let q = Message::decode(&wire).unwrap();
                        let mut resp = Message::response_to(&q, vec![]);
                        // Grant keepalive when the client asked (RFC
                        // 7828): 120 units of 100 ms.
                        if q.opt().is_some_and(|o| o.tcp_keepalive().is_some()) {
                            let mut opt = resp.opt().unwrap_or_default();
                            opt.options.push(EdnsOption::TcpKeepalive(Some(120)));
                            resp.additionals.retain(|rr| rr.rtype != RecordType::Opt);
                            resp.additionals.push(opt.to_record());
                        }
                        conn.send(&framing::frame(&resp.encode()));
                    }
                }
            }
            // Deliver server -> client.
            now += doqlab_simnet::Duration::from_millis(5);
            let mut segs = Vec::new();
            for (_, seg) in listener.poll(now) {
                segs.push(seg);
            }
            let mut done = segs.is_empty();
            for seg in segs {
                let pkt = Packet::tcp(sa(2, 53), client_addr, seg.encode_payload());
                client.on_packet(now, &pkt, &mut out);
            }
            client.poll(now, &mut out);
            let responses = client.take_responses();
            if !responses.is_empty() {
                return responses;
            }
            done &= out.is_empty();
            if done {
                break;
            }
        }
        Vec::new()
    }

    #[test]
    fn query_response_over_tcp() {
        let mut client = DoTcpClient::new(sa(1, 40000), sa(2, 53), &ClientConfig::default());
        let q = Message::query(7, Name::parse("google.com").unwrap(), RecordType::A);
        client.query(SimTime::ZERO, &q);
        let mut listener = TcpListener::new(sa(2, 53), TcpConfig::default());
        let responses = drive(&mut client, &mut listener);
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].1.header.id, 7);
        assert!(client.handshake_done_at().is_some());
    }

    #[test]
    fn keepalive_request_rides_the_query_and_grant_is_captured() {
        let cfg = ClientConfig {
            request_tcp_keepalive: true,
            ..ClientConfig::default()
        };
        let mut client = DoTcpClient::new(sa(1, 40000), sa(2, 53), &cfg);
        let q = Message::query(7, Name::parse("google.com").unwrap(), RecordType::A);
        client.query(SimTime::ZERO, &q);
        let mut listener = TcpListener::new(sa(2, 53), TcpConfig::default());
        let responses = drive(&mut client, &mut listener);
        assert_eq!(responses.len(), 1);
        // The server granted 120 * 100 ms = 12 s.
        assert_eq!(
            client.keepalive_timeout(),
            Some(std::time::Duration::from_secs(12))
        );
    }

    #[test]
    fn no_keepalive_request_no_grant() {
        let mut client = DoTcpClient::new(sa(1, 40000), sa(2, 53), &ClientConfig::default());
        let q = Message::query(7, Name::parse("google.com").unwrap(), RecordType::A);
        client.query(SimTime::ZERO, &q);
        let mut listener = TcpListener::new(sa(2, 53), TcpConfig::default());
        drive(&mut client, &mut listener);
        assert_eq!(client.keepalive_timeout(), None);
    }

    #[test]
    fn tfo_cookie_carries_to_the_next_connection_via_session_state() {
        let tfo_cfg = ClientConfig {
            enable_tfo: true,
            ..ClientConfig::default()
        };
        let server_cfg = TcpConfig {
            enable_tfo: true,
            ..TcpConfig::default()
        };
        // First connection requests a cookie; the query cannot ride the
        // SYN yet.
        let mut client = DoTcpClient::new(sa(1, 40000), sa(2, 53), &tfo_cfg);
        let q = Message::query(7, Name::parse("google.com").unwrap(), RecordType::A);
        client.query(SimTime::ZERO, &q);
        let mut listener = TcpListener::new(sa(2, 53), server_cfg);
        let responses = drive(&mut client, &mut listener);
        assert_eq!(responses.len(), 1);
        let session = client.session_state();
        assert!(session.tfo_cookie.is_some(), "cookie captured");

        // Second connection presents the cookie: SYN carries the query.
        let cfg2 = ClientConfig { session, ..tfo_cfg };
        let mut client2 = DoTcpClient::new(sa(1, 40001), sa(2, 53), &cfg2);
        client2.query(SimTime::ZERO, &q);
        let mut rng = SimRng::new(9);
        let mut out = Vec::new();
        client2.start(SimTime::ZERO, &mut rng, &mut out);
        let seg = TcpSegment::decode(&out[0].payload).unwrap();
        assert!(seg.flags.syn);
        assert!(!seg.payload.is_empty(), "query rides the SYN");
    }

    #[test]
    fn handshake_takes_one_rtt_before_query_flows() {
        let mut client = DoTcpClient::new(sa(1, 40000), sa(2, 53), &ClientConfig::default());
        let q = Message::query(7, Name::parse("google.com").unwrap(), RecordType::A);
        client.query(SimTime::ZERO, &q);
        let mut rng = SimRng::new(9);
        let mut out = Vec::new();
        client.start(SimTime::ZERO, &mut rng, &mut out);
        // Only the SYN goes out: the query waits for the handshake.
        assert_eq!(out.len(), 1);
        let seg = TcpSegment::decode(&out[0].payload).unwrap();
        assert!(seg.flags.syn);
        assert!(seg.payload.is_empty());
    }
}
