//! The unified client interface the measurement harness drives.

use doqlab_dnswire::Message;
use doqlab_netstack::tls::SessionTicket;
use doqlab_simnet::{Packet, SimRng, SimTime, SocketAddr};

/// The five DNS transports of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DnsTransport {
    DoUdp,
    DoTcp,
    DoT,
    DoH,
    DoQ,
    /// DNS over HTTP/3 (§4 future work; not part of the paper's five
    /// measured transports and therefore not in [`DnsTransport::ALL`]).
    DoH3,
}

impl DnsTransport {
    /// All five, in the column order of the paper's Table 1.
    pub const ALL: [DnsTransport; 5] = [
        DnsTransport::DoUdp,
        DnsTransport::DoTcp,
        DnsTransport::DoQ,
        DnsTransport::DoH,
        DnsTransport::DoT,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            DnsTransport::DoUdp => "DoUDP",
            DnsTransport::DoTcp => "DoTCP",
            DnsTransport::DoT => "DoT",
            DnsTransport::DoH => "DoH",
            DnsTransport::DoQ => "DoQ",
            DnsTransport::DoH3 => "DoH3",
        }
    }

    pub fn is_encrypted(&self) -> bool {
        matches!(
            self,
            DnsTransport::DoT | DnsTransport::DoH | DnsTransport::DoQ | DnsTransport::DoH3
        )
    }

    /// Default server port.
    pub fn port(&self) -> u16 {
        match self {
            DnsTransport::DoUdp | DnsTransport::DoTcp => crate::ports::DNS,
            DnsTransport::DoT => crate::ports::DOT,
            DnsTransport::DoH => crate::ports::HTTPS,
            DnsTransport::DoQ => crate::ports::DOQ,
            // HTTP/3 runs over QUIC on UDP 443.
            DnsTransport::DoH3 => crate::ports::HTTPS,
        }
    }
}

impl std::fmt::Display for DnsTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a query never completed: the failure taxonomy the measurement
/// campaigns report and count through `doqlab-telemetry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FailureKind {
    /// Retries/retransmissions went unanswered after a usable session
    /// existed (or, for DoUDP, ever).
    Timeout,
    /// The peer reset or abruptly closed the connection.
    Reset,
    /// The transport never reached a usable session: TCP SYN retries
    /// exhausted, a TLS alert, or a QUIC version/ALPN/crypto failure.
    HandshakeFail,
    /// The per-query deadline elapsed before a response arrived.
    DeadlineExceeded,
}

impl FailureKind {
    pub const ALL: [FailureKind; 4] = [
        FailureKind::Timeout,
        FailureKind::Reset,
        FailureKind::HandshakeFail,
        FailureKind::DeadlineExceeded,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            FailureKind::Timeout => "timeout",
            FailureKind::Reset => "reset",
            FailureKind::HandshakeFail => "handshake-fail",
            FailureKind::DeadlineExceeded => "deadline-exceeded",
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Resumption material carried from one connection to the next — what
/// the paper's cache-warming query captures and the measurement query
/// reuses: TLS session ticket, QUIC address-validation token and the
/// negotiated QUIC version.
#[derive(Debug, Clone, Default)]
pub struct SessionState {
    pub tls_ticket: Option<SessionTicket>,
    pub quic_token: Option<Vec<u8>>,
    pub quic_version: Option<u32>,
    /// TCP Fast Open cookie the server issued (RFC 7413) — lets the
    /// next DoTCP connection put its query on the SYN.
    pub tfo_cookie: Option<Vec<u8>>,
}

impl SessionState {
    pub fn is_empty(&self) -> bool {
        self.tls_ticket.is_none()
            && self.quic_token.is_none()
            && self.quic_version.is_none()
            && self.tfo_cookie.is_none()
    }

    /// Fold another capture into this one, field-wise: later non-empty
    /// fields win, absent ones keep what an earlier connection learned.
    pub fn merge(&mut self, other: SessionState) {
        if other.tls_ticket.is_some() {
            self.tls_ticket = other.tls_ticket;
        }
        if other.quic_token.is_some() {
            self.quic_token = other.quic_token;
        }
        if other.quic_version.is_some() {
            self.quic_version = other.quic_version;
        }
        if other.tfo_cookie.is_some() {
            self.tfo_cookie = other.tfo_cookie;
        }
    }
}

/// Client-side session cache keyed by resolver address: every
/// resumption artifact a stub gathers — TLS session tickets, QUIC
/// address-validation tokens and negotiated versions, TFO cookies — is
/// stored under the resolver that issued it and presented on the next
/// dial to that resolver. Captures merge field-wise (see
/// [`SessionState::merge`]), so a ticket from one connection and a TFO
/// cookie from another combine instead of clobbering each other.
#[derive(Debug, Clone, Default)]
pub struct SessionCache {
    entries: std::collections::HashMap<SocketAddr, SessionState>,
}

impl SessionCache {
    /// Fold a capture into the resolver's entry. Empty captures are
    /// ignored; non-empty fields of later captures win.
    pub fn store(&mut self, resolver: SocketAddr, s: SessionState) {
        if s.is_empty() {
            return;
        }
        self.entries.entry(resolver).or_default().merge(s);
    }

    /// The accumulated resumption material for a resolver, if any.
    pub fn get(&self, resolver: SocketAddr) -> Option<&SessionState> {
        self.entries.get(&resolver)
    }

    /// Fold every entry of another cache into this one.
    pub fn absorb(&mut self, other: SessionCache) {
        for (resolver, s) in other.entries {
            self.store(resolver, s);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Per-connection client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Resumption material from a previous connection.
    pub session: SessionState,
    /// Attempt TLS 1.3 / QUIC 0-RTT when the ticket permits it.
    pub enable_0rtt: bool,
    /// DoUDP application-layer retry timeout (Chromium/resolv.conf
    /// default: 5 s).
    pub udp_retry_timeout: std::time::Duration,
    pub udp_max_retries: u32,
    /// Request TCP Fast Open.
    pub enable_tfo: bool,
    /// Ask the resolver to hold DoTCP connections open (RFC 7828).
    pub request_tcp_keepalive: bool,
    /// Overall per-query deadline, enforced by `DnsClientHost`: if no
    /// response arrived when it expires the query is abandoned with
    /// [`FailureKind::DeadlineExceeded`]. `None` disables the deadline
    /// (the historical behavior).
    pub query_deadline: Option<std::time::Duration>,
    /// How many times `DnsClientHost` may tear down a failed connection
    /// and dial a fresh one (re-issuing the pending queries, reusing any
    /// session ticket gathered so far). `0` disables reconnection.
    pub reconnect_max: u32,
    /// Backoff before the first reconnect attempt; doubles per attempt.
    pub reconnect_backoff: std::time::Duration,
    /// Connection pooling (`None` disables it — the historical
    /// single-query behavior). With `Some(idle)`, `DnsClientHost` keeps
    /// the connection open across queries, amortizing the TLS/QUIC
    /// handshake, and closes it once it has sat idle — no query in
    /// flight — for `idle`. The next query after an eviction dials a
    /// fresh connection carrying any captured session ticket. Pool
    /// evictions are bookkept separately from failure reconnects.
    pub pool_idle_timeout: Option<std::time::Duration>,
    /// Pooled mode only: a freshly dialed connection must complete its
    /// handshake within this budget or it is torn down and redialed
    /// (counting against `reconnect_max` like any other failure). Guards
    /// against handshakes that retry forever without a terminal error.
    pub pool_handshake_timeout: std::time::Duration,
    /// Cross-transport failover ladder raced by `DnsClientHost`
    /// (non-pooled mode only; `None` — the default — disables racing
    /// and leaves the historical single-transport behavior untouched).
    pub failover: Option<FailoverPolicy>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            session: SessionState::default(),
            enable_0rtt: true,
            udp_retry_timeout: std::time::Duration::from_secs(5),
            udp_max_retries: 2,
            enable_tfo: false,
            request_tcp_keepalive: false,
            query_deadline: None,
            reconnect_max: 0,
            reconnect_backoff: std::time::Duration::from_millis(250),
            pool_idle_timeout: None,
            pool_handshake_timeout: std::time::Duration::from_secs(4),
            failover: None,
        }
    }
}

/// Cross-transport failover: a happy-eyeballs-style racing ladder.
///
/// When a query has gone unanswered on the primary transport for
/// `stagger`, [`DnsClientHost`](crate::DnsClientHost) dials the first
/// ladder rung on a fresh source port and re-issues the query there;
/// after `2 * stagger` the second rung, and so on. A rung is also
/// dialed immediately once the primary and every earlier rung have
/// failed terminally. The first response wins, the losers are closed,
/// and their bytes are bookkept as waste.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverPolicy {
    /// Fallback transports tried in order (the primary transport is
    /// whatever the host was built with and is not listed here).
    pub ladder: Vec<DnsTransport>,
    /// Head start the primary (and each rung) gets before the next
    /// rung is dialed.
    pub stagger: std::time::Duration,
}

impl FailoverPolicy {
    /// The classic DoQ ladder: fall back to DoT, then DoUDP.
    pub fn doq_ladder(stagger: std::time::Duration) -> Self {
        FailoverPolicy {
            ladder: vec![DnsTransport::DoT, DnsTransport::DoUdp],
            stagger,
        }
    }
}

/// Negotiated-protocol metadata for the §3 overview statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConnMetadata {
    /// Negotiated QUIC version (DoQ).
    pub quic_version: Option<u32>,
    /// Negotiated DoQ ALPN as a string (e.g. "doq-i02").
    pub doq_alpn: Option<String>,
    /// Negotiated TLS version (DoT/DoH/DoQ).
    pub tls13: Option<bool>,
    /// The handshake resumed a previous session.
    pub resumed: bool,
    /// 0-RTT data was accepted.
    pub zero_rtt: bool,
}

/// A sans-I/O DNS client connection.
///
/// Drive it like the simnet hosts drive their sockets: `start` once,
/// feed arriving packets with `on_packet`, call `poll` after every
/// event and whenever `next_timeout` expires, and transmit everything
/// `poll`/`start`/`on_packet` push into `out`.
pub trait DnsClientConn {
    /// Open the connection. Queued queries are transmitted as soon as
    /// the transport allows (0-RTT may put them in the first flight).
    fn start(&mut self, now: SimTime, rng: &mut SimRng, out: &mut Vec<Packet>);

    /// Queue a DNS query.
    fn query(&mut self, now: SimTime, msg: &Message);

    fn on_packet(&mut self, now: SimTime, pkt: &Packet, out: &mut Vec<Packet>);

    /// Run timers and flush pending output.
    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>);

    fn next_timeout(&self) -> Option<SimTime>;

    /// Responses received so far, with their arrival times (drained).
    fn take_responses(&mut self) -> Vec<(SimTime, Message)>;

    /// When the session became usable for queries. `Some(start)` for
    /// connectionless DoUDP.
    fn handshake_done_at(&self) -> Option<SimTime>;

    /// The connection failed permanently.
    fn failed(&self) -> bool;

    /// Classify the permanent failure (`None` while healthy).
    /// Transports refine the default, which can only say "timeout".
    fn failure(&self) -> Option<FailureKind> {
        self.failed().then_some(FailureKind::Timeout)
    }

    /// Resumption material gathered on this connection (tickets, QUIC
    /// token + version).
    fn session_state(&mut self) -> SessionState;

    /// Begin a graceful close.
    fn close(&mut self, now: SimTime, out: &mut Vec<Packet>);

    /// The host's local address changed under a live connection
    /// (wifi→cellular rebind). Transports with connection migration
    /// (QUIC: DoQ, DoH3) adopt the address and validate the new path;
    /// for everything else the default no-op leaves the connection
    /// bound to the now-dead address — exactly the stranding a real
    /// TCP/UDP socket suffers.
    fn rebind(&mut self, now: SimTime, new_local: SocketAddr, out: &mut Vec<Packet>) {
        let _ = (now, new_local, out);
    }

    /// Negotiated-protocol metadata (empty for plaintext transports).
    fn metadata(&self) -> ConnMetadata {
        ConnMetadata::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_table1_order() {
        let names: Vec<&str> = DnsTransport::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["DoUDP", "DoTCP", "DoQ", "DoH", "DoT"]);
    }

    #[test]
    fn encryption_classification() {
        assert!(!DnsTransport::DoUdp.is_encrypted());
        assert!(!DnsTransport::DoTcp.is_encrypted());
        assert!(DnsTransport::DoT.is_encrypted());
        assert!(DnsTransport::DoH.is_encrypted());
        assert!(DnsTransport::DoQ.is_encrypted());
    }

    #[test]
    fn ports() {
        assert_eq!(DnsTransport::DoUdp.port(), 53);
        assert_eq!(DnsTransport::DoTcp.port(), 53);
        assert_eq!(DnsTransport::DoT.port(), 853);
        assert_eq!(DnsTransport::DoH.port(), 443);
        assert_eq!(DnsTransport::DoQ.port(), 853);
    }

    #[test]
    fn session_state_emptiness() {
        assert!(SessionState::default().is_empty());
        let s = SessionState {
            quic_version: Some(1),
            ..SessionState::default()
        };
        assert!(!s.is_empty());
    }
}
