//! DoT: DNS over TLS (RFC 7858) — TLS over TCP on port 853, ALPN
//! `dot`, with the RFC 1035 2-byte message framing inside the tunnel.

use crate::client::{ClientConfig, ConnMetadata, DnsClientConn, FailureKind, SessionState};
use crate::tcp::{classify_tcp_failure, segments_to_packets};
use doqlab_dnswire::{framing, LengthPrefixedReader, Message};
use doqlab_netstack::tcp::{TcpConfig, TcpSegment, TcpSocket};
use doqlab_netstack::tls::{TlsClient, TlsConfig};
use doqlab_simnet::{Packet, SimRng, SimTime, SocketAddr};
use std::collections::HashSet;

/// A DoT client connection.
#[derive(Debug)]
pub struct DoTClient {
    tcp: TcpSocket,
    tls: TlsClient,
    tls_started: bool,
    reader: LengthPrefixedReader,
    pending: HashSet<u16>,
    responses: Vec<(SimTime, Message)>,
    session_out: SessionState,
}

impl DoTClient {
    pub fn new(local: SocketAddr, remote: SocketAddr, cfg: &ClientConfig) -> Self {
        let tls_cfg = TlsConfig {
            alpn: vec![b"dot".to_vec()],
            enable_0rtt: cfg.enable_0rtt,
            ..TlsConfig::default()
        };
        DoTClient {
            tcp: TcpSocket::client(local, remote, 0, TcpConfig::default()),
            tls: TlsClient::new(tls_cfg, cfg.session.tls_ticket.clone()),
            tls_started: false,
            reader: LengthPrefixedReader::new(),
            pending: HashSet::new(),
            responses: Vec::new(),
            session_out: SessionState::default(),
        }
    }

    fn pump(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        // TCP -> TLS.
        let data = self.tcp.recv();
        if !data.is_empty() {
            self.tls.read_wire(now, &data);
        }
        // TLS app plaintext -> DNS messages.
        let plain = self.tls.read_app();
        if !plain.is_empty() {
            self.reader.push(&plain);
            while let Some(wire) = self.reader.next_message() {
                if let Ok(msg) = Message::decode(&wire) {
                    if msg.header.response && self.pending.remove(&msg.header.id) {
                        self.responses.push((now, msg));
                    }
                }
            }
        }
        for ticket in self.tls.take_tickets() {
            self.session_out.tls_ticket = Some(ticket);
        }
        // TLS -> TCP. A dying socket (closed by the resilience layer,
        // or reset) no longer accepts data; drop the TLS output rather
        // than asserting.
        let wire = self.tls.take_output();
        if !wire.is_empty() && self.tcp.can_send() {
            self.tcp.send(&wire);
        }
        let (local, remote) = (self.tcp.local, self.tcp.remote);
        segments_to_packets(local, remote, self.tcp.poll(now), out);
    }
}

impl DnsClientConn for DoTClient {
    fn start(&mut self, now: SimTime, _rng: &mut SimRng, out: &mut Vec<Packet>) {
        self.tcp.open(now);
        self.pump(now, out);
    }

    fn query(&mut self, _now: SimTime, msg: &Message) {
        self.pending.insert(msg.header.id);
        // Buffered by the TLS engine until connected (or sent 0-RTT).
        self.tls.write_app(&framing::frame(&msg.encode()));
    }

    fn on_packet(&mut self, now: SimTime, pkt: &Packet, out: &mut Vec<Packet>) {
        if let Some(seg) = TcpSegment::decode(&pkt.payload) {
            self.tcp.on_segment(now, &seg);
        }
        if self.tcp.is_established() && !self.tls_started {
            self.tls_started = true;
            self.tls.start(now);
        }
        self.pump(now, out);
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        if self.tcp.is_established() && !self.tls_started {
            self.tls_started = true;
            self.tls.start(now);
        }
        self.pump(now, out);
    }

    fn next_timeout(&self) -> Option<SimTime> {
        self.tcp.next_timeout()
    }

    fn take_responses(&mut self) -> Vec<(SimTime, Message)> {
        std::mem::take(&mut self.responses)
    }

    fn handshake_done_at(&self) -> Option<SimTime> {
        self.tls.connected_at()
    }

    fn failed(&self) -> bool {
        self.tcp.is_reset() || self.tls.error().is_some()
    }

    fn failure(&self) -> Option<FailureKind> {
        if self.tls.error().is_some() {
            return Some(FailureKind::HandshakeFail);
        }
        classify_tcp_failure(&self.tcp)
    }

    fn session_state(&mut self) -> SessionState {
        std::mem::take(&mut self.session_out)
    }

    fn close(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.tcp.close();
        self.pump(now, out);
    }

    fn metadata(&self) -> ConnMetadata {
        ConnMetadata {
            tls13: self
                .tls
                .negotiated_version()
                .map(|v| v == doqlab_netstack::tls::TlsVersion::Tls13),
            zero_rtt: self.tls.early_data_accepted() == Some(true),
            ..ConnMetadata::default()
        }
    }
}

/// True while a query is outstanding on this connection — the state
/// that triggers the dnsproxy DoT reconnect bug the paper found.
impl DoTClient {
    pub fn has_inflight_query(&self) -> bool {
        !self.pending.is_empty()
    }

    pub fn is_connected(&self) -> bool {
        self.tls.is_connected()
    }
}
