//! Campaign-unit benchmarks: the cost of one single-query measurement
//! unit (warm + measured connection over a geographic path) and one
//! full page-load simulation — the quantities that determine how long
//! a paper-scale campaign (~800k single-query units, ~280k page loads)
//! takes on this machine.

use criterion::{criterion_group, criterion_main, Criterion};
use doqlab_dox::DnsTransport;
use doqlab_measure::single_query::{run_unit, SingleQueryCampaign};
use doqlab_measure::{vantage_points, Scale};
use doqlab_resolver::synthesize_dox_population;
use doqlab_webperf::{run_page_load, tranco_top10, PageLoadConfig};

fn single_query_units(c: &mut Criterion) {
    let population = synthesize_dox_population(1);
    let campaign = SingleQueryCampaign::new(Scale::quick());
    let vps = vantage_points();
    let mut group = c.benchmark_group("single_query_unit");
    for transport in DnsTransport::ALL {
        group.bench_function(transport.name(), |b| {
            b.iter(|| run_unit(&campaign, &vps[0], &population[42], transport, 0))
        });
    }
    group.finish();
}

fn page_loads(c: &mut Criterion) {
    let pages = tranco_top10();
    let mut group = c.benchmark_group("page_load");
    group.sample_size(20);
    for (label, page) in [("wikipedia_doq", &pages[0]), ("youtube_doq", &pages[9])] {
        let cfg = PageLoadConfig {
            seed: 3,
            ..PageLoadConfig::new(page.clone(), DnsTransport::DoQ)
        };
        group.bench_function(label, |b| b.iter(|| run_page_load(&cfg)));
    }
    let cfg = PageLoadConfig {
        seed: 3,
        ..PageLoadConfig::new(pages[0].clone(), DnsTransport::DoUdp)
    };
    group.bench_function("wikipedia_doudp", |b| b.iter(|| run_page_load(&cfg)));
    group.finish();
}

criterion_group!(benches, single_query_units, page_loads);
criterion_main!(benches);
