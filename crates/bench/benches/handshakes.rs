//! Handshake-level benchmarks: how much host CPU one simulated
//! handshake of each flavour costs. These bound the wall-clock of the
//! full campaigns (a paper-scale single-query run is ~800k of these).

use criterion::{criterion_group, criterion_main, Criterion};
use doqlab_netstack::quic::{QuicConfig, QuicConnection, QuicServer, QUIC_V1};
use doqlab_netstack::tcp::{TcpConfig, TcpSocket};
use doqlab_netstack::tls::{TlsClient, TlsConfig, TlsServer};
use doqlab_simnet::{Ipv4Addr, SimRng, SimTime, SocketAddr};

fn sa(h: u8, port: u16) -> SocketAddr {
    SocketAddr::new(Ipv4Addr::new(10, 0, 0, h), port)
}

fn tcp_handshake(c: &mut Criterion) {
    c.bench_function("tcp_handshake_and_teardown", |b| {
        b.iter(|| {
            let mut a = TcpSocket::client(sa(1, 1000), sa(2, 53), 1, TcpConfig::default());
            let mut s = TcpSocket::server(sa(2, 53), sa(1, 1000), 2, TcpConfig::default());
            a.open(SimTime::ZERO);
            a.send(b"request");
            for _ in 0..12 {
                for seg in a.poll(SimTime::ZERO) {
                    s.on_segment(SimTime::ZERO, &seg);
                }
                let _ = s.recv();
                for seg in s.poll(SimTime::ZERO) {
                    a.on_segment(SimTime::ZERO, &seg);
                }
                if a.is_established() && s.is_established() {
                    break;
                }
            }
            assert!(a.is_established());
        })
    });
}

fn tls_handshake(c: &mut Criterion) {
    let cfg = TlsConfig {
        server_id: 7,
        alpn: vec![b"dot".to_vec()],
        ..TlsConfig::default()
    };
    c.bench_function("tls13_full_handshake", |b| {
        b.iter(|| {
            let mut client = TlsClient::new(cfg.clone(), None);
            let mut server = TlsServer::new(cfg.clone());
            client.start(SimTime::ZERO);
            for _ in 0..6 {
                let out = client.take_output();
                if !out.is_empty() {
                    server.read_wire(SimTime::ZERO, &out);
                }
                let out = server.take_output();
                if !out.is_empty() {
                    client.read_wire(SimTime::ZERO, &out);
                }
                if client.is_connected() && server.is_connected() {
                    break;
                }
            }
            assert!(client.is_connected());
        })
    });
}

fn quic_handshake(c: &mut Criterion) {
    let cfg = QuicConfig {
        tls: TlsConfig {
            server_id: 7,
            alpn: vec![b"doq".to_vec()],
            ..TlsConfig::default()
        },
        ..QuicConfig::default()
    };
    c.bench_function("quic_full_handshake_with_query", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(1);
            let mut client = QuicConnection::client(
                cfg.clone(),
                sa(1, 40000),
                sa(2, 853),
                QUIC_V1,
                None,
                None,
                &mut rng,
                SimTime::ZERO,
            );
            let mut server = QuicServer::new(sa(2, 853), cfg.clone());
            let stream = client.open_bi();
            client.stream_send(stream, b"query", true);
            for _ in 0..12 {
                for d in client.poll_transmit(SimTime::ZERO) {
                    server.handle_datagram(SimTime::ZERO, sa(1, 40000), &d);
                }
                for (_, d) in server.poll_transmit(SimTime::ZERO) {
                    client.handle_datagram(SimTime::ZERO, &d);
                }
                if client.is_established() {
                    if let Some(conn) = server.connection(sa(1, 40000)) {
                        for s in conn.take_new_peer_streams() {
                            let (data, _) = conn.stream_recv(s);
                            if !data.is_empty() {
                                conn.stream_send(s, b"answer", true);
                            }
                        }
                    }
                }
                let (resp, fin) = client.stream_recv(stream);
                if fin && !resp.is_empty() {
                    break;
                }
            }
            assert!(client.is_established());
        })
    });
}

criterion_group!(benches, tcp_handshake, tls_handshake, quic_handshake);
criterion_main!(benches);
