//! Micro-benchmarks of the protocol codecs: DNS message encode/decode
//! (with compression), the 2-byte stream framing, QUIC varints and
//! frames, and HPACK — the per-packet costs every simulated campaign
//! pays millions of times.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use doqlab_dnswire::{framing, Message, Name, RData, RecordType, ResourceRecord};
use doqlab_netstack::http2::{HpackDecoder, HpackEncoder};
use doqlab_netstack::quic::{read_varint, write_varint, Frame};

fn dns_codec(c: &mut Criterion) {
    let query = Message::query(7, Name::parse("www.google.com").unwrap(), RecordType::A);
    let mut response = Message::response_to(
        &query,
        vec![
            ResourceRecord::new(
                Name::parse("www.google.com").unwrap(),
                300,
                RData::A([142, 250, 1, 1]),
            ),
            ResourceRecord::new(
                Name::parse("www.google.com").unwrap(),
                300,
                RData::Aaaa([0x20; 16]),
            ),
        ],
    );
    response.authorities.push(ResourceRecord::new(
        Name::parse("google.com").unwrap(),
        3600,
        RData::Ns(Name::parse("ns1.google.com").unwrap()),
    ));
    let wire = response.encode();

    let mut group = c.benchmark_group("dns_codec");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("encode_response", |b| {
        b.iter(|| black_box(&response).encode())
    });
    group.bench_function("decode_response", |b| {
        b.iter(|| Message::decode(black_box(&wire)).unwrap())
    });
    group.bench_function("frame_and_deframe", |b| {
        b.iter(|| {
            let framed = framing::frame(black_box(&wire));
            let mut r = framing::LengthPrefixedReader::new();
            r.push(&framed);
            r.next_message().unwrap()
        })
    });
    group.finish();
}

fn quic_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("quic");
    group.bench_function("varint_roundtrip", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(32);
            for v in [0u64, 63, 16_000, 1_000_000, 4_000_000_000] {
                write_varint(&mut buf, black_box(v));
            }
            let mut pos = 0;
            let mut sum = 0u64;
            while pos < buf.len() {
                sum += read_varint(&buf, &mut pos).unwrap();
            }
            sum
        })
    });
    let frames = vec![
        Frame::Crypto {
            offset: 0,
            data: vec![0; 900],
        },
        Frame::Ack {
            ranges: vec![(9, 7), (4, 0)],
            delay: 0,
        },
        Frame::Stream {
            id: 0,
            offset: 0,
            data: vec![0; 120],
            fin: true,
        },
        Frame::Padding(100),
    ];
    let mut payload = Vec::new();
    for f in &frames {
        f.encode(&mut payload);
    }
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("frame_decode_all", |b| {
        b.iter(|| Frame::decode_all(black_box(&payload)).unwrap())
    });
    group.finish();
}

fn hpack(c: &mut Criterion) {
    let headers = [
        (":method", "POST"),
        (":scheme", "https"),
        (":authority", "dns.resolver.example"),
        (":path", "/dns-query"),
        ("accept", "application/dns-message"),
        ("content-type", "application/dns-message"),
        ("content-length", "47"),
    ];
    c.bench_function("hpack_first_request", |b| {
        b.iter(|| {
            let mut enc = HpackEncoder::new();
            let mut dec = HpackDecoder::new();
            let block = enc.encode(black_box(&headers));
            dec.decode(&block).unwrap()
        })
    });
    c.bench_function("hpack_repeat_request", |b| {
        let mut enc = HpackEncoder::new();
        let mut dec = HpackDecoder::new();
        let warm = enc.encode(&headers);
        dec.decode(&warm).unwrap();
        b.iter(|| {
            let block = enc.encode(black_box(&headers));
            dec.decode(&block).unwrap()
        })
    });
}

criterion_group!(benches, dns_codec, quic_primitives, hpack);
criterion_main!(benches);
