//! Arena-reuse benchmark: the same single-query measurement unit run
//! with a fresh simulator per call (`run_unit`, what the campaigns did
//! before the engine) versus a reused per-worker arena
//! (`run_unit_in`, what `engine::run_units` gives every worker). The
//! delta is the allocation overhead the arena amortises across a
//! campaign's hundreds of thousands of units.

use criterion::{criterion_group, criterion_main, Criterion};
use doqlab_dox::DnsTransport;
use doqlab_measure::single_query::{run_unit, run_unit_in, SingleQueryCampaign};
use doqlab_measure::{vantage_points, Scale};
use doqlab_resolver::synthesize_dox_population;
use doqlab_simnet::Simulator;

fn arena_reuse(c: &mut Criterion) {
    let population = synthesize_dox_population(1);
    let campaign = SingleQueryCampaign::new(Scale::quick());
    let vps = vantage_points();
    let mut group = c.benchmark_group("single_query_unit_alloc");
    group.bench_function("fresh_simulator", |b| {
        b.iter(|| run_unit(&campaign, &vps[0], &population[42], DnsTransport::DoQ, 0))
    });
    group.bench_function("arena_reuse", |b| {
        let mut sim = Simulator::arena();
        b.iter(|| {
            run_unit_in(
                &mut sim,
                &campaign,
                &vps[0],
                &population[42],
                DnsTransport::DoQ,
                0,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, arena_reuse);
criterion_main!(benches);
