//! # doqlab-bench — experiment regenerators and benchmarks
//!
//! One binary per paper artefact (see DESIGN.md's experiment index):
//!
//! | binary | artefact |
//! |---|---|
//! | `fig1_discovery` | §2 funnel + Fig. 1 geography |
//! | `overview_versions` | §3 protocol/feature overview |
//! | `table1_sizes` | Table 1 |
//! | `fig2a_handshake` / `fig2b_resolve` | Fig. 2 |
//! | `fig3_cdf` | Fig. 3 |
//! | `fig4_doq_vs` | Fig. 4 |
//! | `headline_claims` | abstract / §5 numbers |
//! | `ablation_amplification` | A1: no-resumption amplification stall |
//! | `ablation_dot_bug` | A2: dnsproxy DoT reconnect bug |
//! | `ablation_0rtt` | A3: 0-RTT resolvers (§4 future work) |
//! | `campaign_throughput` | E13: engine throughput (units/s, events/s) -> `BENCH_7.json` |
//!
//! Every binary accepts `--scale quick|medium|paper` (default `medium`),
//! `--seed N` and `--json` (machine-readable output); paper-reference
//! values are printed alongside for comparison. The environment
//! variables `DOQLAB_SEED` (default seed) and `DOQLAB_THREADS`
//! (campaign worker count) override via the measurement engine.

use doqlab_core::measure::Scale;
use doqlab_core::Study;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct Options {
    pub study: Study,
    pub json: bool,
    pub scale_name: String,
}

/// Parse `--scale`, `--seed`, `--json` from `std::env::args`. The
/// seed default honours `DOQLAB_SEED`, and every campaign honours
/// `DOQLAB_THREADS`, via the engine's env overrides.
pub fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().collect();
    let mut seed = doqlab_core::measure::engine::env_seed(2022);
    let mut scale_name = "medium".to_string();
    let mut json = false;
    let mut resolvers: Option<usize> = None;
    let mut pages: Option<usize> = None;
    let mut reps: Option<usize> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                scale_name = args[i + 1].clone();
                i += 1;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().expect("--seed takes a number");
                i += 1;
            }
            "--json" => json = true,
            "--resolvers" if i + 1 < args.len() => {
                resolvers = Some(args[i + 1].parse().expect("--resolvers takes a number"));
                i += 1;
            }
            "--pages" if i + 1 < args.len() => {
                pages = Some(args[i + 1].parse().expect("--pages takes a number"));
                i += 1;
            }
            "--reps" if i + 1 < args.len() => {
                reps = Some(args[i + 1].parse().expect("--reps takes a number"));
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: [--scale quick|medium|paper] [--seed N] [--json] \
                     [--resolvers N] [--pages N] [--reps N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let mut study = match scale_name.as_str() {
        "quick" => Study::quick(seed),
        "medium" => Study::medium(seed),
        "paper" => Study::paper(seed),
        other => {
            eprintln!("unknown scale '{other}' (quick|medium|paper)");
            std::process::exit(2);
        }
    };
    if let Some(n) = resolvers {
        study.scale.resolvers = Some(n);
    }
    if let Some(n) = pages {
        study.scale.pages = Some(n);
    }
    if let Some(n) = reps {
        study.scale.repetitions = n;
        study.scale.rounds = n;
    }
    Options {
        study,
        json,
        scale_name,
    }
}

/// A scale override helper for experiments that need a custom grid.
pub fn with_scale(study: &Study, f: impl FnOnce(&mut Scale)) -> Study {
    let mut s = study.clone();
    f(&mut s.scale);
    s
}

/// Print a labelled paper-vs-measured comparison line.
pub fn compare(label: &str, paper: &str, measured: String) {
    println!("{label:<52} paper: {paper:<18} measured: {measured}");
}
