//! E4 — Fig. 2b: median resolve time per protocol and vantage point.

use doqlab_bench::parse_options;
use doqlab_core::measure::report::{fig2, render_fig2};

fn main() {
    let opts = parse_options();
    let samples = opts.study.run_single_query();
    let f = fig2(&samples);
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&f.resolve_ms).expect("serializable")
        );
    }
    println!("== E4: Fig. 2b — resolve time ==");
    println!("{}", render_fig2(&f));
    // Paper: resolve times are similar across protocols (cached
    // answers) and track vantage-point <-> resolver distance: EU
    // fastest; AF/OC/SA slowest.
    let row_med = |row: &str| -> f64 {
        let r = &f.resolve_ms[row];
        let v: Vec<f64> = r.values().copied().collect();
        doqlab_core::measure::median(&v).unwrap_or(f64::NAN)
    };
    println!("Shape checks:");
    println!(
        "  protocols within a row stay close (max/min of Total row): {:.2} (expect < 1.5)",
        {
            let r = &f.resolve_ms["Total"];
            let max = r.values().cloned().fold(f64::MIN, f64::max);
            let min = r.values().cloned().fold(f64::MAX, f64::min);
            max / min
        }
    );
    println!(
        "  EU fastest row: EU {:.1} ms vs AF {:.1} / OC {:.1} / SA {:.1} ms",
        row_med("EU"),
        row_med("AF"),
        row_med("OC"),
        row_med("SA"),
    );
}
