//! E2 — Table 1: median single-query sizes and sample counts.

use doqlab_bench::parse_options;
use doqlab_core::measure::report::{render_table1, table1};

/// The paper's Table 1 (median IP payload bytes).
const PAPER: &[(&str, [f64; 5])] = &[
    ("DoUDP", [122.0, 0.0, 0.0, 59.0, 63.0]),
    ("DoTCP", [382.0, 72.0, 40.0, 149.0, 121.0]),
    ("DoQ", [4444.0, 2564.0, 1304.0, 190.0, 386.0]),
    ("DoH", [2163.0, 569.0, 211.0, 579.0, 804.0]),
    ("DoT", [1522.0, 551.0, 211.0, 261.0, 499.0]),
];

fn main() {
    let opts = parse_options();
    let samples = opts.study.run_single_query();
    let t = table1(&samples);
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&t).expect("serializable")
        );
    }
    println!("== E2: Table 1 (median single-query sizes, bytes of IP payload) ==\n");
    println!("--- measured ({} scale) ---", opts.scale_name);
    println!("{}", render_table1(&t));
    println!("--- paper (Table 1) ---");
    println!(
        "{:<28}{:>8}{:>8}{:>8}{:>8}{:>8}",
        "", "DoUDP", "DoTCP", "DoQ", "DoH", "DoT"
    );
    let labels = [
        "Total",
        "Handshake C->R",
        "Handshake R->C",
        "DNS Query",
        "DNS Response",
    ];
    for (i, label) in labels.iter().enumerate() {
        print!("{label:<28}");
        for (_, vals) in PAPER {
            if vals[i] == 0.0 {
                print!("{:>8}", "-");
            } else {
                print!("{:>8.0}", vals[i]);
            }
        }
        println!();
    }
    println!(
        "\nShape checks (orderings the evaluation relies on):\n  \
         total: DoUDP < DoTCP < DoT < DoH < DoQ  -> {}\n  \
         DoQ handshake > 2x DoH handshake        -> {}",
        {
            let v: Vec<f64> = ["DoUDP", "DoTCP", "DoT", "DoH", "DoQ"]
                .iter()
                .map(|n| t.sizes[*n][0])
                .collect();
            v.windows(2).all(|w| w[0] < w[1])
        },
        t.sizes["DoQ"][1] + t.sizes["DoQ"][2] > 2.0 * (t.sizes["DoH"][1] + t.sizes["DoH"][2])
    );
}
