//! A4 — ablation: RFC 9210-compliant DoTCP.
//!
//! §3.2 observes that no resolver supports `edns-tcp-keepalive` (or
//! TFO) and no connection is re-used, so every DoTCP query pays the
//! full 2 RTT. This ablation upgrades both sides — resolvers honour
//! keepalive, the proxy re-uses the connection like RFC 9210
//! recommends — and measures how much of DoTCP's Web-performance gap
//! that recovers.

use doqlab_bench::{compare, parse_options};
use doqlab_core::dox::DnsTransport;
use doqlab_core::measure::median;
use doqlab_core::resolver::ResolverProfile;
use doqlab_core::simnet::Duration;
use doqlab_core::webperf::{run_page_load, PageLoadConfig};

fn main() {
    let opts = parse_options();
    let population = opts.study.population();
    let pages = opts.study.pages();
    let vps = doqlab_core::measure::vantage_points();

    // The campaign abstraction keeps client behaviour fixed, so this
    // ablation drives run_page_load directly with both sides upgraded.
    let scale = &opts.study.scale;
    let resolvers: Vec<&ResolverProfile> = {
        let n = scale
            .resolvers
            .unwrap_or(population.len())
            .min(population.len());
        let stride = (population.len() / n.max(1)).max(1);
        population.iter().step_by(stride).take(n).collect()
    };
    let page_count = scale.pages.unwrap_or(pages.len()).min(pages.len());

    let mut plt_default = Vec::new();
    let mut plt_upgraded = Vec::new();
    let mut conns_default = Vec::new();
    let mut conns_upgraded = Vec::new();
    for vp in &vps {
        for r in &resolvers {
            for page in pages.iter().take(page_count) {
                for upgraded in [false, true] {
                    let mut resolver_cfg = r.server_config();
                    if upgraded {
                        resolver_cfg.tcp_keepalive = true;
                        resolver_cfg.enable_tfo = true;
                        resolver_cfg.close_tcp_after_response = false;
                    }
                    let mut cfg = PageLoadConfig::new(page.clone(), DnsTransport::DoTcp);
                    cfg.seed = opts.study.seed
                        ^ (vp.index as u64) << 32
                        ^ (r.index as u64) << 8
                        ^ page.dns_query_count() as u64;
                    cfg.resolver = resolver_cfg;
                    cfg.vp_location = vp.location;
                    cfg.resolver_location = r.location;
                    cfg.load_timeout = Duration::from_secs(30);
                    cfg.tcp_keepalive_client = upgraded;
                    let loads = run_page_load(&cfg);
                    let Some(r0) = loads.first().filter(|l| !l.failed) else {
                        continue;
                    };
                    if upgraded {
                        plt_upgraded.push(r0.plt_ms);
                        conns_upgraded.push(r0.proxy_connections as f64);
                    } else {
                        plt_default.push(r0.plt_ms);
                        conns_default.push(r0.proxy_connections as f64);
                    }
                }
            }
        }
    }

    println!("== A4: RFC 9210 DoTCP ablation (keepalive + TFO + reuse) ==\n");
    compare(
        "Median DoTCP connections per load (observed behaviour)",
        "= #queries",
        format!("{:.1}", median(&conns_default).unwrap_or(f64::NAN)),
    );
    compare(
        "Median DoTCP connections per load (RFC 9210)",
        "1",
        format!("{:.1}", median(&conns_upgraded).unwrap_or(f64::NAN)),
    );
    compare(
        "Median DoTCP PLT, observed behaviour (ms)",
        "2 RTT per query",
        format!("{:.1}", median(&plt_default).unwrap_or(f64::NAN)),
    );
    compare(
        "Median DoTCP PLT, RFC 9210 behaviour (ms)",
        "-> DoUDP-like",
        format!("{:.1}", median(&plt_upgraded).unwrap_or(f64::NAN)),
    );
    if opts.json {
        let out = serde_json::json!({
            "default":  { "plt_median_ms": median(&plt_default), "conns_median": median(&conns_default) },
            "rfc9210":  { "plt_median_ms": median(&plt_upgraded), "conns_median": median(&conns_upgraded) },
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
