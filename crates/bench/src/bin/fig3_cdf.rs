//! E5/E6 — Fig. 3: CDFs of the relative FCP and PLT differences of
//! every protocol against DoUDP.

use doqlab_bench::{compare, parse_options};
use doqlab_core::dox::DnsTransport;
use doqlab_core::measure::report::{relative_to_baseline, render_fig3};
use doqlab_core::measure::Cdf;

fn main() {
    let opts = parse_options();
    let samples = opts.study.run_webperf();
    let diffs = relative_to_baseline(&samples, DnsTransport::DoUdp);
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&diffs).expect("serializable")
        );
    }
    println!("== E5/E6: Fig. 3 — relative differences vs DoUDP ==");
    println!("{}", render_fig3(&diffs, "FCP"));
    println!("{}", render_fig3(&diffs, "PLT"));

    // Paper anchors.
    let frac_at = |proto: &str, table: &std::collections::BTreeMap<String, Vec<f64>>, x: f64| {
        table
            .get(proto)
            .map(|v| Cdf::new(v).fraction_at_or_below(x))
            .unwrap_or(f64::NAN)
    };
    println!("\nPaper anchor points:");
    compare(
        "  FCP: fraction of DoQ loads delayed <= 10%",
        "~40%",
        format!("{:.0}%", frac_at("DoQ", &diffs.fcp, 10.0) * 100.0),
    );
    compare(
        "  FCP: DoT delayed > 20% at that same fraction",
        ">20% delay",
        format!(
            "DoT <=20% frac: {:.0}%",
            frac_at("DoT", &diffs.fcp, 20.0) * 100.0
        ),
    );
    compare(
        "  PLT: fraction of DoQ loads with > 15% increase",
        "<15%",
        format!("{:.0}%", (1.0 - frac_at("DoQ", &diffs.plt, 15.0)) * 100.0),
    );
    compare(
        "  PLT: fraction of DoH loads with > 15% increase",
        ">40%",
        format!("{:.0}%", (1.0 - frac_at("DoH", &diffs.plt, 15.0)) * 100.0),
    );
    compare(
        "  faster-than-DoUDP share (long tail, any encrypted)",
        "~10%",
        format!("DoQ: {:.0}%", frac_at("DoQ", &diffs.plt, 0.0) * 100.0),
    );
}
