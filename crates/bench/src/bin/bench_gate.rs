//! CI perf-regression gate: compares a fresh `campaign_throughput`
//! report against the latest committed `BENCH_*.json` and fails when
//! any campaign's `events_per_s` regressed by more than the threshold
//! (default 30% — wide enough to absorb shared-runner noise, tight
//! enough to catch a hot-path regression, which historically shows up
//! as an order of magnitude).
//!
//! ```text
//! bench_gate --fresh fresh_bench.json [--baseline BENCH_8.json]
//!            [--threshold 0.30] [--dir .]
//! ```
//!
//! Without `--baseline`, the highest-numbered `BENCH_<n>.json` in
//! `--dir` (default: current directory) is used, so the gate follows
//! whichever snapshot the repo most recently committed. Campaigns
//! present only on one side are reported but do not fail the gate: a
//! new campaign has no baseline to regress from.

use std::process::exit;

struct Campaign {
    campaign: String,
    events_per_s: f64,
}

struct Report {
    scale: String,
    seed: u64,
    clients: u64,
    campaigns: Vec<Campaign>,
}

/// `"key": "value"` on a pretty-printed line -> `value`.
fn str_field(line: &str, key: &str) -> Option<String> {
    let rest = line.trim().strip_prefix(&format!("\"{key}\": \""))?;
    Some(rest.trim_end_matches(',').trim_end_matches('"').to_string())
}

/// `"key": 123.4` on a pretty-printed line -> `123.4`.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let rest = line.trim().strip_prefix(&format!("\"{key}\": "))?;
    rest.trim_end_matches(',').parse().ok()
}

/// Parse a `campaign_throughput` report. The vendored serde_json is
/// serialize-only, so this reads the known pretty-printed shape
/// line-by-line; it is strict about the fields the gate needs and
/// ignores everything else (so adding metrics like `allocs_per_event`
/// never breaks old gates).
fn load(path: &str) -> Report {
    let data = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read {path}: {e}");
        exit(2);
    });
    let (mut scale, mut seed, mut clients) = (None, None, None);
    let mut campaigns: Vec<Campaign> = Vec::new();
    let mut current: Option<String> = None;
    for line in data.lines() {
        if let Some(v) = str_field(line, "scale") {
            scale = Some(v);
        } else if let Some(v) = num_field(line, "seed") {
            seed = Some(v as u64);
        } else if let Some(v) = num_field(line, "clients") {
            clients = Some(v as u64);
        } else if let Some(v) = str_field(line, "campaign") {
            current = Some(v);
        } else if let Some(v) = num_field(line, "events_per_s") {
            let Some(campaign) = current.take() else {
                eprintln!("bench_gate: {path}: events_per_s before a campaign name");
                exit(2);
            };
            campaigns.push(Campaign {
                campaign,
                events_per_s: v,
            });
        }
    }
    match (scale, seed, clients) {
        (Some(scale), Some(seed), Some(clients)) if !campaigns.is_empty() => Report {
            scale,
            seed,
            clients,
            campaigns,
        },
        _ => {
            eprintln!("bench_gate: {path}: not a campaign_throughput report");
            exit(2);
        }
    }
}

/// The highest-numbered `BENCH_<n>.json` in `dir`, if any.
fn latest_baseline(dir: &str) -> Option<String> {
    let mut best: Option<(u64, String)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let Ok(entry) = entry else { continue };
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, format!("{}/{name}", dir.trim_end_matches('/'))));
        }
    }
    best.map(|(_, path)| path)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut fresh_path = None;
    let mut baseline_path = None;
    let mut dir = ".".to_string();
    let mut threshold = 0.30f64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--fresh" if i + 1 < args.len() => {
                fresh_path = Some(args[i + 1].clone());
                i += 1;
            }
            "--baseline" if i + 1 < args.len() => {
                baseline_path = Some(args[i + 1].clone());
                i += 1;
            }
            "--dir" if i + 1 < args.len() => {
                dir = args[i + 1].clone();
                i += 1;
            }
            "--threshold" if i + 1 < args.len() => {
                threshold = args[i + 1].parse().expect("--threshold takes a fraction");
                i += 1;
            }
            other => {
                eprintln!(
                    "bench_gate: unknown argument {other}\n\
                     usage: bench_gate --fresh PATH [--baseline PATH] \
                     [--dir DIR] [--threshold FRACTION]"
                );
                exit(2);
            }
        }
        i += 1;
    }
    let Some(fresh_path) = fresh_path else {
        eprintln!("bench_gate: --fresh is required");
        exit(2);
    };
    let baseline_path = baseline_path
        .or_else(|| latest_baseline(&dir))
        .unwrap_or_else(|| {
            eprintln!("bench_gate: no BENCH_*.json baseline found in {dir}");
            exit(2);
        });

    let fresh = load(&fresh_path);
    let baseline = load(&baseline_path);
    println!(
        "== bench_gate: {fresh_path} vs {baseline_path} (threshold {:.0}%) ==\n",
        threshold * 100.0
    );
    if fresh.scale != baseline.scale
        || fresh.seed != baseline.seed
        || fresh.clients != baseline.clients
    {
        eprintln!(
            "bench_gate: configuration mismatch — fresh ({}, seed {}, {} clients) \
             vs baseline ({}, seed {}, {} clients); not comparable",
            fresh.scale, fresh.seed, fresh.clients, baseline.scale, baseline.seed, baseline.clients
        );
        exit(2);
    }

    println!(
        "{:<16}{:>14}{:>14}{:>10}",
        "campaign", "baseline ev/s", "fresh ev/s", "ratio"
    );
    let mut failures = Vec::new();
    for b in &baseline.campaigns {
        let Some(f) = fresh.campaigns.iter().find(|f| f.campaign == b.campaign) else {
            println!(
                "{:<16}{:>14.0}{:>14}{:>10}",
                b.campaign, b.events_per_s, "-", "gone"
            );
            continue;
        };
        let ratio = f.events_per_s / b.events_per_s.max(1e-9);
        println!(
            "{:<16}{:>14.0}{:>14.0}{:>10.2}",
            b.campaign, b.events_per_s, f.events_per_s, ratio
        );
        if ratio < 1.0 - threshold {
            failures.push(format!(
                "{}: {:.0} -> {:.0} events/s ({:.0}% of baseline)",
                b.campaign,
                b.events_per_s,
                f.events_per_s,
                ratio * 100.0
            ));
        }
    }
    for f in &fresh.campaigns {
        if !baseline.campaigns.iter().any(|b| b.campaign == f.campaign) {
            println!(
                "{:<16}{:>14}{:>14.0}{:>10}",
                f.campaign, "-", f.events_per_s, "new"
            );
        }
    }

    if failures.is_empty() {
        println!(
            "\nbench_gate: OK — no campaign regressed more than {:.0}%",
            threshold * 100.0
        );
    } else {
        eprintln!(
            "\nbench_gate: FAIL — events/s regressions beyond {:.0}%:",
            threshold * 100.0
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        exit(1);
    }
}
