//! E7 — Fig. 4: per-[vantage point x page] PLT comparison of DoQ
//! (baseline) against DoUDP and DoH, ordered by the page's average
//! DNS-query count.

use doqlab_bench::{compare, parse_options};
use doqlab_core::measure::median;
use doqlab_core::measure::report::{fig4, render_fig4};

fn main() {
    let opts = parse_options();
    let samples = opts.study.run_webperf();
    let cells = fig4(&samples);
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&cells).expect("serializable")
        );
    }
    println!("== E7: Fig. 4 — PLT vs DoQ per vantage point and page ==");
    println!("{}", render_fig4(&cells));

    // Aggregated paper anchors: simple pages profit most from DoQ's
    // 1-RTT setup; complex pages amortize the encryption cost.
    let page_median = |name: &str, f: &dyn Fn(&doqlab_core::measure::report::Fig4Cell) -> f64| {
        median(
            &cells
                .iter()
                .filter(|c| c.page == name)
                .map(f)
                .collect::<Vec<_>>(),
        )
        .unwrap_or(f64::NAN)
    };
    println!("Paper anchor points (medians across vantage points):");
    compare(
        "  wikipedia.org: DoH slower than DoQ by",
        "up to ~10%",
        format!(
            "{:.1}%",
            page_median("wikipedia.org", &|c| c.doh_rel_median_pct)
        ),
    );
    compare(
        "  wikipedia.org: DoUDP faster than DoQ by",
        "up to ~10%",
        format!(
            "{:.1}%",
            -page_median("wikipedia.org", &|c| c.doudp_rel_median_pct)
        ),
    );
    compare(
        "  youtube.com: DoUDP faster than DoQ by",
        "~2%",
        format!(
            "{:.1}%",
            -page_median("youtube.com", &|c| c.doudp_rel_median_pct)
        ),
    );
    compare(
        "  microsoft.com: DoUDP faster than DoQ by",
        "~2%",
        format!(
            "{:.1}%",
            -page_median("microsoft.com", &|c| c.doudp_rel_median_pct)
        ),
    );
    let overall_doq_wins = median(
        &cells
            .iter()
            .map(|c| c.doq_faster_than_doh)
            .collect::<Vec<_>>(),
    )
    .unwrap_or(f64::NAN);
    compare(
        "  DoQ faster than DoH (median cell)",
        "mostly improves",
        format!("{:.0}% of pairs", overall_doq_wins * 100.0),
    );
}
