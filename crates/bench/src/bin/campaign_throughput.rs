//! E13 — whole-campaign throughput: how fast the work-stealing engine
//! chews through each campaign, in units/second and simulator
//! events/second of wall-clock time.
//!
//! Runs every campaign at the requested scale (default `quick`, so CI
//! can afford it), times each run, and reads the engine's lock-free
//! `campaign.units_run` / `sim.events` counters for the denominators.
//! Results go to stdout and to `BENCH_10.json` (override with `--out`).
//!
//! Built with `--features count-allocs`, each campaign also reports
//! `allocs_per_event` — global allocator hits divided by simulator
//! events. The simulator core itself routes packets allocation-free
//! (pinned by simnet's `zero_alloc_route` test); what remains in this
//! ratio is protocol-layer work — DNS wire encoding, TLS records,
//! per-unit host setup — so it is a tracking number, not a zero: a
//! jump flags a per-packet or per-event allocation sneaking back into
//! a hot path.

use doqlab_core::measure::engine;
use doqlab_core::telemetry::metrics::{self, Counter};
use doqlab_core::Study;
use std::time::Instant;

#[cfg(feature = "count-allocs")]
fn allocations() -> Option<u64> {
    Some(doqlab_simnet::alloc_count::total_allocations())
}

#[cfg(not(feature = "count-allocs"))]
fn allocations() -> Option<u64> {
    None
}

#[derive(serde::Serialize)]
struct CampaignThroughput {
    campaign: String,
    units: u64,
    sim_events: u64,
    wall_s: f64,
    units_per_s: f64,
    events_per_s: f64,
    /// Allocator hits per simulator event over the whole campaign —
    /// only measured when built with the `count-allocs` feature.
    #[serde(skip_serializing_if = "Option::is_none")]
    allocs_per_event: Option<f64>,
}

#[derive(serde::Serialize)]
struct Report {
    scale: String,
    seed: u64,
    threads: usize,
    clients: u64,
    campaigns: Vec<CampaignThroughput>,
}

fn timed(name: &str, run: impl FnOnce()) -> CampaignThroughput {
    metrics::reset();
    let allocs_before = allocations();
    let start = Instant::now();
    run();
    let wall_s = start.elapsed().as_secs_f64();
    let allocs = allocations().zip(allocs_before).map(|(a, b)| a - b);
    let snap = metrics::snapshot();
    let units = snap.counter(Counter::UnitsRun);
    let sim_events = snap.counter(Counter::SimEvents);
    CampaignThroughput {
        campaign: name.to_string(),
        units,
        sim_events,
        wall_s,
        units_per_s: units as f64 / wall_s.max(1e-9),
        events_per_s: sim_events as f64 / wall_s.max(1e-9),
        allocs_per_event: allocs.map(|a| a as f64 / (sim_events as f64).max(1.0)),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut seed = engine::env_seed(2022);
    let mut scale_name = "quick".to_string();
    let mut out = "BENCH_10.json".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                scale_name = args[i + 1].clone();
                i += 1;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().expect("--seed takes a number");
                i += 1;
            }
            "--out" if i + 1 < args.len() => {
                out = args[i + 1].clone();
                i += 1;
            }
            other => {
                eprintln!(
                    "campaign_throughput: unknown argument {other}\n\
                     usage: campaign_throughput [--scale quick|medium|paper] \
                     [--seed N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let study = match scale_name.as_str() {
        "quick" => Study::quick(seed),
        "medium" => Study::medium(seed),
        "paper" => Study::paper(seed),
        other => {
            eprintln!("campaign_throughput: unknown scale {other}");
            std::process::exit(2);
        }
    };
    let scale = study.scale.clone();
    let threads = engine::env_threads(scale.threads);
    let clients = engine::env_clients(scale.clients.unwrap_or(0));

    metrics::set_enabled(true);
    let campaigns = vec![
        timed("single_query", || {
            study.run_single_query();
        }),
        timed("webperf", || {
            study.run_webperf();
        }),
        timed("impairments", || {
            study.run_impairments();
        }),
        timed("mobility", || {
            study.run_mobility();
        }),
        timed("populations", || {
            study.run_populations();
        }),
        timed("whatif", || {
            study.run_whatif();
        }),
    ];

    let report = Report {
        scale: scale_name.clone(),
        seed,
        threads,
        clients,
        campaigns,
    };
    println!("== E13: campaign throughput ({scale_name} scale, {threads} threads) ==\n");
    println!(
        "{:<16}{:>8}{:>14}{:>10}{:>12}{:>14}{:>12}",
        "campaign", "units", "sim events", "wall s", "units/s", "events/s", "allocs/ev"
    );
    for c in &report.campaigns {
        let allocs = c
            .allocs_per_event
            .map_or_else(|| "-".to_string(), |a| format!("{a:.3}"));
        println!(
            "{:<16}{:>8}{:>14}{:>10.2}{:>12.1}{:>14.0}{:>12}",
            c.campaign, c.units, c.sim_events, c.wall_s, c.units_per_s, c.events_per_s, allocs
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("campaign_throughput: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("\nwrote {out}");
}
