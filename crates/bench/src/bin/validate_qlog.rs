//! CI helper: validate a qlog JSON-SEQ trace file.
//!
//! Parses every RFC 7464 record with the telemetry crate's own JSON
//! parser (a full round trip of what `doqlab trace` emitted), checks
//! the qlog header, the per-event schema (`time`/`name`/`layer`/
//! `data`/`group_id`) and that the trace carries at least one event
//! each from the QUIC, TLS and congestion-control layers. Exits
//! non-zero with a diagnostic on any violation.
//!
//! ```sh
//! doqlab trace single-query --scale quick --trace-out trace.qlog
//! cargo run -p doqlab-bench --bin validate_qlog -- trace.qlog
//! ```

use doqlab_core::telemetry::qlog::{parse_seq, Json};
use std::collections::BTreeMap;

fn fail(msg: &str) -> ! {
    eprintln!("validate_qlog: {msg}");
    std::process::exit(1);
}

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        fail("usage: validate_qlog <trace.qlog>");
    };
    let input =
        std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    let records =
        parse_seq(&input).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON-SEQ: {e}")));

    let header = &records[0];
    if header.get("qlog_version").and_then(Json::as_str) != Some("0.3") {
        fail("header record missing qlog_version 0.3");
    }
    if header.get("qlog_format").and_then(Json::as_str) != Some("JSON-SEQ") {
        fail("header record missing qlog_format JSON-SEQ");
    }

    let mut by_layer: BTreeMap<String, usize> = BTreeMap::new();
    let mut groups: BTreeMap<String, usize> = BTreeMap::new();
    for (i, event) in records[1..].iter().enumerate() {
        let record = i + 1;
        if event.get("time").and_then(Json::as_f64).is_none() {
            fail(&format!("record {record}: missing numeric time"));
        }
        if event.get("name").and_then(Json::as_str).is_none() {
            fail(&format!("record {record}: missing event name"));
        }
        if event.get("data").is_none() {
            fail(&format!("record {record}: missing data member"));
        }
        let Some(layer) = event.get("layer").and_then(Json::as_str) else {
            fail(&format!("record {record}: missing layer member"));
        };
        let Some(group) = event.get("group_id").and_then(Json::as_str) else {
            fail(&format!("record {record}: missing group_id"));
        };
        *by_layer.entry(layer.to_string()).or_default() += 1;
        *groups.entry(group.to_string()).or_default() += 1;
    }

    for required in ["quic", "tls", "cc"] {
        if !by_layer.contains_key(required) {
            fail(&format!("no events from the {required} layer"));
        }
    }

    let events: usize = by_layer.values().sum();
    println!(
        "{path}: {events} events across {} connections OK",
        groups.len()
    );
    for (layer, n) in &by_layer {
        println!("  {layer:<6} {n:>6}");
    }
}
