//! A3 — future work (§4): resolvers with 0-RTT support.
//!
//! The paper expects 0-RTT to "shift the total response times of DoQ
//! even closer to DoUDP": the DNS query rides in the client's first
//! flight, making the exchange 1 RTT total — like DoUDP.

use doqlab_bench::{compare, parse_options};
use doqlab_core::dox::DnsTransport;
use doqlab_core::measure::median;

fn main() {
    let opts = parse_options();
    let baseline = opts.study.clone();
    let mut upgraded = opts.study.clone();
    upgraded.zero_rtt_resolvers = true;

    let s_base = baseline.run_single_query();
    let s_0rtt = upgraded.run_single_query();

    let total_ms = |samples: &[doqlab_core::measure::SingleQuerySample], t: DnsTransport| {
        median(
            &samples
                .iter()
                .filter(|s| s.transport == t && !s.failed)
                .filter_map(|s| Some(s.handshake_ms.unwrap_or(0.0) + s.resolve_ms?))
                .collect::<Vec<_>>(),
        )
        .unwrap_or(f64::NAN)
    };
    let udp = total_ms(&s_base, DnsTransport::DoUdp);
    let doq_base = total_ms(&s_base, DnsTransport::DoQ);
    let doq_0rtt = total_ms(&s_0rtt, DnsTransport::DoQ);
    let zero_rtt_share = {
        let doq: Vec<_> = s_0rtt
            .iter()
            .filter(|s| s.transport == DnsTransport::DoQ && !s.failed)
            .collect();
        doq.iter().filter(|s| s.metadata.zero_rtt).count() as f64 / doq.len().max(1) as f64
    };

    println!("== A3: 0-RTT resolver ablation (§4 future work) ==\n");
    compare(
        "DoUDP single-query total (ms)",
        "1 RTT",
        format!("{udp:.1}"),
    );
    compare(
        "DoQ total, today's resolvers (ms)",
        "~1.5x DoUDP",
        format!("{doq_base:.1}"),
    );
    compare(
        "DoQ total, 0-RTT resolvers (ms)",
        "-> DoUDP",
        format!("{doq_0rtt:.1}"),
    );
    compare(
        "DoQ falls short of DoUDP by (today)",
        "~50%",
        format!("{:.0}%", (1.0 - udp / doq_base) * 100.0),
    );
    compare(
        "DoQ falls short of DoUDP by (0-RTT)",
        "-> ~0%",
        format!("{:.0}%", (1.0 - udp / doq_0rtt) * 100.0),
    );
    compare(
        "Measured queries using accepted 0-RTT",
        "100% (upgraded)",
        format!("{:.0}%", zero_rtt_share * 100.0),
    );
    if opts.json {
        let out = serde_json::json!({
            "doudp_total_ms": udp,
            "doq_total_ms": doq_base,
            "doq_0rtt_total_ms": doq_0rtt,
            "zero_rtt_share": zero_rtt_share,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
