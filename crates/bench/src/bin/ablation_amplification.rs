//! A1 — ablation: Session Resumption off.
//!
//! Reproduces the authors' *preliminary* study (PAM 2022), where ~40%
//! of DoQ handshakes were one RTT slower because the full certificate
//! flight exceeded QUIC's 3x anti-amplification budget. With Session
//! Resumption (this paper's method) the certificate is skipped and the
//! stall disappears.

use doqlab_bench::{compare, parse_options};
use doqlab_core::dox::DnsTransport;
use doqlab_core::measure::single_query::SingleQueryCampaign;
use doqlab_core::measure::{median, percentile, run_single_query_campaign};

fn main() {
    let opts = parse_options();
    let population = opts.study.population();
    let mut with = SingleQueryCampaign::new(opts.study.scale.clone());
    with.seed = opts.study.seed;
    let mut without = with.clone();
    without.use_resumption = false;

    let s_with = run_single_query_campaign(&with, &population);
    let s_without = run_single_query_campaign(&without, &population);

    let doq_hs = |samples: &[doqlab_core::measure::SingleQuerySample]| -> Vec<f64> {
        samples
            .iter()
            .filter(|s| s.transport == DnsTransport::DoQ)
            .filter_map(|s| s.handshake_ms)
            .collect()
    };
    let hs_with = doq_hs(&s_with);
    let hs_without = doq_hs(&s_without);

    // A stalled handshake takes ~2 RTT instead of 1; pair each
    // without-resumption sample against the same unit's with-resumption
    // handshake and count those that are >= 1.7x slower.
    let stalled = {
        let mut n = 0usize;
        let mut total = 0usize;
        for (a, b) in s_without.iter().zip(&s_with) {
            if a.transport != DnsTransport::DoQ {
                continue;
            }
            if let (Some(x), Some(y)) = (a.handshake_ms, b.handshake_ms) {
                total += 1;
                if x >= 1.7 * y {
                    n += 1;
                }
            }
        }
        (n, total)
    };

    println!("== A1: amplification-limit ablation (Session Resumption off) ==\n");
    compare(
        "DoQ handshake median, WITH resumption (ms)",
        "1 RTT",
        format!("{:.1}", median(&hs_with).unwrap_or(f64::NAN)),
    );
    compare(
        "DoQ handshake median, WITHOUT resumption (ms)",
        "1-2 RTT",
        format!("{:.1}", median(&hs_without).unwrap_or(f64::NAN)),
    );
    compare(
        "DoQ handshake p90, WITHOUT resumption (ms)",
        "2 RTT tail",
        format!("{:.1}", percentile(&hs_without, 90.0).unwrap_or(f64::NAN)),
    );
    compare(
        "Fraction of DoQ handshakes stalled by the limit",
        "~40% (PAM'22)",
        format!(
            "{:.0}% ({}/{})",
            stalled.0 as f64 / stalled.1.max(1) as f64 * 100.0,
            stalled.0,
            stalled.1
        ),
    );
    if opts.json {
        let out = serde_json::json!({
            "with_resumption_median_ms": median(&hs_with),
            "without_resumption_median_ms": median(&hs_without),
            "without_resumption_p90_ms": percentile(&hs_without, 90.0),
            "stalled_fraction": stalled.0 as f64 / stalled.1.max(1) as f64,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
