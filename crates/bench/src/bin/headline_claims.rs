//! E8 — the abstract/§5 headline claims, measured.

use doqlab_bench::{compare, parse_options};
use doqlab_core::measure::report::headline;

fn main() {
    let opts = parse_options();
    let sq = opts.study.run_single_query();
    let web = opts.study.run_webperf();
    let h = headline(&sq, &web);
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&h).expect("serializable")
        );
    }
    println!("== E8: headline claims ==\n");
    compare(
        "Single query: DoQ improves on DoT by",
        "~33%",
        format!("{:.1}%", h.doq_vs_dot_single_query_pct),
    );
    compare(
        "Single query: DoQ improves on DoH by",
        "~33%",
        format!("{:.1}%", h.doq_vs_doh_single_query_pct),
    );
    compare(
        "Single query: DoQ falls short of DoUDP by",
        "~50%",
        format!("{:.1}%", h.doq_vs_doudp_single_query_pct),
    );
    compare(
        "Single query: DoT/DoH fall short of DoUDP by",
        "~66%",
        format!("{:.1}%", h.dot_vs_doudp_single_query_pct),
    );
    compare(
        "Simple page: DoQ faster than DoH by",
        "up to ~10%",
        format!("{:.1}%", h.doq_vs_doh_simple_page_pct),
    );
    compare(
        "Simple page: DoQ slower than DoUDP by",
        "up to ~10%",
        format!("{:.1}%", h.doq_vs_doudp_simple_page_pct),
    );
    compare(
        "Complex page: DoQ slower than DoUDP by",
        "~2%",
        format!("{:.1}%", h.doq_vs_doudp_complex_page_pct),
    );
}
