//! A2 — ablation: the dnsproxy DoT reconnect bug on/off.
//!
//! §3.2: with a DoT query in flight, the unpatched dnsproxy opened a
//! brand-new connection for the next query — a full TCP+TLS handshake
//! in ~60% of page loads — which made DoT look worse than DoH. The
//! paper upstreamed a fix; `dot_bug = false` is that fix.

use doqlab_bench::{compare, parse_options};
use doqlab_core::dox::DnsTransport;
use doqlab_core::measure::webperf::WebperfCampaign;
use doqlab_core::measure::{median, run_webperf_campaign};

fn main() {
    let opts = parse_options();
    let population = opts.study.population();
    let pages = opts.study.pages();
    let mut buggy = WebperfCampaign::new(opts.study.scale.clone());
    buggy.seed = opts.study.seed;
    buggy.dot_bug = true;
    let mut fixed = buggy.clone();
    fixed.dot_bug = false;

    let s_buggy = run_webperf_campaign(&buggy, &population, &pages);
    let s_fixed = run_webperf_campaign(&fixed, &population, &pages);

    let dot_stats = |samples: &[doqlab_core::measure::WebperfSample]| {
        let dot: Vec<&doqlab_core::measure::WebperfSample> = samples
            .iter()
            .filter(|s| s.transport == DnsTransport::DoT && !s.failed)
            .collect();
        let plt = median(&dot.iter().map(|s| s.plt_ms).collect::<Vec<_>>()).unwrap_or(f64::NAN);
        let multi: Vec<&&doqlab_core::measure::WebperfSample> =
            dot.iter().filter(|s| s.page_dns_queries > 1).collect();
        let reconnect_loads = multi.iter().filter(|s| s.proxy_connections > 1).count() as f64
            / multi.len().max(1) as f64;
        let conns = median(
            &dot.iter()
                .map(|s| s.proxy_connections as f64)
                .collect::<Vec<_>>(),
        )
        .unwrap_or(f64::NAN);
        (plt, reconnect_loads, conns)
    };
    let (plt_buggy, frac_buggy, conns_buggy) = dot_stats(&s_buggy);
    let (plt_fixed, frac_fixed, conns_fixed) = dot_stats(&s_fixed);

    println!("== A2: dnsproxy DoT reconnect-bug ablation ==\n");
    compare(
        "Multi-query page loads with extra DoT connections (bug ON)",
        "~60%",
        format!("{:.0}%", frac_buggy * 100.0),
    );
    compare(
        "... with the upstreamed fix (bug OFF)",
        "0%",
        format!("{:.0}%", frac_fixed * 100.0),
    );
    compare(
        "Median DoT connections per load (bug ON)",
        ">1",
        format!("{conns_buggy:.1}"),
    );
    compare(
        "Median DoT connections per load (bug OFF)",
        "1",
        format!("{conns_fixed:.1}"),
    );
    compare(
        "Median DoT PLT, bug ON (ms)",
        "worse than DoH",
        format!("{plt_buggy:.1}"),
    );
    compare(
        "Median DoT PLT, bug OFF (ms)",
        "~DoH",
        format!("{plt_fixed:.1}"),
    );
    if opts.json {
        let out = serde_json::json!({
            "bug_on":  { "plt_median_ms": plt_buggy, "reconnect_load_fraction": frac_buggy },
            "bug_off": { "plt_median_ms": plt_fixed, "reconnect_load_fraction": frac_fixed },
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
