//! E1 — the §3 overview: QUIC/DoQ/TLS version shares and feature
//! support observed in the measurements.

use doqlab_bench::{compare, parse_options};
use doqlab_core::measure::report::overview;

fn main() {
    let opts = parse_options();
    let samples = opts.study.run_single_query();
    let o = overview(&samples);
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&o).expect("serializable")
        );
    }
    println!("== E1: §3 overview ==\n");
    println!("QUIC versions (share of DoQ measurements):");
    for (name, paper) in [
        ("v1", "89.1%"),
        ("draft-34", "8.5%"),
        ("draft-32", "1.8%"),
        ("draft-29", "0.6%"),
    ] {
        let measured = o.quic_version_shares.get(name).copied().unwrap_or(0.0);
        compare(
            &format!("  {name}"),
            paper,
            format!("{:.1}%", measured * 100.0),
        );
    }
    println!("\nDoQ ALPN identifiers:");
    for (name, paper) in [
        ("doq-i02", "87.4%"),
        ("doq-i03", "10.8%"),
        ("doq-i00", "1.8%"),
    ] {
        let measured = o.doq_alpn_shares.get(name).copied().unwrap_or(0.0);
        compare(
            &format!("  {name}"),
            paper,
            format!("{:.1}%", measured * 100.0),
        );
    }
    println!("\nTLS and features:");
    compare(
        "  TLS 1.3 share (encrypted transports)",
        "~99%",
        format!("{:.1}%", o.tls13_share * 100.0),
    );
    compare(
        "  Session Resumption on measured queries",
        "100%",
        format!("{:.1}%", o.resumption_share * 100.0),
    );
    compare(
        "  0-RTT accepted",
        "0% (no resolver)",
        format!("{:.1}%", o.zero_rtt_share * 100.0),
    );
    compare(
        "  TCP Fast Open support",
        "0% (no resolver)",
        "0.0% (disabled in population)".to_string(),
    );
    compare(
        "  edns-tcp-keepalive support",
        "0% (no resolver)",
        "0.0% (disabled in population)".to_string(),
    );
}
