//! F1 — future work (§4): DNS over HTTP/3 preview.
//!
//! "The recently standardized HTTP/3 also uses QUIC as its transport
//! protocol" — the paper anticipates a DoQ vs DoH3 comparison once
//! resolvers deploy it. This experiment upgrades the resolver
//! population to serve DoH3 on UDP 443 and compares response times and
//! wire sizes of the three QUIC-era encrypted options (plus DoUDP as
//! the floor).

use doqlab_bench::{compare, parse_options};
use doqlab_core::dox::DnsTransport;
use doqlab_core::measure::single_query::{run_unit, SingleQueryCampaign};
use doqlab_core::measure::{median, vantage_points};

fn main() {
    let opts = parse_options();
    let population = opts.study.population();
    let vps = vantage_points();
    let mut campaign = SingleQueryCampaign::new(opts.study.scale.clone());
    campaign.seed = opts.study.seed;

    let n = opts
        .study
        .scale
        .resolvers
        .unwrap_or(population.len())
        .min(population.len());
    let stride = (population.len() / n.max(1)).max(1);
    let resolvers: Vec<_> = population.iter().step_by(stride).take(n).collect();

    let mut totals: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    let mut bytes: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    for vp in &vps {
        for r in &resolvers {
            for t in [
                DnsTransport::DoUdp,
                DnsTransport::DoQ,
                DnsTransport::DoH,
                DnsTransport::DoH3,
            ] {
                // Upgrade the resolver to DoH3 for this experiment; DoQ
                // and DoH behave exactly as in the main study.
                let mut profile = (*r).clone();
                let _ = &mut profile;
                let mut c = campaign.clone();
                c.enable_0rtt_resolvers = false;
                let sample = {
                    let mut cfg_holder = profile.clone();
                    let _ = &mut cfg_holder;
                    run_unit_doh3(&c, vp, r, t)
                };
                if let Some(rs) = sample.resolve_ms {
                    totals
                        .entry(t.name())
                        .or_default()
                        .push(sample.handshake_ms.unwrap_or(0.0) + rs);
                    bytes
                        .entry(t.name())
                        .or_default()
                        .push(sample.bytes.total() as f64);
                }
            }
        }
    }

    println!("== F1: DoH3 preview (§4 future work) ==\n");
    println!(
        "{:<8}{:>18}{:>18}",
        "proto", "median total (ms)", "median bytes"
    );
    for t in ["DoUDP", "DoQ", "DoH3", "DoH"] {
        println!(
            "{t:<8}{:>18.1}{:>18.0}",
            median(totals.get(t).map_or(&[][..], |v| v)).unwrap_or(f64::NAN),
            median(bytes.get(t).map_or(&[][..], |v| v)).unwrap_or(f64::NAN),
        );
    }
    let med = |t: &str| median(&totals[t]).unwrap();
    println!();
    compare(
        "DoH3 total vs DoQ",
        "equal round trips",
        format!("{:+.1}%", 100.0 * (med("DoH3") - med("DoQ")) / med("DoQ")),
    );
    compare(
        "DoH3 improvement over DoH (TCP-based)",
        "~33% (1 RTT saved)",
        format!("{:.1}%", 100.0 * (med("DoH") - med("DoH3")) / med("DoH")),
    );
    compare(
        "DoH3 bytes vs DoQ bytes",
        "higher (HTTP + QPACK)",
        format!(
            "{:+.0} bytes",
            median(&bytes["DoH3"]).unwrap() - median(&bytes["DoQ"]).unwrap()
        ),
    );
    if opts.json {
        let out = serde_json::json!({
            "median_total_ms": totals.iter().map(|(k, v)| (k.to_string(), median(v))).collect::<std::collections::BTreeMap<_, _>>(),
            "median_bytes": bytes.iter().map(|(k, v)| (k.to_string(), median(v))).collect::<std::collections::BTreeMap<_, _>>(),
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}

/// `run_unit` against a DoH3-upgraded copy of the resolver profile.
fn run_unit_doh3(
    campaign: &SingleQueryCampaign,
    vp: &doqlab_core::measure::VantagePoint,
    profile: &doqlab_core::resolver::ResolverProfile,
    transport: DnsTransport,
) -> doqlab_core::measure::SingleQuerySample {
    // The campaign's run_unit constructs the server from the profile;
    // enable DoH3 by upgrading the profile's server config through the
    // campaign's 0-RTT hook pattern: simplest is a local copy of the
    // profile with DoH3 enabled downstream. `run_unit` reads
    // `profile.server_config()`, which honours `supports_doh3` via the
    // profile's server_config override below.
    run_unit(campaign, vp, &with_doh3(profile), transport, 0)
}

fn with_doh3(
    profile: &doqlab_core::resolver::ResolverProfile,
) -> doqlab_core::resolver::ResolverProfile {
    let mut p = profile.clone();
    p.serve_doh3 = true;
    p
}
