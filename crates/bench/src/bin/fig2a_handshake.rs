//! E3 — Fig. 2a: median handshake time per protocol and vantage point.

use doqlab_bench::{compare, parse_options};
use doqlab_core::measure::report::{fig2, render_fig2};

fn main() {
    let opts = parse_options();
    let samples = opts.study.run_single_query();
    let f = fig2(&samples);
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&f.handshake_ms).expect("serializable")
        );
    }
    println!("== E3: Fig. 2a — handshake time ==");
    println!("{}", render_fig2(&f));
    // The paper's totals: DoH ~376 ms, DoT ~377 ms, DoTCP ~183 ms,
    // DoQ ~187 ms (2 RTT vs 1 RTT at a ~185 ms median RTT). Absolute
    // values depend on the latency model; the ratios must hold.
    let total = &f.handshake_ms["Total"];
    let ratio = |a: &str, b: &str| total[a] / total[b];
    println!("Shape checks (paper: DoT/DoQ ~ 2.0, DoH/DoTCP ~ 2.05, DoQ/DoTCP ~ 1.02):");
    compare(
        "  DoT / DoQ handshake ratio",
        "~2.0",
        format!("{:.2}", ratio("DoT", "DoQ")),
    );
    compare(
        "  DoH / DoTCP handshake ratio",
        "~2.05",
        format!("{:.2}", ratio("DoH", "DoTCP")),
    );
    compare(
        "  DoQ / DoTCP handshake ratio",
        "~1.02",
        format!("{:.2}", ratio("DoQ", "DoTCP")),
    );
}
