//! S1 — parameter sweep: packet loss vs. the DoUDP long tail.
//!
//! §3.2 attributes the cases where encrypted DNS *beats* DoUDP to
//! Chromium's 5-second application-layer retransmit: one lost DoUDP
//! query costs 5 s, while TCP and QUIC recover in ~1 s (and usually
//! faster once an RTT estimate exists). This sweep raises the path
//! loss rate and watches DoUDP's tail blow past DoQ's.

use doqlab_bench::parse_options;
use doqlab_core::dox::DnsTransport;
use doqlab_core::measure::single_query::{run_unit, SingleQueryCampaign};
use doqlab_core::measure::{median, percentile, vantage_points};

fn main() {
    let opts = parse_options();
    let population = opts.study.population();
    let vps = vantage_points();
    let n = opts
        .study
        .scale
        .resolvers
        .unwrap_or(24)
        .min(population.len());
    let stride = (population.len() / n.max(1)).max(1);
    let resolvers: Vec<_> = population.iter().step_by(stride).take(n).collect();
    let reps = opts.study.scale.repetitions.max(2);

    println!("== S1: loss sweep — DoUDP 5s retry vs transport-layer recovery ==\n");
    println!(
        "{:>7}{:>12}{:>12}{:>10}{:>12}{:>12}{:>10}",
        "loss", "UDP p50", "UDP p99", "UDP>2s", "DoQ p50", "DoQ p99", "DoQ>2s"
    );
    for loss in [0.0, 0.002, 0.01, 0.03, 0.06] {
        let mut campaign = SingleQueryCampaign::new(opts.study.scale.clone());
        campaign.seed = opts.study.seed ^ (loss * 1e6) as u64;
        campaign.path_params.loss = loss;
        let mut udp = Vec::new();
        let mut doq = Vec::new();
        for vp in &vps {
            for r in &resolvers {
                for rep in 0..reps {
                    for (t, bucket) in [
                        (DnsTransport::DoUdp, &mut udp),
                        (DnsTransport::DoQ, &mut doq),
                    ] {
                        let s = run_unit(&campaign, vp, r, t, rep);
                        if let Some(rs) = s.resolve_ms {
                            bucket.push(s.handshake_ms.unwrap_or(0.0) + rs);
                        }
                    }
                }
            }
        }
        let p = |v: &[f64], q: f64| percentile(v, q).unwrap_or(f64::NAN);
        let slow = |v: &[f64]| {
            100.0 * v.iter().filter(|x| **x > 2000.0).count() as f64 / v.len().max(1) as f64
        };
        println!(
            "{:>6.1}%{:>10.0}ms{:>10.0}ms{:>9.1}%{:>10.0}ms{:>10.0}ms{:>9.1}%",
            loss * 100.0,
            median(&udp).unwrap_or(f64::NAN),
            p(&udp, 99.0),
            slow(&udp),
            median(&doq).unwrap_or(f64::NAN),
            p(&doq, 99.0),
            slow(&doq),
        );
    }
    println!(
        "\nReading guide: at the median DoUDP always wins (1 RTT vs 2). In the tail,\n\
         rising loss flips the comparison: a lost DoUDP packet costs the full 5 s\n\
         application retry, a lost QUIC packet a ~1 s PTO — the paper's explanation\n\
         for the ~10% of page loads where encrypted DNS beat DoUDP."
    );
}
