//! E0 — the §2 discovery funnel and Fig. 1 geography.
//!
//! Runs the ZMap-style scan (version-0 QUIC probes, ALPN verification,
//! per-protocol support checks) over the synthesized scan population
//! and prints the funnel against the paper's numbers, plus the
//! continent/AS distribution of the verified resolvers.

use doqlab_bench::{compare, parse_options};
use doqlab_core::simnet::geo::Continent;
use std::collections::BTreeMap;

fn main() {
    let opts = parse_options();
    // The scan itself: the paper probed the IPv4 space; we probe the
    // synthesized population (1,216 DoQ resolvers + non-DoQ QUIC hosts).
    let extra_quic = if opts.scale_name == "quick" { 50 } else { 500 };
    let scan_pop = opts.study.scan_population(extra_quic);
    let report = opts.study.run_discovery(&scan_pop);

    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serializable")
        );
    }
    println!(
        "== E0: discovery funnel (scan of {} candidate hosts) ==",
        report.probed_hosts
    );
    compare(
        "QUIC hosts answering the version-0 probe",
        "(not reported)",
        report.quic_hosts.to_string(),
    );
    compare(
        "DoQ resolvers (ALPN verified)",
        "1216",
        report.doq_resolvers.to_string(),
    );
    compare(
        "  ... also supporting DoUDP",
        "548",
        report.doudp_support.to_string(),
    );
    compare(
        "  ... also supporting DoTCP",
        "706",
        report.dotcp_support.to_string(),
    );
    compare(
        "  ... also supporting DoT",
        "1149",
        report.dot_support.to_string(),
    );
    compare(
        "  ... also supporting DoH",
        "732",
        report.doh_support.to_string(),
    );
    compare(
        "Verified DoX resolvers (full intersection)",
        "313",
        report.verified_dox.to_string(),
    );

    // Fig. 1: geography of the verified resolvers.
    let pop = opts.study.population();
    let mut by_continent: BTreeMap<&str, usize> = BTreeMap::new();
    for r in &pop {
        *by_continent.entry(r.continent.code()).or_default() += 1;
    }
    println!("\nFig. 1 — verified DoX resolvers per continent:");
    for c in Continent::ALL {
        let paper = match c {
            Continent::Europe => 130,
            Continent::Asia => 128,
            Continent::NorthAmerica => 49,
            _ => 2,
        };
        compare(
            &format!("  {}", c.code()),
            &paper.to_string(),
            by_continent.get(c.code()).copied().unwrap_or(0).to_string(),
        );
    }
    let mut by_asn: BTreeMap<&str, usize> = BTreeMap::new();
    for r in &pop {
        *by_asn.entry(r.asn.as_str()).or_default() += 1;
    }
    println!(
        "\nAutonomous systems: {} distinct (paper: 107)",
        by_asn.len()
    );
    let mut top: Vec<(&&str, &usize)> = by_asn.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1));
    for (asn, n) in top.iter().take(4) {
        println!("  {asn:<16}{n}");
    }
}
