//! # doqlab-core — the public facade
//!
//! One entry point for the whole reproduction of *"DNS Privacy with
//! Speed? Evaluating DNS over QUIC and its Impact on Web Performance"*
//! (IMC 2022): configure a [`Study`], run the campaigns, reduce them to
//! the paper's tables and figures.
//!
//! ```
//! use doqlab_core::Study;
//!
//! let study = Study::quick(42);
//! let samples = study.run_single_query();
//! let table1 = doqlab_core::measure::report::table1(&samples);
//! println!("{}", doqlab_core::measure::report::render_table1(&table1));
//! ```
//!
//! The subsystem crates are re-exported for direct access:
//! [`simnet`] (the discrete-event simulator), [`dnswire`] (the DNS
//! codec), [`netstack`] (TCP/TLS/QUIC/HTTP2), [`dox`] (the five DNS
//! transports), [`resolver`], [`webperf`], [`measure`] and
//! [`telemetry`] (qlog event tracing and lock-free metrics).

pub use doqlab_dnswire as dnswire;
pub use doqlab_dox as dox;
pub use doqlab_measure as measure;
pub use doqlab_netstack as netstack;
pub use doqlab_resolver as resolver;
pub use doqlab_simnet as simnet;
pub use doqlab_telemetry as telemetry;
pub use doqlab_webperf as webperf;

use doqlab_dox::DnsTransport;
use doqlab_measure::discovery::DiscoveryReport;
use doqlab_measure::impairments::{ImpairmentSample, ImpairmentsCampaign};
use doqlab_measure::mobility::{MobilityCampaign, MobilitySample};
use doqlab_measure::populations::{PopulationSample, PopulationsCampaign};
use doqlab_measure::single_query::{SingleQueryCampaign, SingleQuerySample};
use doqlab_measure::webperf::{WebperfCampaign, WebperfSample};
use doqlab_measure::whatif::{WhatifCampaign, WhatifSample};
use doqlab_measure::Scale;
use doqlab_resolver::{
    synthesize_dox_population, synthesize_scan_population, ResolverProfile, ScannedHost,
};
use doqlab_webperf::{tranco_top10, PageProfile};

/// Everything the paper's methodology needs, in one place.
#[derive(Debug, Clone)]
pub struct Study {
    pub seed: u64,
    pub scale: Scale,
    /// §2: present Session Resumption material on measured queries.
    pub use_resumption: bool,
    /// §3.2: reproduce the dnsproxy DoT reconnect bug.
    pub dot_bug: bool,
    /// §4 future work: resolvers support 0-RTT.
    pub zero_rtt_resolvers: bool,
}

impl Study {
    /// Small-scale study (tests, examples): a representative subset.
    pub fn quick(seed: u64) -> Study {
        Study {
            seed,
            scale: Scale::quick(),
            use_resumption: true,
            dot_bug: true,
            zero_rtt_resolvers: false,
        }
    }

    /// Mid-size: the full resolver population, fewer repetitions.
    pub fn medium(seed: u64) -> Study {
        Study {
            scale: Scale::medium(),
            ..Study::quick(seed)
        }
    }

    /// The paper's full sample counts (~157k single-query samples and
    /// ~56k Web samples per protocol).
    pub fn paper(seed: u64) -> Study {
        Study {
            scale: Scale::paper(),
            ..Study::quick(seed)
        }
    }

    /// The 313 verified DoX resolvers (§2 distributions).
    pub fn population(&self) -> Vec<ResolverProfile> {
        synthesize_dox_population(self.seed)
    }

    /// The wider scan population (1,216 DoQ resolvers + QUIC hosts).
    pub fn scan_population(&self, extra_quic: usize) -> Vec<ScannedHost> {
        synthesize_scan_population(self.seed, extra_quic)
    }

    /// The Tranco top-10 page profiles.
    pub fn pages(&self) -> Vec<PageProfile> {
        tranco_top10()
    }

    /// §2 discovery funnel.
    pub fn run_discovery(&self, population: &[ScannedHost]) -> DiscoveryReport {
        doqlab_measure::run_discovery(population)
    }

    fn single_query_campaign(&self) -> SingleQueryCampaign {
        let mut c = SingleQueryCampaign::new(self.scale.clone());
        c.seed = self.seed;
        c.use_resumption = self.use_resumption;
        c.enable_0rtt_resolvers = self.zero_rtt_resolvers;
        c
    }

    /// §3.1 single-query campaign over the study population.
    pub fn run_single_query(&self) -> Vec<SingleQuerySample> {
        let population = self.population();
        doqlab_measure::run_single_query_campaign(&self.single_query_campaign(), &population)
    }

    /// qlog-trace one single-query unit per transport (`doqlab trace
    /// single-query`).
    pub fn trace_single_query(&self) -> doqlab_measure::TraceRun {
        let population = self.population();
        doqlab_measure::trace_single_query(&self.single_query_campaign(), &population)
    }

    /// The fault-injection sweep: single-query units under impairment
    /// regimes (`doqlab measure impairments`). Shares the study seed
    /// with the single-query campaign, so the baseline regime
    /// reproduces that campaign's samples bit for bit.
    pub fn run_impairments(&self) -> Vec<ImpairmentSample> {
        let population = self.population();
        let mut c = ImpairmentsCampaign::new(self.scale.clone());
        c.seed = self.seed;
        c.use_resumption = self.use_resumption;
        c.enable_0rtt_resolvers = self.zero_rtt_resolvers;
        doqlab_measure::run_impairments_campaign(&c, &population)
    }

    /// The mobility sweep (`doqlab measure mobility`): single-query
    /// units across mid-query address changes, with reconnect and
    /// cross-transport failover recovery regimes. Shares the study seed
    /// with the single-query campaign, so the baseline regime
    /// reproduces that campaign's samples bit for bit.
    pub fn run_mobility(&self) -> Vec<MobilitySample> {
        let population = self.population();
        let mut c = MobilityCampaign::new(self.scale.clone());
        c.seed = self.seed;
        c.use_resumption = self.use_resumption;
        c.enable_0rtt_resolvers = self.zero_rtt_resolvers;
        doqlab_measure::run_mobility_campaign(&c, &population)
    }

    /// The population-scale campaign (`doqlab measure populations`):
    /// Zipf-workload client cohorts behind shared stub caches over
    /// pooled connections, one simulated day per cohort. Shares the
    /// study seed with the single-query campaign so the degenerate
    /// variant reproduces its samples bit for bit.
    pub fn run_populations(&self) -> Vec<PopulationSample> {
        let population = self.population();
        let mut c = PopulationsCampaign::new(self.scale.clone());
        c.seed = self.seed;
        doqlab_measure::run_populations_campaign(&c, &population)
    }

    /// The counterfactual sweep (`doqlab measure whatif`): single-query
    /// units re-run with one dormant capability switched on per regime
    /// (resumption, 0-RTT, TFO, edns-tcp-keepalive, DoH3). Shares the
    /// study seed with the single-query campaign, and regime units
    /// reuse the baseline's unit seeds, so per-unit deltas are genuine
    /// counterfactuals.
    pub fn run_whatif(&self) -> Vec<WhatifSample> {
        let population = self.population();
        let mut c = WhatifCampaign::new(self.scale.clone());
        c.seed = self.seed;
        doqlab_measure::run_whatif_campaign(&c, &population)
    }

    /// The Web half of the what-if campaign: the Web campaign run twice
    /// — once as-is, once with `use_doh3` — with identical unit seeds,
    /// so the returned `(doh2, doh3)` worlds pair unit by unit and the
    /// DoH column's FCP/PLT deltas are attributable to HTTP/3 alone.
    pub fn run_whatif_webperf(&self) -> (Vec<WebperfSample>, Vec<WebperfSample>) {
        let population = self.population();
        let pages = self.pages();
        let mut c = WebperfCampaign::new(self.scale.clone());
        c.seed = self.seed;
        c.dot_bug = self.dot_bug;
        c.enable_0rtt_resolvers = self.zero_rtt_resolvers;
        let base = doqlab_measure::run_webperf_campaign(&c, &population, &pages);
        c.use_doh3 = true;
        let doh3 = doqlab_measure::run_webperf_campaign(&c, &population, &pages);
        (base, doh3)
    }

    /// §3.2 Web-performance campaign.
    pub fn run_webperf(&self) -> Vec<WebperfSample> {
        let population = self.population();
        let pages = self.pages();
        let mut c = WebperfCampaign::new(self.scale.clone());
        c.seed = self.seed;
        c.dot_bug = self.dot_bug;
        c.enable_0rtt_resolvers = self.zero_rtt_resolvers;
        doqlab_measure::run_webperf_campaign(&c, &population, &pages)
    }
}

/// Common imports for downstream users.
pub mod prelude {
    pub use crate::Study;
    pub use doqlab_dox::{ClientConfig, DnsTransport, SessionState};
    pub use doqlab_measure::report;
    pub use doqlab_measure::{median, percentile, vantage_points, Cdf, Scale};
    pub use doqlab_resolver::{synthesize_dox_population, ResolverProfile};
    pub use doqlab_simnet::{Coord, Duration, SimTime};
    pub use doqlab_webperf::{run_page_load, tranco_top10, PageLoadConfig};
}

/// The five transports, re-exported at the top level for convenience.
pub const TRANSPORTS: [DnsTransport; 5] = DnsTransport::ALL;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_runs_end_to_end() {
        let study = Study {
            scale: Scale {
                resolvers: Some(2),
                repetitions: 1,
                rounds: 1,
                loads_per_round: 1,
                pages: Some(1),
                clients: Some(512),
                threads: 4,
            },
            ..Study::quick(3)
        };
        let sq = study.run_single_query();
        assert_eq!(sq.len(), 6 * 2 * 5);
        let web = study.run_webperf();
        assert_eq!(web.len(), (6 * 2) * 5);
        let t1 = measure::report::table1(&sq);
        assert_eq!(t1.sample_counts.len(), 5);
    }

    #[test]
    fn population_is_stable_for_a_seed() {
        let study = Study::quick(1);
        let a = study.population();
        let b = study.population();
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.ip == y.ip));
    }
}
