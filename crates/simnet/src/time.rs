//! Simulated time.
//!
//! The simulator never consults a wall clock. All state machines receive
//! explicit [`SimTime`] values and return deadlines, in the style of
//! smoltcp's `poll(timestamp)` API. Time is a monotonically increasing
//! count of nanoseconds since the start of the simulation.

pub use std::time::Duration;

/// A point in simulated time, measured in nanoseconds since simulation
/// start. `SimTime::ZERO` is the instant the simulation begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Construct from microseconds since simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Construct from milliseconds since simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Construct from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`. Saturates to zero if `earlier` is in
    /// the future, which keeps callers robust against reordered callbacks.
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Checked variant of [`SimTime::duration_since`]: `None` if `earlier`
    /// is strictly in the future.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration::from_nanos)
    }
}

impl std::ops::Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl std::ops::AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl std::ops::Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.as_nanos() as u64))
    }
}

impl std::ops::Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.duration_since(rhs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_secs(1).as_millis_f64(), 1000.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), Duration::from_millis(5));
        assert_eq!(t - Duration::from_millis(3), SimTime::from_millis(12));
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.duration_since(late), Duration::ZERO);
        assert_eq!(early.checked_duration_since(late), None);
        assert_eq!(
            late.checked_duration_since(early),
            Some(Duration::from_millis(1))
        );
    }

    #[test]
    fn sub_below_zero_saturates() {
        assert_eq!(
            SimTime::from_millis(1) - Duration::from_millis(5),
            SimTime::ZERO
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::ZERO, SimTime::from_nanos(0));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_micros(1500).to_string(), "1.500ms");
    }
}
