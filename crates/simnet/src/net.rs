//! Addressing and the packet unit exchanged between simulated hosts.
//!
//! A [`Packet`] carries one transport PDU:
//!
//! * for [`Transport::Udp`], `payload` is the UDP payload (the datagram
//!   contents); the 8-byte UDP header is accounted for by
//!   [`Packet::ip_payload_len`];
//! * for [`Transport::Tcp`], `payload` is the full encoded TCP segment
//!   (header + options + data) as produced by
//!   `doqlab-netstack`'s TCP implementation, so its length *is* the IP
//!   payload length.
//!
//! Table 1 of the paper reports "median IP payload bytes", i.e. the IP
//! packet length minus the IP header; `ip_payload_len` reproduces that
//! accounting.

use serde::{Deserialize, Serialize};

/// IPv4 address (simulated; no relation to host networking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }

    pub fn octets(&self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The conventional loopback address, used for the browser-side DNS
    /// proxy which Chromium talks to locally.
    pub const LOCALHOST: Ipv4Addr = Ipv4Addr::new(127, 0, 0, 1);
}

impl std::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Transport-layer address: IP + port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SocketAddr {
    pub ip: Ipv4Addr,
    pub port: u16,
}

impl SocketAddr {
    pub const fn new(ip: Ipv4Addr, port: u16) -> Self {
        SocketAddr { ip, port }
    }
}

impl std::fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// The IP protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    Udp,
    Tcp,
}

/// Size of the UDP header in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// Size of the IPv4 header (no options) in bytes. Not part of the
/// "IP payload" accounting, but exposed for full-wire-size statistics.
pub const IPV4_HEADER_LEN: usize = 20;

/// One packet in flight between two simulated hosts.
#[derive(Debug, Clone)]
pub struct Packet {
    pub src: SocketAddr,
    pub dst: SocketAddr,
    pub transport: Transport,
    pub payload: Vec<u8>,
}

impl Packet {
    pub fn udp(src: SocketAddr, dst: SocketAddr, payload: Vec<u8>) -> Self {
        Packet {
            src,
            dst,
            transport: Transport::Udp,
            payload,
        }
    }

    pub fn tcp(src: SocketAddr, dst: SocketAddr, segment: Vec<u8>) -> Self {
        Packet {
            src,
            dst,
            transport: Transport::Tcp,
            payload: segment,
        }
    }

    /// IP payload length in bytes: transport header + transport payload.
    /// This is the quantity reported in the paper's Table 1.
    pub fn ip_payload_len(&self) -> usize {
        match self.transport {
            Transport::Udp => UDP_HEADER_LEN + self.payload.len(),
            // TCP segments are encoded with their header included.
            Transport::Tcp => self.payload.len(),
        }
    }

    /// Full on-wire size including the IPv4 header.
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.ip_payload_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_display_roundtrip() {
        let ip = Ipv4Addr::new(192, 0, 2, 7);
        assert_eq!(ip.to_string(), "192.0.2.7");
        assert_eq!(ip.octets(), [192, 0, 2, 7]);
    }

    #[test]
    fn socketaddr_display() {
        let sa = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 1), 853);
        assert_eq!(sa.to_string(), "10.0.0.1:853");
    }

    #[test]
    fn udp_accounting_includes_header() {
        let a = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 1), 1000);
        let b = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 2), 53);
        let p = Packet::udp(a, b, vec![0u8; 51]);
        assert_eq!(p.ip_payload_len(), 59);
        assert_eq!(p.wire_len(), 79);
    }

    #[test]
    fn tcp_accounting_is_segment_len() {
        let a = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 1), 1000);
        let b = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 2), 53);
        let p = Packet::tcp(a, b, vec![0u8; 40]);
        assert_eq!(p.ip_payload_len(), 40);
        assert_eq!(p.wire_len(), 60);
    }

    #[test]
    fn addr_ordering_is_total() {
        let a = Ipv4Addr::new(1, 2, 3, 4);
        let b = Ipv4Addr::new(1, 2, 3, 5);
        assert!(a < b);
    }
}
