//! Addressing and the packet unit exchanged between simulated hosts.
//!
//! A [`Packet`] carries one transport PDU:
//!
//! * for [`Transport::Udp`], `payload` is the UDP payload (the datagram
//!   contents); the 8-byte UDP header is accounted for by
//!   [`Packet::ip_payload_len`];
//! * for [`Transport::Tcp`], `payload` is the full encoded TCP segment
//!   (header + options + data) as produced by
//!   `doqlab-netstack`'s TCP implementation, so its length *is* the IP
//!   payload length.
//!
//! Table 1 of the paper reports "median IP payload bytes", i.e. the IP
//! packet length minus the IP header; `ip_payload_len` reproduces that
//! accounting.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// IPv4 address (simulated; no relation to host networking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }

    pub fn octets(&self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The conventional loopback address, used for the browser-side DNS
    /// proxy which Chromium talks to locally.
    pub const LOCALHOST: Ipv4Addr = Ipv4Addr::new(127, 0, 0, 1);
}

impl std::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Transport-layer address: IP + port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SocketAddr {
    pub ip: Ipv4Addr,
    pub port: u16,
}

impl SocketAddr {
    pub const fn new(ip: Ipv4Addr, port: u16) -> Self {
        SocketAddr { ip, port }
    }
}

impl std::fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// The IP protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    Udp,
    Tcp,
}

/// Size of the UDP header in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// Size of the IPv4 header (no options) in bytes. Not part of the
/// "IP payload" accounting, but exposed for full-wire-size statistics.
pub const IPV4_HEADER_LEN: usize = 20;

/// Most pooled buffers a thread retains; excess drops free normally.
const POOL_MAX_BUFS: usize = 4096;
/// Buffers above this capacity are freed rather than pooled, so one
/// jumbo payload cannot pin memory for the rest of a campaign.
const POOL_MAX_CAP: usize = 1 << 18;

thread_local! {
    /// Per-thread freelist backing [`PayloadBuf`]. Campaign workers
    /// each own a thread, so no locking and no cross-thread traffic.
    static BUF_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// A pooled, recycled packet payload.
///
/// Behaves like a `Vec<u8>` (it derefs to one) but returns its backing
/// storage to a per-thread freelist on drop, so steady-state packet
/// routing — including duplication under impairment and packets
/// discarded by loss — performs no heap allocation: every delivered,
/// dropped or duplicated payload's buffer is reused by a later send.
///
/// Construct with [`PayloadBuf::from_slice`] (copies into a pooled
/// buffer) or adopt an existing `Vec<u8>` via `From` — adopted vectors
/// join the pool when dropped.
#[derive(Default)]
pub struct PayloadBuf {
    vec: Vec<u8>,
}

impl PayloadBuf {
    /// An empty buffer drawn from the pool.
    pub fn new() -> Self {
        PayloadBuf {
            vec: Self::acquire(),
        }
    }

    /// Copy `bytes` into a pooled buffer.
    pub fn from_slice(bytes: &[u8]) -> Self {
        let mut vec = Self::acquire();
        vec.extend_from_slice(bytes);
        PayloadBuf { vec }
    }

    fn acquire() -> Vec<u8> {
        BUF_POOL
            .with(|p| p.borrow_mut().pop())
            .map(|mut v| {
                v.clear();
                v
            })
            .unwrap_or_default()
    }

    /// Detach the backing vector (it will not be recycled).
    pub fn into_vec(mut self) -> Vec<u8> {
        std::mem::take(&mut self.vec)
    }

    /// Buffers currently sitting in this thread's freelist. Test
    /// hook: lets leak tests pin that discarded packets return their
    /// buffers instead of stranding them.
    pub fn pooled() -> usize {
        BUF_POOL.with(|p| p.borrow().len())
    }
}

impl Drop for PayloadBuf {
    fn drop(&mut self) {
        let cap = self.vec.capacity();
        if cap == 0 || cap > POOL_MAX_CAP {
            return;
        }
        let vec = std::mem::take(&mut self.vec);
        BUF_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < POOL_MAX_BUFS {
                pool.push(vec);
            }
        });
    }
}

impl Clone for PayloadBuf {
    fn clone(&self) -> Self {
        Self::from_slice(&self.vec)
    }
}

impl Deref for PayloadBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.vec
    }
}

impl DerefMut for PayloadBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.vec
    }
}

impl AsRef<[u8]> for PayloadBuf {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<Vec<u8>> for PayloadBuf {
    fn from(vec: Vec<u8>) -> Self {
        PayloadBuf { vec }
    }
}

impl From<&[u8]> for PayloadBuf {
    fn from(bytes: &[u8]) -> Self {
        Self::from_slice(bytes)
    }
}

impl std::fmt::Debug for PayloadBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.vec.fmt(f)
    }
}

impl PartialEq for PayloadBuf {
    fn eq(&self, other: &Self) -> bool {
        self.vec == other.vec
    }
}
impl Eq for PayloadBuf {}

impl PartialEq<Vec<u8>> for PayloadBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.vec == other
    }
}

impl PartialEq<[u8]> for PayloadBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.vec == other
    }
}

/// One packet in flight between two simulated hosts.
#[derive(Debug, Clone)]
pub struct Packet {
    pub src: SocketAddr,
    pub dst: SocketAddr,
    pub transport: Transport,
    pub payload: PayloadBuf,
}

impl Packet {
    pub fn udp(src: SocketAddr, dst: SocketAddr, payload: impl Into<PayloadBuf>) -> Self {
        Packet {
            src,
            dst,
            transport: Transport::Udp,
            payload: payload.into(),
        }
    }

    pub fn tcp(src: SocketAddr, dst: SocketAddr, segment: impl Into<PayloadBuf>) -> Self {
        Packet {
            src,
            dst,
            transport: Transport::Tcp,
            payload: segment.into(),
        }
    }

    /// IP payload length in bytes: transport header + transport payload.
    /// This is the quantity reported in the paper's Table 1.
    pub fn ip_payload_len(&self) -> usize {
        match self.transport {
            Transport::Udp => UDP_HEADER_LEN + self.payload.len(),
            // TCP segments are encoded with their header included.
            Transport::Tcp => self.payload.len(),
        }
    }

    /// Full on-wire size including the IPv4 header.
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.ip_payload_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_display_roundtrip() {
        let ip = Ipv4Addr::new(192, 0, 2, 7);
        assert_eq!(ip.to_string(), "192.0.2.7");
        assert_eq!(ip.octets(), [192, 0, 2, 7]);
    }

    #[test]
    fn socketaddr_display() {
        let sa = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 1), 853);
        assert_eq!(sa.to_string(), "10.0.0.1:853");
    }

    #[test]
    fn udp_accounting_includes_header() {
        let a = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 1), 1000);
        let b = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 2), 53);
        let p = Packet::udp(a, b, vec![0u8; 51]);
        assert_eq!(p.ip_payload_len(), 59);
        assert_eq!(p.wire_len(), 79);
    }

    #[test]
    fn tcp_accounting_is_segment_len() {
        let a = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 1), 1000);
        let b = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 2), 53);
        let p = Packet::tcp(a, b, vec![0u8; 40]);
        assert_eq!(p.ip_payload_len(), 40);
        assert_eq!(p.wire_len(), 60);
    }

    #[test]
    fn addr_ordering_is_total() {
        let a = Ipv4Addr::new(1, 2, 3, 4);
        let b = Ipv4Addr::new(1, 2, 3, 5);
        assert!(a < b);
    }
}
