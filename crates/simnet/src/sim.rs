//! The simulation driver.
//!
//! A [`Simulator`] owns a set of [`Host`]s (protocol endpoints: DNS
//! clients, resolvers, web servers, ...), a [`PathModel`], a clock and an
//! event queue. Hosts are written as poll-style state machines: they
//! react to packet arrivals and wakeups, emit packets through a
//! [`Ctx`], and advertise their next timer deadline via
//! [`Host::next_wakeup`]. The driver routes every emitted packet through
//! the path model (sampling loss, jitter and serialization delay) and
//! schedules its arrival at the destination host.
//!
//! Timer handling uses lazy cancellation: wakeup events are cheap to
//! schedule and are simply ignored at fire time if the host's deadline
//! has moved.

use crate::event::EventQueue;
use crate::impair::{Impairment, PacketFate};
use crate::net::{Ipv4Addr, Packet};
use crate::path::{FixedPathModel, PathModel, PathProfile};
use crate::rng::SimRng;
use crate::time::{Duration, SimTime};
use crate::trace::{PacketRecord, PacketTap, PacketTrace};
use doqlab_telemetry::metrics::{self, Counter};
use std::any::Any;
use std::collections::HashMap;

/// Identifier of a host within one simulator.
pub type HostId = usize;

/// What a host sees when the simulator calls into it.
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The simulation RNG (deterministic, shared).
    pub rng: &'a mut SimRng,
    out: &'a mut Vec<Packet>,
}

impl Ctx<'_> {
    /// Queue a packet for transmission. Routing, loss and delay are
    /// applied by the driver after the callback returns.
    pub fn send(&mut self, pkt: Packet) {
        self.out.push(pkt);
    }
}

/// A simulated endpoint.
///
/// Implementations must be `'static` so they can be stored as trait
/// objects; the `as_any` methods enable the measurement harness to
/// recover the concrete type to extract results.
pub trait Host: Any {
    /// A packet addressed to one of this host's IPs has arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet);

    /// A previously advertised deadline has been reached.
    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>);

    /// Earliest time this host needs to be woken. Queried after every
    /// callback.
    fn next_wakeup(&self) -> Option<SimTime> {
        None
    }

    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

enum Event {
    Arrival(HostId, Packet),
    Wakeup(HostId),
}

/// Counters describing everything the network carried.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    pub packets_delivered: u64,
    pub packets_lost: u64,
    pub packets_unroutable: u64,
    pub bytes_delivered: u64,
    /// Packets dropped by the installed [`Impairment`] (a subset of
    /// `packets_lost`).
    pub packets_impaired: u64,
    /// Extra packet copies delivered due to impairment-layer
    /// duplication (included in `packets_delivered`).
    pub packets_duplicated: u64,
}

/// The discrete-event simulator.
pub struct Simulator {
    clock: SimTime,
    queue: EventQueue<Event>,
    rng: SimRng,
    path: Box<dyn PathModel>,
    hosts: Vec<Option<Box<dyn Host>>>,
    /// Earliest queued wakeup per host. Wakeup events are deduplicated
    /// against this: a dispatch only enqueues a new entry when it would
    /// fire *earlier* than the one already queued, and a popped entry
    /// that no longer matches is dropped as stale. Without this, every
    /// packet arrival leaks one wakeup entry that then circulates on
    /// each timer re-arm — on day-long simulations the event count
    /// grows quadratically with traffic.
    armed: Vec<Option<SimTime>>,
    addr_map: HashMap<Ipv4Addr, HostId>,
    link_free: HashMap<Ipv4Addr, SimTime>,
    /// Last scheduled arrival per (src, dst) flow: paths are FIFO —
    /// jitter may stretch a packet's delay but never reorders a flow
    /// (real single-path routes preserve ordering almost always).
    flow_last_arrival: HashMap<(Ipv4Addr, Ipv4Addr), SimTime>,
    /// Per-address access-path overrides, installed by
    /// [`Simulator::rebind_host`] / [`Simulator::set_path_profile`].
    /// Consulted in [`Simulator::route`] without consuming RNG.
    path_overlay: HashMap<Ipv4Addr, PathProfile>,
    trace: Option<PacketTrace>,
    tap: Option<Box<dyn PacketTap>>,
    impair: Option<Box<dyn Impairment>>,
    stats: NetStats,
    /// Reused host-output buffer: dispatching an event borrows it,
    /// routes its packets and hands it back, so steady-state event
    /// processing allocates no fresh `Vec<Packet>`.
    out_buf: Vec<Packet>,
}

impl Simulator {
    pub fn new(seed: u64, path: Box<dyn PathModel>) -> Self {
        Simulator {
            clock: SimTime::ZERO,
            queue: EventQueue::new(),
            rng: SimRng::new(seed),
            path,
            hosts: Vec::new(),
            armed: Vec::new(),
            addr_map: HashMap::new(),
            link_free: HashMap::new(),
            flow_last_arrival: HashMap::new(),
            path_overlay: HashMap::new(),
            trace: None,
            tap: None,
            impair: None,
            stats: NetStats::default(),
            out_buf: Vec::new(),
        }
    }

    /// A placeholder simulator intended to be [`Simulator::reset`]
    /// before first use — the arena a campaign worker reuses across all
    /// the units it executes.
    pub fn arena() -> Self {
        Simulator::new(0, Box::new(FixedPathModel::new(Duration::ZERO)))
    }

    /// Rewind this simulator to the state `Simulator::new(seed, path)`
    /// would produce, but keep the allocations of the event queue, host
    /// table, address maps and trace buffer. Reusing one simulator as an
    /// arena across thousands of campaign units avoids reallocating all
    /// of those per unit.
    ///
    /// Hosts and any installed tap are dropped; whether tracing is
    /// enabled is preserved (with the records cleared).
    pub fn reset(&mut self, seed: u64, path: Box<dyn PathModel>) {
        self.clock = SimTime::ZERO;
        self.queue.clear();
        self.rng = SimRng::new(seed);
        self.path = path;
        self.hosts.clear();
        self.armed.clear();
        self.addr_map.clear();
        self.link_free.clear();
        self.flow_last_arrival.clear();
        self.path_overlay.clear();
        if let Some(trace) = &mut self.trace {
            trace.clear();
        }
        self.tap = None;
        self.impair = None;
        self.stats = NetStats::default();
        self.out_buf.clear();
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    pub fn stats(&self) -> NetStats {
        self.stats
    }

    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Pre-reserve `cap` entries in every event-wheel slot, paying the
    /// one-time cold-slot growth up front instead of scattering it over
    /// the first pass through the wheel (see
    /// [`EventQueue::warm`](crate::event::EventQueue::warm)). Optional;
    /// the allocation-budget tests use it to make steady state start at
    /// event zero.
    pub fn warm_queue(&mut self, cap: usize) {
        self.queue.warm(cap);
    }

    /// Start recording every packet into a trace (for size accounting).
    pub fn enable_trace(&mut self) {
        self.trace = Some(PacketTrace::new());
    }

    pub fn trace(&self) -> Option<&PacketTrace> {
        self.trace.as_ref()
    }

    /// Install a streaming packet observer (replacing any previous one).
    /// The tap sees every packet handed to the network from now on,
    /// including lost and unroutable ones.
    pub fn set_tap(&mut self, tap: Box<dyn PacketTap>) {
        self.tap = Some(tap);
    }

    /// Remove and return the installed tap, typically to read out the
    /// statistic it accumulated.
    pub fn take_tap(&mut self) -> Option<Box<dyn PacketTap>> {
        self.tap.take()
    }

    /// Mutable access to the installed tap by concrete type.
    pub fn tap_mut<T: PacketTap>(&mut self) -> Option<&mut T> {
        self.tap.as_mut()?.as_any_mut().downcast_mut::<T>()
    }

    /// Install a fault-injection policy (replacing any previous one).
    /// Every subsequently routed packet is first judged by the
    /// impairment, then by the path model's own loss/delay sampling.
    /// Cleared by [`Simulator::reset`]. With no impairment installed the
    /// router consumes no extra RNG, so runs are byte-identical to a
    /// simulator predating this layer.
    pub fn set_impairment(&mut self, impair: Box<dyn Impairment>) {
        self.impair = Some(impair);
    }

    /// Remove the installed impairment, restoring the unimpaired path.
    pub fn clear_impairment(&mut self) {
        self.impair = None;
    }

    /// Register a host reachable at the given IPs.
    pub fn add_host(&mut self, host: Box<dyn Host>, ips: &[Ipv4Addr]) -> HostId {
        let id = self.hosts.len();
        self.hosts.push(Some(host));
        self.armed.push(None);
        for ip in ips {
            let prev = self.addr_map.insert(*ip, id);
            assert!(prev.is_none(), "address {ip} already bound");
        }
        // Pick up any timer the host already holds.
        if let Some(w) = self.hosts[id].as_ref().unwrap().next_wakeup() {
            self.arm_wakeup(id, w);
        }
        id
    }

    /// Move one of a host's addresses mid-simulation — a wifi→cellular
    /// style rebind. `old` stops resolving immediately (packets already
    /// in flight toward it, and any sent later, count as unroutable —
    /// exactly like a released DHCP lease), `new` starts delivering to
    /// the same host, and `profile` describes the new access path.
    /// Link-serialization and FIFO state tied to the old address is
    /// discarded: the new path starts with a clean link.
    ///
    /// The host's own notion of its local address is *not* updated;
    /// callers that want the host to transmit from the new address must
    /// tell it separately (transports that cannot are precisely the
    /// ones a rebind is meant to break).
    ///
    /// Panics if `old` is not bound to `id` or `new` is already bound.
    pub fn rebind_host(&mut self, id: HostId, old: Ipv4Addr, new: Ipv4Addr, profile: PathProfile) {
        assert_eq!(
            self.addr_map.get(&old),
            Some(&id),
            "address {old} not bound to host {id}"
        );
        self.addr_map.remove(&old);
        let prev = self.addr_map.insert(new, id);
        assert!(prev.is_none(), "address {new} already bound");
        self.link_free.remove(&old);
        self.flow_last_arrival
            .retain(|(src, dst), _| *src != old && *dst != old);
        self.path_overlay.remove(&old);
        if !profile.is_neutral() {
            self.path_overlay.insert(new, profile);
        }
    }

    /// Attach a [`PathProfile`] overlay to an address directly (without
    /// a rebind), e.g. to degrade one host's access link. A neutral
    /// profile removes the overlay.
    pub fn set_path_profile(&mut self, ip: Ipv4Addr, profile: PathProfile) {
        if profile.is_neutral() {
            self.path_overlay.remove(&ip);
        } else {
            self.path_overlay.insert(ip, profile);
        }
    }

    /// Enqueue a wakeup for `id` at `w` unless an earlier (or equal)
    /// one is already queued; [`Simulator::dispatch`] drops superseded
    /// entries when they surface.
    fn arm_wakeup(&mut self, id: HostId, w: SimTime) {
        let w = w.max(self.clock);
        if self.armed[id].is_none_or(|a| w < a) {
            self.armed[id] = Some(w);
            self.queue.push(w, Event::Wakeup(id));
        }
    }

    /// Immutable access to a host by concrete type.
    pub fn host<T: Host>(&self, id: HostId) -> &T {
        self.hosts[id]
            .as_ref()
            .expect("host checked out")
            .as_any()
            .downcast_ref::<T>()
            .expect("host type mismatch")
    }

    /// Mutable access to a host by concrete type (no packet I/O; use
    /// [`Simulator::with_host`] when the host needs to transmit).
    pub fn host_mut<T: Host>(&mut self, id: HostId) -> &mut T {
        self.hosts[id]
            .as_mut()
            .expect("host checked out")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("host type mismatch")
    }

    /// Call into a host with a full [`Ctx`], e.g. to start a client.
    /// Emitted packets are routed and the host's timer is rescheduled,
    /// exactly as for event-driven callbacks.
    pub fn with_host<T: Host, R>(
        &mut self,
        id: HostId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        let mut host = self.hosts[id].take().expect("reentrant host dispatch");
        let mut out = std::mem::take(&mut self.out_buf);
        let r = {
            let mut ctx = Ctx {
                now: self.clock,
                rng: &mut self.rng,
                out: &mut out,
            };
            f(
                host.as_any_mut()
                    .downcast_mut::<T>()
                    .expect("host type mismatch"),
                &mut ctx,
            )
        };
        let next = host.next_wakeup();
        self.hosts[id] = Some(host);
        self.after_dispatch(id, next, out);
        r
    }

    fn after_dispatch(&mut self, id: HostId, next: Option<SimTime>, mut out: Vec<Packet>) {
        let now = self.clock;
        for pkt in out.drain(..) {
            self.route(now, pkt);
        }
        self.out_buf = out;
        if let Some(w) = next {
            self.arm_wakeup(id, w);
        }
    }

    /// Hand one packet record to the trace and/or tap, if installed.
    fn observe(&mut self, now: SimTime, pkt: &Packet, dropped: bool) {
        if self.trace.is_none() && self.tap.is_none() {
            return;
        }
        let record = PacketRecord::new(now, pkt, dropped);
        if let Some(trace) = &mut self.trace {
            trace.record(record);
        }
        if let Some(tap) = &mut self.tap {
            tap.on_packet(&record);
        }
    }

    /// Route one packet: apply loss, serialization and propagation, and
    /// schedule its arrival.
    fn route(&mut self, now: SimTime, pkt: Packet) {
        let mut chars = self.path.characteristics(pkt.src.ip, pkt.dst.ip);
        // Access-path overlays (mobility): deterministic adjustments
        // only, no RNG, so runs without overlays stay byte-identical.
        if !self.path_overlay.is_empty() {
            if let Some(p) = self.path_overlay.get(&pkt.src.ip) {
                chars.propagation += p.extra_delay;
                if let Some(loss) = p.loss {
                    chars.loss = chars.loss.max(loss);
                }
            }
            if pkt.dst.ip != pkt.src.ip {
                if let Some(p) = self.path_overlay.get(&pkt.dst.ip) {
                    chars.propagation += p.extra_delay;
                    if let Some(loss) = p.loss {
                        chars.loss = chars.loss.max(loss);
                    }
                }
            }
        }
        let Some(&dst_host) = self.addr_map.get(&pkt.dst.ip) else {
            self.stats.packets_unroutable += 1;
            self.observe(now, &pkt, true);
            return;
        };
        // Fault injection first: an installed impairment may blackhole,
        // delay, reorder or duplicate the packet before the path model's
        // own i.i.d. loss. `impair` and `rng` are disjoint fields, so
        // both can be borrowed mutably at once.
        let fate = match &mut self.impair {
            Some(im) => im.apply(now, &pkt, &mut self.rng),
            None => PacketFate::deliver(),
        };
        if fate.drop {
            self.stats.packets_lost += 1;
            self.stats.packets_impaired += 1;
            self.observe(now, &pkt, true);
            return;
        }
        let lost = chars.loss > 0.0 && self.rng.chance(chars.loss);
        self.observe(now, &pkt, lost);
        if lost {
            self.stats.packets_lost += 1;
            return;
        }
        // Serialization: the source's access link transmits packets one
        // after another at its egress bandwidth.
        let depart = match chars.egress_bps {
            Some(bps) if bps > 0 => {
                let free = self.link_free.entry(pkt.src.ip).or_insert(SimTime::ZERO);
                let start = (*free).max(now);
                let ser = Duration::from_secs_f64(pkt.wire_len() as f64 * 8.0 / bps as f64);
                *free = start + ser;
                *free
            }
            _ => now,
        };
        let mut arrival = depart + chars.sample_delay(&mut self.rng) + fate.extra_delay;
        // FIFO per flow. A reordered packet bypasses the clamp (so its
        // extra delay can genuinely push it behind later-sent packets)
        // and does not advance the flow's arrival clock, which would
        // otherwise drag every subsequent packet behind it.
        let key = (pkt.src.ip, pkt.dst.ip);
        if !fate.reorder {
            if let Some(&last) = self.flow_last_arrival.get(&key) {
                arrival = arrival.max(last);
            }
            self.flow_last_arrival.insert(key, arrival);
        }
        self.stats.packets_delivered += 1;
        self.stats.bytes_delivered += pkt.ip_payload_len() as u64;
        if fate.duplicate {
            // A duplicated packet gets its own sampled path delay and,
            // like a reordered one, skips the FIFO clamp — duplicates
            // commonly arrive out of order in real networks.
            let dup_arrival = depart + chars.sample_delay(&mut self.rng);
            self.stats.packets_delivered += 1;
            self.stats.packets_duplicated += 1;
            self.stats.bytes_delivered += pkt.ip_payload_len() as u64;
            self.observe(now, &pkt, false);
            self.queue
                .push(dup_arrival, Event::Arrival(dst_host, pkt.clone()));
        }
        self.queue.push(arrival, Event::Arrival(dst_host, pkt));
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Arrival(id, pkt) => {
                let Some(mut host) = self.hosts[id].take() else {
                    return;
                };
                let mut out = std::mem::take(&mut self.out_buf);
                {
                    let mut ctx = Ctx {
                        now: self.clock,
                        rng: &mut self.rng,
                        out: &mut out,
                    };
                    host.on_packet(&mut ctx, pkt);
                }
                let next = host.next_wakeup();
                self.hosts[id] = Some(host);
                self.after_dispatch(id, next, out);
            }
            Event::Wakeup(id) => {
                // A wakeup that no longer matches the armed time was
                // superseded by an earlier re-arm; drop it unprocessed.
                if self.armed[id] != Some(self.clock) {
                    return;
                }
                self.armed[id] = None;
                let Some(host_ref) = self.hosts[id].as_ref() else {
                    return;
                };
                match host_ref.next_wakeup() {
                    None => {}
                    Some(w) if w <= self.clock => {
                        let mut host = self.hosts[id].take().expect("checked above");
                        let mut out = std::mem::take(&mut self.out_buf);
                        {
                            let mut ctx = Ctx {
                                now: self.clock,
                                rng: &mut self.rng,
                                out: &mut out,
                            };
                            host.on_wakeup(&mut ctx);
                        }
                        let next = host.next_wakeup();
                        self.hosts[id] = Some(host);
                        self.after_dispatch(id, next, out);
                    }
                    Some(w) => {
                        // Deadline moved into the future: re-arm.
                        self.arm_wakeup(id, w);
                    }
                }
            }
        }
    }

    /// Process events until the queue is empty or `deadline` is reached.
    /// Returns the number of events processed. The clock ends at
    /// `min(deadline, time of last event)`; it is advanced to `deadline`
    /// if the queue drains first.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked");
            debug_assert!(t >= self.clock, "time went backwards");
            self.clock = t;
            self.dispatch(ev);
            n += 1;
        }
        if deadline > self.clock {
            self.clock = deadline;
        }
        if n > 0 {
            metrics::count(Counter::SimEvents, n);
        }
        n
    }

    /// Process at most one event at or before `deadline`. Returns true
    /// if an event was dispatched; when no such event exists the clock
    /// advances to `deadline` (like [`Simulator::run_until`] draining)
    /// and false is returned. Stepping lets a caller observe host state
    /// between events — e.g. to notice the instant a handshake
    /// completes — while dispatching events in exactly the order
    /// `run_until` would.
    pub fn step_until(&mut self, deadline: SimTime) -> bool {
        match self.queue.peek_time() {
            Some(t) if t <= deadline => {
                let (t, ev) = self.queue.pop().expect("peeked");
                debug_assert!(t >= self.clock, "time went backwards");
                self.clock = t;
                self.dispatch(ev);
                metrics::count(Counter::SimEvents, 1);
                true
            }
            _ => {
                if deadline > self.clock {
                    self.clock = deadline;
                }
                false
            }
        }
    }

    /// Process events until the queue drains or `max_events` have been
    /// handled. Returns the number of events processed; hitting the
    /// event cap indicates a livelock in a protocol state machine.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events {
            let Some((t, ev)) = self.queue.pop() else {
                break;
            };
            debug_assert!(t >= self.clock, "time went backwards");
            self.clock = t;
            self.dispatch(ev);
            n += 1;
        }
        if n > 0 {
            metrics::count(Counter::SimEvents, n);
        }
        n
    }

    /// True if no more events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{SocketAddr, Transport};
    use crate::path::FixedPathModel;

    fn addr(n: u8, port: u16) -> SocketAddr {
        SocketAddr::new(Ipv4Addr::new(10, 0, 0, n), port)
    }

    /// Echoes every received packet back to its sender.
    struct Echo {
        received: usize,
    }

    impl Host for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            self.received += 1;
            ctx.send(Packet::udp(pkt.dst, pkt.src, pkt.payload));
        }
        fn on_wakeup(&mut self, _ctx: &mut Ctx<'_>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends one packet at start, records the echo arrival time.
    struct Pinger {
        target: SocketAddr,
        local: SocketAddr,
        echo_at: Option<SimTime>,
    }

    impl Pinger {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(Packet::udp(
                self.local,
                self.target,
                crate::net::PayloadBuf::from_slice(&[1, 2, 3]),
            ));
        }
    }

    impl Host for Pinger {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: Packet) {
            self.echo_at = Some(ctx.now);
        }
        fn on_wakeup(&mut self, _ctx: &mut Ctx<'_>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_host_sim(one_way: Duration) -> (Simulator, HostId, HostId) {
        let mut sim = Simulator::new(1, Box::new(FixedPathModel::new(one_way)));
        let a = addr(1, 40000);
        let b = addr(2, 7);
        let pinger = sim.add_host(
            Box::new(Pinger {
                target: b,
                local: a,
                echo_at: None,
            }),
            &[a.ip],
        );
        let echo = sim.add_host(Box::new(Echo { received: 0 }), &[b.ip]);
        (sim, pinger, echo)
    }

    #[test]
    fn ping_pong_rtt() {
        let (mut sim, pinger, echo) = two_host_sim(Duration::from_millis(10));
        sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
        sim.run(1000);
        assert_eq!(sim.host::<Echo>(echo).received, 1);
        let t = sim.host::<Pinger>(pinger).echo_at.expect("echo received");
        assert_eq!(t, SimTime::from_millis(20));
        assert_eq!(sim.stats().packets_delivered, 2);
    }

    #[test]
    fn unroutable_packets_are_counted() {
        let mut sim = Simulator::new(1, Box::new(FixedPathModel::new(Duration::from_millis(1))));
        let a = addr(1, 40000);
        let pinger = sim.add_host(
            Box::new(Pinger {
                target: addr(99, 7),
                local: a,
                echo_at: None,
            }),
            &[a.ip],
        );
        sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
        sim.run(1000);
        assert_eq!(sim.stats().packets_unroutable, 1);
        assert!(sim.host::<Pinger>(pinger).echo_at.is_none());
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut sim = Simulator::new(
            1,
            Box::new(FixedPathModel::with_loss(Duration::from_millis(1), 1.0)),
        );
        let a = addr(1, 40000);
        let b = addr(2, 7);
        let pinger = sim.add_host(
            Box::new(Pinger {
                target: b,
                local: a,
                echo_at: None,
            }),
            &[a.ip],
        );
        sim.add_host(Box::new(Echo { received: 0 }), &[b.ip]);
        sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
        sim.run(1000);
        assert_eq!(sim.stats().packets_lost, 1);
        assert_eq!(sim.stats().packets_delivered, 0);
    }

    /// Host that re-arms a periodic timer.
    struct Ticker {
        period: Duration,
        next: Option<SimTime>,
        fired: Vec<SimTime>,
    }

    impl Host for Ticker {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
            self.fired.push(ctx.now);
            if self.fired.len() < 5 {
                self.next = Some(ctx.now + self.period);
            } else {
                self.next = None;
            }
        }
        fn next_wakeup(&self) -> Option<SimTime> {
            self.next
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn periodic_timers_fire_on_schedule() {
        let mut sim = Simulator::new(1, Box::new(FixedPathModel::new(Duration::from_millis(1))));
        let id = sim.add_host(
            Box::new(Ticker {
                period: Duration::from_millis(100),
                next: Some(SimTime::from_millis(100)),
                fired: vec![],
            }),
            &[Ipv4Addr::new(10, 0, 0, 1)],
        );
        sim.run(1000);
        let fired = &sim.host::<Ticker>(id).fired;
        assert_eq!(
            fired,
            &(1..=5)
                .map(|i| SimTime::from_millis(100 * i))
                .collect::<Vec<_>>()
        );
        assert!(sim.is_idle());
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulator::new(1, Box::new(FixedPathModel::new(Duration::from_millis(1))));
        let id = sim.add_host(
            Box::new(Ticker {
                period: Duration::from_millis(100),
                next: Some(SimTime::from_millis(100)),
                fired: vec![],
            }),
            &[Ipv4Addr::new(10, 0, 0, 1)],
        );
        sim.run_until(SimTime::from_millis(250));
        assert_eq!(sim.host::<Ticker>(id).fired.len(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(250));
        sim.run(1000);
        assert_eq!(sim.host::<Ticker>(id).fired.len(), 5);
    }

    #[test]
    fn trace_records_packets() {
        let (mut sim, pinger, _echo) = two_host_sim(Duration::from_millis(5));
        sim.enable_trace();
        sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
        sim.run(1000);
        let trace = sim.trace().expect("enabled");
        assert_eq!(trace.records().len(), 2);
        assert_eq!(trace.records()[0].ip_payload_len, 8 + 3);
        assert_eq!(trace.records()[0].transport, Transport::Udp);
    }

    #[test]
    fn duplicate_address_binding_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut sim =
                Simulator::new(1, Box::new(FixedPathModel::new(Duration::from_millis(1))));
            let ip = Ipv4Addr::new(10, 0, 0, 1);
            sim.add_host(Box::new(Echo { received: 0 }), &[ip]);
            sim.add_host(Box::new(Echo { received: 0 }), &[ip]);
        });
        assert!(result.is_err());
    }

    /// Counts packets and bytes as a streaming tap.
    #[derive(Default)]
    struct CountingTap {
        packets: usize,
        bytes: usize,
        dropped: usize,
    }

    impl crate::trace::PacketTap for CountingTap {
        fn on_packet(&mut self, record: &PacketRecord) {
            self.packets += 1;
            self.bytes += record.ip_payload_len;
            self.dropped += record.dropped as usize;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    use crate::trace::PacketRecord;

    #[test]
    fn tap_sees_what_the_trace_records() {
        let (mut sim, pinger, _echo) = two_host_sim(Duration::from_millis(5));
        sim.enable_trace();
        sim.set_tap(Box::new(CountingTap::default()));
        sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
        sim.run(1000);
        let trace_bytes: usize = sim
            .trace()
            .unwrap()
            .records()
            .iter()
            .map(|r| r.ip_payload_len)
            .sum();
        let trace_packets = sim.trace().unwrap().records().len();
        let tap = sim.take_tap().expect("installed");
        let tap = tap.as_any().downcast_ref::<CountingTap>().unwrap();
        assert_eq!(tap.packets, trace_packets);
        assert_eq!(tap.bytes, trace_bytes);
        assert_eq!(tap.dropped, 0);
    }

    #[test]
    fn tap_observes_lost_and_unroutable_packets() {
        let mut sim = Simulator::new(
            1,
            Box::new(FixedPathModel::with_loss(Duration::from_millis(1), 1.0)),
        );
        let a = addr(1, 40000);
        let pinger = sim.add_host(
            Box::new(Pinger {
                target: addr(99, 7),
                local: a,
                echo_at: None,
            }),
            &[a.ip],
        );
        sim.set_tap(Box::new(CountingTap::default()));
        sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
        sim.run(1000);
        assert_eq!(sim.tap_mut::<CountingTap>().unwrap().dropped, 1);
    }

    #[test]
    fn reset_arena_reproduces_a_fresh_simulator() {
        let run_fresh = || {
            let (mut sim, pinger, _) = two_host_sim(Duration::from_millis(10));
            sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
            sim.run(1000);
            (sim.host::<Pinger>(pinger).echo_at, sim.stats())
        };
        let mut arena = Simulator::arena();
        let mut run_reused = |junk_rounds: usize| {
            // Dirty the arena first so reuse actually exercises clearing.
            for seed in 0..junk_rounds as u64 {
                arena.reset(
                    seed + 100,
                    Box::new(FixedPathModel::new(Duration::from_millis(3))),
                );
                let a = addr(1, 40000);
                let b = addr(2, 7);
                let pinger = arena.add_host(
                    Box::new(Pinger {
                        target: b,
                        local: a,
                        echo_at: None,
                    }),
                    &[a.ip],
                );
                arena.add_host(Box::new(Echo { received: 0 }), &[b.ip]);
                arena.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
                arena.run(50);
            }
            arena.reset(1, Box::new(FixedPathModel::new(Duration::from_millis(10))));
            let a = addr(1, 40000);
            let b = addr(2, 7);
            let pinger = arena.add_host(
                Box::new(Pinger {
                    target: b,
                    local: a,
                    echo_at: None,
                }),
                &[a.ip],
            );
            arena.add_host(Box::new(Echo { received: 0 }), &[b.ip]);
            arena.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
            arena.run(1000);
            (arena.host::<Pinger>(pinger).echo_at, arena.stats())
        };
        assert_eq!(run_reused(0), run_fresh());
        assert_eq!(run_reused(3), run_fresh());
    }

    #[test]
    fn step_until_matches_run_until() {
        let make = || {
            let mut sim = Simulator::new(
                9,
                Box::new(FixedPathModel::with_loss(Duration::from_millis(3), 0.2)),
            );
            let a = addr(1, 40000);
            let b = addr(2, 7);
            let pinger = sim.add_host(
                Box::new(Pinger {
                    target: b,
                    local: a,
                    echo_at: None,
                }),
                &[a.ip],
            );
            sim.add_host(Box::new(Echo { received: 0 }), &[b.ip]);
            sim.with_host::<Pinger, _>(pinger, |p, ctx| {
                for _ in 0..20 {
                    p.start(ctx);
                }
            });
            sim
        };
        let deadline = SimTime::from_millis(50);
        let mut run = make();
        run.run_until(deadline);
        let mut stepped = make();
        let mut steps = 0;
        while stepped.step_until(deadline) {
            steps += 1;
        }
        assert!(steps > 0);
        assert_eq!(stepped.stats(), run.stats());
        assert_eq!(stepped.now(), run.now());
        assert_eq!(stepped.now(), deadline);
    }

    #[test]
    fn impairment_outage_blackholes_window() {
        use crate::impair::ImpairmentSchedule;
        // Ping at t=0 falls inside the outage and is dropped; the
        // pinger never hears back.
        let (mut sim, pinger, echo) = two_host_sim(Duration::from_millis(10));
        sim.set_impairment(Box::new(
            ImpairmentSchedule::new().with_outage(SimTime::ZERO, SimTime::from_millis(5)),
        ));
        sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
        sim.run(1000);
        assert_eq!(sim.host::<Echo>(echo).received, 0);
        assert_eq!(sim.stats().packets_lost, 1);
        assert_eq!(sim.stats().packets_impaired, 1);
        assert!(sim.host::<Pinger>(pinger).echo_at.is_none());
    }

    #[test]
    fn impairment_outage_spares_the_echo_after_it_ends() {
        use crate::impair::ImpairmentSchedule;
        // One-way delay 10 ms; the outage covers [5, 9) ms, so the ping
        // (sent at 0) passes but nothing is in flight during the window
        // and the echo (sent at 10 ms) passes too.
        let (mut sim, pinger, echo) = two_host_sim(Duration::from_millis(10));
        sim.set_impairment(Box::new(
            ImpairmentSchedule::new().with_outage(SimTime::from_millis(5), SimTime::from_millis(9)),
        ));
        sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
        sim.run(1000);
        assert_eq!(sim.host::<Echo>(echo).received, 1);
        assert_eq!(
            sim.host::<Pinger>(pinger).echo_at,
            Some(SimTime::from_millis(20))
        );
        assert_eq!(sim.stats().packets_impaired, 0);
    }

    #[test]
    fn impairment_duplication_delivers_copies() {
        use crate::impair::ImpairmentSchedule;
        let (mut sim, pinger, echo) = two_host_sim(Duration::from_millis(10));
        sim.set_impairment(Box::new(ImpairmentSchedule::new().with_duplicate(1.0)));
        sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
        sim.run(1000);
        // Ping duplicated -> echo receives 2, replies twice, each reply
        // duplicated -> 3 duplicated copies in total, 6 deliveries.
        assert_eq!(sim.host::<Echo>(echo).received, 2);
        assert_eq!(sim.stats().packets_duplicated, 3);
        assert_eq!(sim.stats().packets_delivered, 6);
    }

    #[test]
    fn impairment_reordering_overtakes_fifo() {
        use crate::impair::{Impairment, PacketFate};
        // A deterministic impairment that delays only the first packet
        // of the run far enough for the second to overtake it.
        struct DelayFirst {
            seen: usize,
        }
        impl Impairment for DelayFirst {
            fn apply(&mut self, _now: SimTime, _pkt: &Packet, _rng: &mut SimRng) -> PacketFate {
                self.seen += 1;
                let mut fate = PacketFate::deliver();
                if self.seen == 1 {
                    fate.reorder = true;
                    fate.extra_delay = Duration::from_millis(50);
                }
                fate
            }
        }
        /// Records the payload tag order of arrivals.
        struct Collector {
            order: Vec<u8>,
        }
        impl Host for Collector {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: Packet) {
                self.order.push(pkt.payload[0]);
            }
            fn on_wakeup(&mut self, _ctx: &mut Ctx<'_>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new(1, Box::new(FixedPathModel::new(Duration::from_millis(10))));
        let a = addr(1, 40000);
        let b = addr(2, 7);
        let sender = sim.add_host(
            Box::new(Pinger {
                target: b,
                local: a,
                echo_at: None,
            }),
            &[a.ip],
        );
        let sink = sim.add_host(Box::new(Collector { order: vec![] }), &[b.ip]);
        sim.set_impairment(Box::new(DelayFirst { seen: 0 }));
        sim.with_host::<Pinger, _>(sender, |_, ctx| {
            ctx.send(Packet::udp(a, b, vec![1]));
            ctx.send(Packet::udp(a, b, vec![2]));
        });
        sim.run(1000);
        assert_eq!(sim.host::<Collector>(sink).order, vec![2, 1]);
    }

    #[test]
    fn inert_impairment_is_byte_identical_to_none() {
        use crate::impair::ImpairmentSchedule;
        let run = |install_inert: bool| {
            let mut sim = Simulator::new(
                9,
                Box::new(FixedPathModel::with_loss(Duration::from_millis(3), 0.2)),
            );
            if install_inert {
                sim.set_impairment(Box::new(ImpairmentSchedule::new()));
            }
            let a = addr(1, 40000);
            let b = addr(2, 7);
            let pinger = sim.add_host(
                Box::new(Pinger {
                    target: b,
                    local: a,
                    echo_at: None,
                }),
                &[a.ip],
            );
            sim.add_host(Box::new(Echo { received: 0 }), &[b.ip]);
            sim.with_host::<Pinger, _>(pinger, |p, ctx| {
                for _ in 0..30 {
                    p.start(ctx);
                }
            });
            sim.run(10_000);
            (sim.stats(), sim.now())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let mut sim = Simulator::new(
                seed,
                Box::new(FixedPathModel::with_loss(Duration::from_millis(3), 0.3)),
            );
            let a = addr(1, 40000);
            let b = addr(2, 7);
            let pinger = sim.add_host(
                Box::new(Pinger {
                    target: b,
                    local: a,
                    echo_at: None,
                }),
                &[a.ip],
            );
            sim.add_host(Box::new(Echo { received: 0 }), &[b.ip]);
            sim.with_host::<Pinger, _>(pinger, |p, ctx| {
                for _ in 0..50 {
                    p.start(ctx);
                }
            });
            sim.run(10_000);
            sim.stats()
        };
        assert_eq!(run(7), run(7));
        // With 30% loss and 100 transmissions, two seeds almost surely
        // differ in at least one counter.
        assert_ne!(run(7), run(8));
    }

    /// Echo that replies to a fixed address (simulating a peer that
    /// has not learned about a rebind).
    struct StickyEcho {
        reply_to: SocketAddr,
        received: usize,
    }

    impl Host for StickyEcho {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            self.received += 1;
            ctx.send(Packet::udp(pkt.dst, self.reply_to, pkt.payload));
        }
        fn on_wakeup(&mut self, _ctx: &mut Ctx<'_>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn rebind_moves_delivery_to_the_new_address() {
        let mut sim = Simulator::new(1, Box::new(FixedPathModel::new(Duration::from_millis(10))));
        let a = addr(1, 40000);
        let a2 = addr(3, 40000);
        let b = addr(2, 7);
        let pinger = sim.add_host(
            Box::new(Pinger {
                target: b,
                local: a,
                echo_at: None,
            }),
            &[a.ip],
        );
        let echo = sim.add_host(
            Box::new(StickyEcho {
                reply_to: a2,
                received: 0,
            }),
            &[b.ip],
        );
        sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
        sim.rebind_host(pinger, a.ip, a2.ip, PathProfile::default());
        sim.run(1000);
        // The ping (sent from the old address) still routes by
        // destination; the reply addressed to the new address lands.
        assert_eq!(sim.host::<StickyEcho>(echo).received, 1);
        assert_eq!(
            sim.host::<Pinger>(pinger).echo_at,
            Some(SimTime::from_millis(20))
        );
        assert_eq!(sim.stats().packets_unroutable, 0);
    }

    #[test]
    fn rebind_makes_the_old_address_unroutable() {
        let (mut sim, pinger, echo) = two_host_sim(Duration::from_millis(10));
        let a = addr(1, 40000);
        let a2 = addr(3, 40000);
        sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
        // The ping is in flight; the echo's reply will target the old
        // address, which no longer resolves after the rebind.
        sim.rebind_host(pinger, a.ip, a2.ip, PathProfile::default());
        sim.run(1000);
        assert_eq!(sim.host::<Echo>(echo).received, 1);
        assert!(sim.host::<Pinger>(pinger).echo_at.is_none());
        assert_eq!(sim.stats().packets_unroutable, 1);
    }

    #[test]
    fn rebind_path_profile_adds_deterministic_delay() {
        let mut sim = Simulator::new(1, Box::new(FixedPathModel::new(Duration::from_millis(10))));
        let a = addr(1, 40000);
        let a2 = addr(3, 40000);
        let b = addr(2, 7);
        let pinger = sim.add_host(
            Box::new(Pinger {
                target: b,
                local: a2,
                echo_at: None,
            }),
            &[a.ip],
        );
        let echo = sim.add_host(Box::new(Echo { received: 0 }), &[b.ip]);
        sim.rebind_host(
            pinger,
            a.ip,
            a2.ip,
            PathProfile {
                extra_delay: Duration::from_millis(5),
                loss: None,
            },
        );
        sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
        sim.run(1000);
        // 5 ms extra on each direction touching the rebound address.
        assert_eq!(sim.host::<Echo>(echo).received, 1);
        assert_eq!(
            sim.host::<Pinger>(pinger).echo_at,
            Some(SimTime::from_millis(30))
        );
    }

    #[test]
    fn rebind_panics_on_stale_or_taken_addresses() {
        let taken = std::panic::catch_unwind(|| {
            let (mut sim, pinger, _) = two_host_sim(Duration::from_millis(1));
            sim.rebind_host(pinger, addr(1, 0).ip, addr(2, 0).ip, PathProfile::default());
        });
        assert!(taken.is_err(), "rebinding onto a bound address must panic");
        let stale = std::panic::catch_unwind(|| {
            let (mut sim, pinger, _) = two_host_sim(Duration::from_millis(1));
            sim.rebind_host(pinger, addr(9, 0).ip, addr(3, 0).ip, PathProfile::default());
        });
        assert!(stale.is_err(), "rebinding an unbound address must panic");
    }

    #[test]
    fn neutral_profile_leaves_runs_byte_identical() {
        let run = |install: bool| {
            let mut sim = Simulator::new(
                9,
                Box::new(FixedPathModel::with_loss(Duration::from_millis(3), 0.2)),
            );
            let a = addr(1, 40000);
            let b = addr(2, 7);
            let pinger = sim.add_host(
                Box::new(Pinger {
                    target: b,
                    local: a,
                    echo_at: None,
                }),
                &[a.ip],
            );
            sim.add_host(Box::new(Echo { received: 0 }), &[b.ip]);
            if install {
                // Installing and removing a profile must leave no trace.
                sim.set_path_profile(
                    a.ip,
                    PathProfile {
                        extra_delay: Duration::from_millis(1),
                        loss: None,
                    },
                );
                sim.set_path_profile(a.ip, PathProfile::default());
            }
            sim.with_host::<Pinger, _>(pinger, |p, ctx| {
                for _ in 0..30 {
                    p.start(ctx);
                }
            });
            sim.run(10_000);
            (sim.stats(), sim.now())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn impaired_routing_recycles_payload_buffers() {
        use crate::impair::{GilbertElliott, ImpairmentSchedule};
        use crate::net::PayloadBuf;
        // Heavy loss, duplication and reordering discard or copy many
        // packets. Every discarded packet's buffer must return to the
        // thread's freelist, so a second identical burst runs from
        // recycled buffers instead of growing the pool — the property
        // that keeps long impairment campaigns allocation-free.
        let burst = |sim: &mut Simulator, pinger: HostId| {
            for _ in 0..50 {
                sim.with_host::<Pinger, _>(pinger, |p, ctx| p.start(ctx));
                sim.run(10_000);
            }
        };
        let (mut sim, pinger, _echo) = two_host_sim(Duration::from_millis(10));
        sim.set_impairment(Box::new(
            ImpairmentSchedule::new()
                .with_burst(GilbertElliott::new(0.2, 0.5, 0.05, 0.5))
                .with_reorder(0.3, Duration::from_millis(30))
                .with_duplicate(0.3),
        ));
        burst(&mut sim, pinger);
        let warm = PayloadBuf::pooled();
        assert!(warm > 0, "discarded payloads should land in the freelist");
        burst(&mut sim, pinger);
        let after = PayloadBuf::pooled();
        assert!(
            after >= warm,
            "buffers leaked: pool shrank from {warm} to {after}"
        );
        assert!(
            after <= warm + 8,
            "pool kept growing ({warm} -> {after}): buffers are not being reused"
        );
    }
}
