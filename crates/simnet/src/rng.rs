//! Deterministic random number generation.
//!
//! Every stochastic decision in the workspace (path jitter, packet loss,
//! resolver recursion latency, population synthesis, ...) flows through
//! [`SimRng`], a xoshiro256** generator seeded via SplitMix64. The
//! implementation is self-contained so that results are bit-identical
//! across platforms and dependency upgrades — a property the paper's
//! "Reproducibility" section calls for and that external RNG crates do
//! not guarantee across versions.

/// SplitMix64 step, used to expand a single `u64` seed into the four
/// words of xoshiro256** state (the construction recommended by the
/// xoshiro authors).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** PRNG with convenience samplers.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Identical seeds produce
    /// identical streams on every platform.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // xoshiro256** must not start from the all-zero state; SplitMix64
        // of any seed cannot produce four zero words, but guard anyway.
        if s == [0, 0, 0, 0] {
            s = [
                0x1,
                0x9E3779B97F4A7C15,
                0xBF58476D1CE4E5B9,
                0x94D049BB133111EB,
            ];
        }
        SimRng { s }
    }

    /// Derive an independent child generator. Used to give each
    /// measurement unit (vantage point x resolver x protocol x repeat)
    /// its own stream so units can be simulated in any order — or in
    /// parallel — without changing results.
    pub fn fork(&self, label: u64) -> SimRng {
        // Mix the label into a fresh seed drawn from this generator's
        // state without advancing it, so forks are order-independent.
        let mut sm = self.s.iter().fold(label ^ 0xD6E8_FEB8_6659_FD93, |acc, w| {
            acc.rotate_left(23) ^ w.wrapping_mul(0xA24B_AED4_963E_E407)
        });
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        SimRng { s }
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    /// Uses Lemire's multiply-shift reduction with rejection to avoid
    /// modulo bias.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = (x as u128) * (bound as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform integer in `[lo, hi)` . Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Pick an index according to the given (not necessarily normalized)
    /// non-negative weights. Panics if all weights are zero or the slice
    /// is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "pick_weighted needs positive total weight");
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Standard normal deviate (Box-Muller, one value per call).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by drawing from (0, 1].
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Log-normal deviate: `exp(N(mu, sigma))`. Used for recursion
    /// latency and page-resource sizes, which are heavy-tailed in
    /// practice.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential deviate with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.f64()).ln()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_order_independent() {
        let root = SimRng::new(7);
        let mut a1 = root.fork(10);
        let mut b1 = root.fork(20);
        let mut b2 = root.fork(20);
        let mut a2 = root.fork(10);
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_eq!(b1.next_u64(), b2.next_u64());
    }

    #[test]
    fn fork_labels_independent() {
        let root = SimRng::new(7);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers() {
        let mut rng = SimRng::new(4);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn range_bounds() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let x = rng.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.1));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::new(8);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(9);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn pick_weighted_prefers_heavy() {
        let mut rng = SimRng::new(10);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(12);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean = {mean}");
    }
}
