//! # doqlab-simnet — deterministic discrete-event network simulator
//!
//! This crate is the substrate under every experiment in the `doqlab`
//! workspace. It replaces the real Internet used by the IMC'22 paper
//! *"DNS Privacy with Speed?"* with a fully deterministic simulation:
//!
//! * [`time::SimTime`] — nanosecond-resolution simulated clock. No wall
//!   clock is ever consulted; protocol state machines are polled with
//!   explicit timestamps (smoltcp-style).
//! * [`rng::SimRng`] — a seeded xoshiro256** generator. Every run of an
//!   experiment with the same seed produces byte-identical packets and
//!   timings.
//! * [`net`] — IPv4-style addressing and the [`net::Packet`] unit that
//!   travels between hosts.
//! * [`geo`] — coordinates and great-circle distance, from which the
//!   [`path`] model derives propagation delay (the paper's response-time
//!   differences are driven by round-trip counts x path RTT, so a
//!   geographic latency model preserves exactly the structure that the
//!   paper measures).
//! * [`sim::Simulator`] — the event loop: hosts implement [`sim::Host`]
//!   and exchange packets through a [`path::PathModel`]; a
//!   [`trace::PacketTrace`] records per-packet wire sizes for the size
//!   accounting of Table 1, and a streaming [`trace::PacketTap`]
//!   observer sees every routed packet at send time without retaining
//!   the trace (what the campaigns use for byte accounting).
//!   Simulators double as reusable arenas: [`sim::Simulator::reset`]
//!   clears hosts, queue, and traces while keeping allocations warm, so
//!   campaign workers run thousands of units in one arena each.
//! * [`impair`] — deterministic fault injection layered in front of the
//!   path model: Gilbert–Elliott burst loss, timed outage windows,
//!   packet reordering and duplication, all drawing from the
//!   simulator's seeded RNG ([`sim::Simulator::set_impairment`]).

#[cfg(feature = "count-allocs")]
pub mod alloc_count;
pub mod event;
pub mod geo;
pub mod impair;
pub mod net;
pub mod path;
pub mod rng;
pub mod sim;
pub mod time;
pub mod trace;

pub use event::{EventQueue, HeapEventQueue};
pub use geo::Coord;
pub use impair::{GilbertElliott, Impairment, ImpairmentSchedule, OutageWindow, PacketFate};
pub use net::{Ipv4Addr, Packet, PayloadBuf, SocketAddr, Transport};
pub use path::{GeoPathModel, PathCharacteristics, PathModel, PathProfile};
pub use rng::SimRng;
pub use sim::{Ctx, Host, HostId, Simulator};
pub use time::{Duration, SimTime};
pub use trace::{quic_long_header, PacketRecord, PacketTap, PacketTrace};
