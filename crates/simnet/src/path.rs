//! Path models: how long a packet takes between two hosts, and whether
//! it survives the trip.
//!
//! The default [`GeoPathModel`] derives one-way delay from great-circle
//! distance (fiber speed, times a path-stretch factor for the fact that
//! real routes are longer than geodesics), plus a fixed per-direction
//! base delay (last-mile, forwarding) and a random jitter component.
//! Loopback traffic (browser to its local DNS proxy) bypasses the model
//! with a microsecond-scale delay and no loss.

use crate::geo::{Coord, FIBER_SPEED_KM_S};
use crate::net::Ipv4Addr;
use crate::rng::SimRng;
use crate::time::Duration;
use std::collections::HashMap;

/// Sampled characteristics of a (src, dst) path for one packet.
#[derive(Debug, Clone, Copy)]
pub struct PathCharacteristics {
    /// Deterministic one-way delay (propagation + base).
    pub propagation: Duration,
    /// Standard deviation of the additive jitter (sampled per packet).
    pub jitter_std: Duration,
    /// Probability that a packet on this path is lost.
    pub loss: f64,
    /// Egress serialization bandwidth at the source, bits per second.
    /// `None` means infinite (no serialization delay).
    pub egress_bps: Option<u64>,
}

impl PathCharacteristics {
    /// Sample the actual one-way delay for a single packet.
    ///
    /// Jitter is zero-mean Gaussian truncated to ±3σ, so the sampled
    /// mean equals `propagation` and the delay stays positive for any
    /// σ below a third of the propagation delay. (An earlier version
    /// used the half-normal `|N(0,σ)|`, which silently inflated the
    /// mean one-way delay by `σ·√(2/π)` above the configured value.)
    pub fn sample_delay(&self, rng: &mut SimRng) -> Duration {
        let sigma = self.jitter_std.as_nanos() as f64;
        let jitter_ns = (rng.normal() * sigma).clamp(-3.0 * sigma, 3.0 * sigma);
        let base_ns = self.propagation.as_nanos() as f64;
        Duration::from_nanos((base_ns + jitter_ns).max(0.0) as u64)
    }
}

/// A model mapping (src, dst) pairs to path characteristics.
pub trait PathModel {
    fn characteristics(&self, src: Ipv4Addr, dst: Ipv4Addr) -> PathCharacteristics;
}

/// Per-address access-path overrides layered on top of a [`PathModel`],
/// describing the link behind one bound address — e.g. the cellular
/// uplink a client lands on after a wifi→cellular rebind
/// ([`Simulator::rebind_host`](crate::Simulator::rebind_host)). Applied
/// to every packet whose source or destination carries the address,
/// after the model's own characteristics and without consuming RNG, so
/// a simulator with no profiles installed stays byte-identical to one
/// predating this layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PathProfile {
    /// Extra one-way propagation delay on this access path.
    pub extra_delay: Duration,
    /// Override of the model's per-packet loss probability (`None`
    /// keeps the model's). When both endpoints carry a profile the
    /// lossier one wins.
    pub loss: Option<f64>,
}

impl PathProfile {
    /// A profile that changes nothing.
    pub fn is_neutral(&self) -> bool {
        *self == PathProfile::default()
    }
}

/// Geographic path model parameters.
#[derive(Debug, Clone)]
pub struct GeoPathParams {
    /// Multiplier on the geodesic fiber delay accounting for indirect
    /// routing. Empirically Internet RTTs are ~1.5-2.5x the geodesic
    /// lower bound; we default to 2.0.
    pub path_stretch: f64,
    /// Fixed one-way delay added to every packet (last mile, queuing,
    /// forwarding). Default 3 ms.
    pub base_delay: Duration,
    /// Jitter standard deviation as a fraction of the one-way delay.
    pub jitter_frac: f64,
    /// Per-packet loss probability on wide-area paths.
    pub loss: f64,
    /// Egress bandwidth per host in bits/s (`None` = infinite).
    pub egress_bps: Option<u64>,
    /// Delay for loopback (same-host) packets.
    pub loopback_delay: Duration,
}

impl Default for GeoPathParams {
    fn default() -> Self {
        GeoPathParams {
            path_stretch: 2.0,
            base_delay: Duration::from_millis(3),
            jitter_frac: 0.02,
            loss: 0.002,
            egress_bps: Some(100_000_000), // 100 Mbit/s access links
            loopback_delay: Duration::from_micros(30),
        }
    }
}

/// Path model based on host coordinates.
#[derive(Debug, Clone)]
pub struct GeoPathModel {
    params: GeoPathParams,
    locations: HashMap<Ipv4Addr, Coord>,
}

impl GeoPathModel {
    pub fn new(params: GeoPathParams) -> Self {
        GeoPathModel {
            params,
            locations: HashMap::new(),
        }
    }

    pub fn with_defaults() -> Self {
        Self::new(GeoPathParams::default())
    }

    /// Register the location of a host. Hosts without a location are
    /// treated as co-located with their peer (base delay only).
    pub fn place(&mut self, ip: Ipv4Addr, at: Coord) {
        self.locations.insert(ip, at);
    }

    pub fn location(&self, ip: Ipv4Addr) -> Option<Coord> {
        self.locations.get(&ip).copied()
    }

    pub fn params(&self) -> &GeoPathParams {
        &self.params
    }

    /// Deterministic one-way delay between two coordinates under these
    /// parameters (without jitter). Exposed for calibration tests.
    pub fn geodesic_delay(&self, a: &Coord, b: &Coord) -> Duration {
        let km = a.distance_km(b) * self.params.path_stretch;
        let secs = km / FIBER_SPEED_KM_S;
        self.params.base_delay + Duration::from_secs_f64(secs)
    }
}

impl PathModel for GeoPathModel {
    fn characteristics(&self, src: Ipv4Addr, dst: Ipv4Addr) -> PathCharacteristics {
        if src.ip_is_loopback_pair(dst) {
            return PathCharacteristics {
                propagation: self.params.loopback_delay,
                jitter_std: Duration::ZERO,
                loss: 0.0,
                egress_bps: None,
            };
        }
        let prop = match (self.locations.get(&src), self.locations.get(&dst)) {
            (Some(a), Some(b)) => self.geodesic_delay(a, b),
            _ => self.params.base_delay,
        };
        PathCharacteristics {
            propagation: prop,
            jitter_std: Duration::from_nanos(
                (prop.as_nanos() as f64 * self.params.jitter_frac) as u64,
            ),
            loss: self.params.loss,
            egress_bps: self.params.egress_bps,
        }
    }
}

impl Ipv4Addr {
    /// True when a packet between these addresses never leaves the host:
    /// either address is in 127.0.0.0/8 or they are equal.
    pub fn ip_is_loopback_pair(self, other: Ipv4Addr) -> bool {
        self == other || self.octets()[0] == 127 || other.octets()[0] == 127
    }
}

/// A trivial model with one fixed delay for all pairs: used by unit
/// tests of the transport stack where geography is irrelevant.
#[derive(Debug, Clone)]
pub struct FixedPathModel {
    pub one_way: Duration,
    pub loss: f64,
}

impl FixedPathModel {
    pub fn new(one_way: Duration) -> Self {
        FixedPathModel { one_way, loss: 0.0 }
    }

    pub fn with_loss(one_way: Duration, loss: f64) -> Self {
        FixedPathModel { one_way, loss }
    }
}

impl PathModel for FixedPathModel {
    fn characteristics(&self, src: Ipv4Addr, dst: Ipv4Addr) -> PathCharacteristics {
        if src.ip_is_loopback_pair(dst) {
            return PathCharacteristics {
                propagation: Duration::from_micros(30),
                jitter_std: Duration::ZERO,
                loss: 0.0,
                egress_bps: None,
            };
        }
        PathCharacteristics {
            propagation: self.one_way,
            jitter_std: Duration::ZERO,
            loss: self.loss,
            egress_bps: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Continent;

    fn ip(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    #[test]
    fn colocated_hosts_get_base_delay() {
        let model = GeoPathModel::with_defaults();
        let c = model.characteristics(ip(1), ip(2));
        assert_eq!(c.propagation, model.params().base_delay);
    }

    #[test]
    fn distance_increases_delay() {
        let mut model = GeoPathModel::with_defaults();
        model.place(ip(1), Continent::Europe.center());
        model.place(ip(2), Continent::Europe.center());
        model.place(ip(3), Continent::Oceania.center());
        let near = model.characteristics(ip(1), ip(2)).propagation;
        let far = model.characteristics(ip(1), ip(3)).propagation;
        assert!(far > near * 5);
        // EU<->OC one-way should be on the order of 100-250 ms with
        // stretch 2.0 — that yields the several-hundred-ms RTTs the
        // paper reports for its far vantage points.
        assert!(far >= Duration::from_millis(100), "far = {far:?}");
        assert!(far <= Duration::from_millis(250), "far = {far:?}");
    }

    #[test]
    fn loopback_is_fast_and_lossless() {
        let model = GeoPathModel::with_defaults();
        let c = model.characteristics(Ipv4Addr::LOCALHOST, Ipv4Addr::LOCALHOST);
        assert_eq!(c.loss, 0.0);
        assert!(c.propagation < Duration::from_millis(1));
    }

    #[test]
    fn jitter_is_bounded_around_propagation() {
        let mut rng = SimRng::new(1);
        let mut m = GeoPathModel::with_defaults();
        m.place(ip(1), Continent::Europe.center());
        m.place(ip(2), Continent::Asia.center());
        let c = m.characteristics(ip(1), ip(2));
        let lo = c.propagation - 3 * c.jitter_std - Duration::from_nanos(1);
        let hi = c.propagation + 3 * c.jitter_std + Duration::from_nanos(1);
        for _ in 0..10_000 {
            let d = c.sample_delay(&mut rng);
            assert!(d >= lo && d <= hi, "delay {d:?} outside ±3σ of {c:?}");
        }
    }

    #[test]
    fn jitter_is_zero_mean() {
        // Calibration pin for the half-normal bug: the sampled mean
        // one-way delay must equal the model's deterministic
        // propagation, not propagation + σ·√(2/π). With σ = 2% of the
        // propagation and n = 50k the standard error of the mean is
        // ~0.009% of propagation, so a 0.2% tolerance is ~20σ wide
        // while the old half-normal bias (+1.6%) would fail by far.
        let mut rng = SimRng::new(2);
        let mut m = GeoPathModel::with_defaults();
        m.place(ip(1), Continent::Europe.center());
        m.place(ip(2), Continent::Asia.center());
        let c = m.characteristics(ip(1), ip(2));
        let n = 50_000;
        let sum_ns: f64 = (0..n)
            .map(|_| c.sample_delay(&mut rng).as_nanos() as f64)
            .sum();
        let mean_ns = sum_ns / n as f64;
        let prop_ns = c.propagation.as_nanos() as f64;
        let rel_err = (mean_ns - prop_ns).abs() / prop_ns;
        assert!(rel_err < 0.002, "relative mean error {rel_err}");
    }

    #[test]
    fn fixed_model_is_fixed() {
        let m = FixedPathModel::new(Duration::from_millis(25));
        let c = m.characteristics(ip(1), ip(2));
        assert_eq!(c.propagation, Duration::from_millis(25));
        assert_eq!(c.loss, 0.0);
    }

    #[test]
    fn symmetric_characteristics() {
        let mut m = GeoPathModel::with_defaults();
        m.place(ip(1), Continent::Europe.center());
        m.place(ip(2), Continent::Asia.center());
        let ab = m.characteristics(ip(1), ip(2)).propagation;
        let ba = m.characteristics(ip(2), ip(1)).propagation;
        assert_eq!(ab, ba);
    }
}
