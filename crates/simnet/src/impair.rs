//! Deterministic fault injection layered onto the path model.
//!
//! An [`Impairment`] is consulted once per routed packet, *before* the
//! path model's own i.i.d. Bernoulli loss, and decides a [`PacketFate`]:
//! drop the packet, delay it past the flow's FIFO ordering (reordering),
//! or deliver a second copy (duplication). All stochastic decisions draw
//! from the simulator's own seeded RNG, so an impaired unit is exactly
//! as deterministic — and as thread-count-invariant under the campaign
//! engine — as an unimpaired one. When no impairment is installed the
//! router consumes no extra RNG, so zero-impairment runs are
//! byte-identical to a simulator without this layer at all.
//!
//! The concrete [`ImpairmentSchedule`] composes three classic regimes:
//!
//! * **Gilbert–Elliott burst loss** ([`GilbertElliott`]): a two-state
//!   Markov chain (good/bad) advanced per packet, with a per-state loss
//!   probability. Burstiness comes from the chain's sojourn times, not
//!   from correlated coin flips.
//! * **Outage windows** ([`OutageWindow`]): half-open `[start, end)`
//!   wall-clock intervals during which *every* packet is blackholed —
//!   no RNG involved, so outages are reproducible to the nanosecond.
//! * **Reordering and duplication**: per-packet Bernoulli events. A
//!   reordered packet receives an extra delay and bypasses the per-flow
//!   FIFO clamp, so it can genuinely arrive after later-sent packets; a
//!   duplicated packet is delivered twice with independently sampled
//!   path delays.

use crate::net::Packet;
use crate::rng::SimRng;
use crate::time::{Duration, SimTime};

/// What the impairment layer decided for one packet.
#[derive(Debug, Clone, Copy)]
pub struct PacketFate {
    /// Drop the packet before it reaches the path model.
    pub drop: bool,
    /// Extra one-way delay on top of the path model's sampled delay.
    pub extra_delay: Duration,
    /// Deliver a second copy with its own sampled path delay.
    pub duplicate: bool,
    /// Exempt this packet from per-flow FIFO ordering so the extra
    /// delay can actually reorder it within its flow.
    pub reorder: bool,
}

impl PacketFate {
    /// The identity fate: deliver normally.
    pub fn deliver() -> Self {
        PacketFate {
            drop: false,
            extra_delay: Duration::ZERO,
            duplicate: false,
            reorder: false,
        }
    }
}

/// A per-packet fault-injection policy, layered in front of the path
/// model by [`crate::Simulator::set_impairment`].
pub trait Impairment {
    /// Decide the fate of one packet. Called in event order with the
    /// simulator clock and RNG; implementations may keep state (e.g. a
    /// Markov chain) but must draw randomness only from `rng` to keep
    /// runs deterministic.
    fn apply(&mut self, now: SimTime, pkt: &Packet, rng: &mut SimRng) -> PacketFate;
}

/// Two-state Markov (Gilbert–Elliott) burst-loss model.
///
/// The chain transitions *before* each packet's loss draw: with
/// probability `p_good_to_bad` (resp. `p_bad_to_good`) the state flips,
/// then the packet is lost with the new state's loss probability. Mean
/// sojourn in the bad state is `1 / p_bad_to_good` packets, which is
/// what makes losses bursty rather than i.i.d.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    pub p_good_to_bad: f64,
    pub p_bad_to_good: f64,
    pub loss_good: f64,
    pub loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Start in the good state with the given transition and loss
    /// probabilities.
    pub fn new(p_good_to_bad: f64, p_bad_to_good: f64, loss_good: f64, loss_bad: f64) -> Self {
        GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
            in_bad: false,
        }
    }

    /// True while the chain is in the bad (bursty-loss) state.
    pub fn in_bad(&self) -> bool {
        self.in_bad
    }

    /// Advance the chain by one packet and sample whether it is lost.
    pub fn step(&mut self, rng: &mut SimRng) -> bool {
        let p_flip = if self.in_bad {
            self.p_bad_to_good
        } else {
            self.p_good_to_bad
        };
        if p_flip > 0.0 && rng.chance(p_flip) {
            self.in_bad = !self.in_bad;
        }
        let loss = if self.in_bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        loss > 0.0 && rng.chance(loss)
    }

    /// Stationary mean loss rate of the chain: the bad-state occupancy
    /// `p_gb / (p_gb + p_bg)` weighting `loss_bad`, plus the complement
    /// weighting `loss_good`. Used by calibration tests.
    pub fn mean_loss(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            return self.loss_good;
        }
        let pi_bad = self.p_good_to_bad / denom;
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }
}

/// A half-open `[start, end)` interval during which every packet is
/// blackholed. A packet routed exactly at `start` is dropped; one routed
/// exactly at `end` goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    pub start: SimTime,
    pub end: SimTime,
}

impl OutageWindow {
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(start <= end, "outage window ends before it starts");
        OutageWindow { start, end }
    }

    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// A composable schedule combining burst loss, outages, reordering and
/// duplication. The default schedule is inert: it drops, delays and
/// duplicates nothing and consumes no RNG.
#[derive(Debug, Clone, Default)]
pub struct ImpairmentSchedule {
    pub burst: Option<GilbertElliott>,
    pub outages: Vec<OutageWindow>,
    pub reorder_prob: f64,
    /// Extra delay applied to reordered packets.
    pub reorder_extra: Duration,
    pub duplicate_prob: f64,
}

impl ImpairmentSchedule {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_burst(mut self, ge: GilbertElliott) -> Self {
        self.burst = Some(ge);
        self
    }

    pub fn with_outage(mut self, start: SimTime, end: SimTime) -> Self {
        self.outages.push(OutageWindow::new(start, end));
        self
    }

    pub fn with_reorder(mut self, prob: f64, extra: Duration) -> Self {
        self.reorder_prob = prob;
        self.reorder_extra = extra;
        self
    }

    pub fn with_duplicate(mut self, prob: f64) -> Self {
        self.duplicate_prob = prob;
        self
    }

    /// True when this schedule can never affect a packet. An inert
    /// schedule draws no RNG, so installing it (or not) leaves a run
    /// byte-identical.
    pub fn is_inert(&self) -> bool {
        self.burst.is_none()
            && self.outages.is_empty()
            && self.reorder_prob <= 0.0
            && self.duplicate_prob <= 0.0
    }
}

impl Impairment for ImpairmentSchedule {
    fn apply(&mut self, now: SimTime, _pkt: &Packet, rng: &mut SimRng) -> PacketFate {
        let mut fate = PacketFate::deliver();
        // Outages first: a blackholed epoch needs no randomness and
        // must not perturb the RNG stream consumed by later packets.
        if self.outages.iter().any(|w| w.contains(now)) {
            fate.drop = true;
            return fate;
        }
        if let Some(ge) = &mut self.burst {
            if ge.step(rng) {
                fate.drop = true;
                return fate;
            }
        }
        if self.duplicate_prob > 0.0 && rng.chance(self.duplicate_prob) {
            fate.duplicate = true;
        }
        if self.reorder_prob > 0.0 && rng.chance(self.reorder_prob) {
            fate.reorder = true;
            fate.extra_delay = self.reorder_extra;
        }
        fate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Ipv4Addr, SocketAddr};

    fn pkt() -> Packet {
        let a = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 1), 1000);
        let b = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 2), 53);
        Packet::udp(a, b, vec![0u8; 32])
    }

    #[test]
    fn ge_never_leaves_good_state_without_transitions() {
        let mut ge = GilbertElliott::new(0.0, 0.0, 0.0, 1.0);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            assert!(!ge.step(&mut rng));
            assert!(!ge.in_bad());
        }
    }

    #[test]
    fn ge_alternates_with_certain_transitions() {
        // p=1 both ways: the chain flips every packet, starting good ->
        // bad on the first step.
        let mut ge = GilbertElliott::new(1.0, 1.0, 0.0, 1.0);
        let mut rng = SimRng::new(2);
        for i in 0..100 {
            let lost = ge.step(&mut rng);
            let expect_bad = i % 2 == 0;
            assert_eq!(ge.in_bad(), expect_bad, "step {i}");
            assert_eq!(lost, expect_bad, "step {i}");
        }
    }

    #[test]
    fn ge_sticky_bad_state_produces_bursts() {
        // Rarely enters bad, stays a while: losses should cluster.
        let mut ge = GilbertElliott::new(0.01, 0.2, 0.0, 1.0);
        let mut rng = SimRng::new(3);
        let outcomes: Vec<bool> = (0..100_000).map(|_| ge.step(&mut rng)).collect();
        let losses = outcomes.iter().filter(|l| **l).count();
        assert!(losses > 0);
        // Count loss->loss adjacencies; under i.i.d. loss at the same
        // mean rate (~4.8%) we would expect ~losses * rate adjacencies,
        // bursts give far more.
        let rate = losses as f64 / outcomes.len() as f64;
        let adjacent = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let iid_expect = losses as f64 * rate;
        assert!(
            adjacent as f64 > 4.0 * iid_expect,
            "adjacent = {adjacent}, iid expectation = {iid_expect:.1}"
        );
    }

    #[test]
    fn ge_mean_loss_matches_stationary_rate() {
        let mut ge = GilbertElliott::new(0.05, 0.3, 0.0, 0.5);
        let expect = ge.mean_loss();
        assert!((expect - 0.05 / 0.35 * 0.5).abs() < 1e-12);
        let mut rng = SimRng::new(4);
        let n = 200_000;
        let losses = (0..n).filter(|_| ge.step(&mut rng)).count();
        let rate = losses as f64 / n as f64;
        assert!(
            (rate - expect).abs() < 0.01,
            "rate = {rate}, expect = {expect}"
        );
    }

    #[test]
    fn outage_window_edges_are_half_open() {
        let w = OutageWindow::new(SimTime::from_millis(100), SimTime::from_millis(200));
        assert!(!w.contains(SimTime::from_millis(99)));
        assert!(w.contains(SimTime::from_millis(100)), "start is inclusive");
        assert!(w.contains(SimTime::from_millis(199)));
        assert!(!w.contains(SimTime::from_millis(200)), "end is exclusive");
        assert!(!w.contains(SimTime::from_millis(300)));
    }

    #[test]
    fn empty_outage_window_contains_nothing() {
        let t = SimTime::from_millis(50);
        let w = OutageWindow::new(t, t);
        assert!(!w.contains(t));
    }

    #[test]
    fn schedule_outage_drops_without_rng() {
        let mut s = ImpairmentSchedule::new()
            .with_outage(SimTime::from_millis(10), SimTime::from_millis(20));
        let mut rng = SimRng::new(5);
        let before = rng.clone().next_u64();
        let fate = s.apply(SimTime::from_millis(15), &pkt(), &mut rng);
        assert!(fate.drop);
        assert_eq!(rng.next_u64(), before, "blackhole must not consume RNG");
    }

    #[test]
    fn inert_schedule_consumes_no_rng() {
        let mut s = ImpairmentSchedule::new();
        assert!(s.is_inert());
        let mut rng = SimRng::new(6);
        let before = rng.clone().next_u64();
        let fate = s.apply(SimTime::from_millis(1), &pkt(), &mut rng);
        assert!(!fate.drop && !fate.duplicate && !fate.reorder);
        assert_eq!(fate.extra_delay, Duration::ZERO);
        assert_eq!(rng.next_u64(), before);
    }

    #[test]
    fn schedule_composes_duplicate_and_reorder() {
        let mut s = ImpairmentSchedule::new()
            .with_duplicate(1.0)
            .with_reorder(1.0, Duration::from_millis(7));
        assert!(!s.is_inert());
        let mut rng = SimRng::new(7);
        let fate = s.apply(SimTime::ZERO, &pkt(), &mut rng);
        assert!(fate.duplicate);
        assert!(fate.reorder);
        assert_eq!(fate.extra_delay, Duration::from_millis(7));
    }
}
