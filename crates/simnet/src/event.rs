//! The event queue driving the simulation.
//!
//! Events pop in `(time, sequence)` order: the sequence number breaks
//! ties in insertion order, which makes event processing fully
//! deterministic even when many events share a timestamp.
//!
//! Two implementations share that contract:
//!
//! * [`EventQueue`] — a hierarchical timer wheel, the production queue.
//!   Three levels of 4096 slots each cover `2^36` ns ≈ 68 s ahead of
//!   the cursor at nanosecond resolution; an overflow heap catches
//!   farther-future timers (idle-eviction deadlines, diurnal arrival
//!   gaps). Push is O(1); pop is a couple of bitmap scans plus a short
//!   in-slot scan. Slot assignment follows the XOR trick (level = the
//!   highest 12-bit digit where the deadline differs from the cursor),
//!   so a slot never mixes rotations and the earliest pending event is
//!   always in the lowest-indexed occupied slot of the lowest occupied
//!   level.
//! * [`HeapEventQueue`] — the original `BinaryHeap` ordered by
//!   `(time, seq)`. Kept as the executable specification: a property
//!   test drives both on random schedules and asserts identical pop
//!   order, including same-tick ties.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// Bits per wheel level: 4096 slots each. Wide levels keep the
/// cascade count per event low (a deadline 30 s out is only two levels
/// up) at the cost of slot-array size, which the reusable simulator
/// arenas amortize away.
const LEVEL_BITS: u32 = 12;
const SLOTS: usize = 1 << LEVEL_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// u64 words per level occupancy bitmap.
const WORDS: usize = SLOTS / 64;
const LEVELS: usize = 3;
/// Deadlines at least this far past the cursor overflow to the heap:
/// `2^36` ns ≈ 68.7 s.
const HORIZON: u64 = 1 << (LEVEL_BITS * LEVELS as u32);

/// Two-level occupancy bitmap over 4096 slots: a summary word with one
/// bit per 64-slot word. Lowest set slot resolves in two
/// `trailing_zeros`.
#[derive(Debug, Clone)]
struct Occupancy {
    summary: u64,
    words: [u64; WORDS],
}

impl Occupancy {
    fn new() -> Self {
        Occupancy {
            summary: 0,
            words: [0; WORDS],
        }
    }

    #[inline]
    fn set(&mut self, slot: usize) {
        self.words[slot / 64] |= 1 << (slot % 64);
        self.summary |= 1 << (slot / 64);
    }

    #[inline]
    fn unset(&mut self, slot: usize) {
        let w = slot / 64;
        self.words[w] &= !(1 << (slot % 64));
        if self.words[w] == 0 {
            self.summary &= !(1 << w);
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.summary == 0
    }

    /// Index of the lowest occupied slot; meaningless when empty.
    #[inline]
    fn lowest(&self) -> usize {
        let w = self.summary.trailing_zeros() as usize;
        w * 64 + self.words[w].trailing_zeros() as usize
    }

    fn clear(&mut self) {
        self.summary = 0;
        self.words = [0; WORDS];
    }
}

/// A deterministic time-ordered queue of payloads: a hierarchical
/// timer wheel with an overflow heap (see the module docs).
///
/// Deadlines are expected at or after the last popped time — the
/// simulator's contract, since handlers run at the popped timestamp
/// and schedule into their future. A deadline in the past is clamped
/// into the cursor's slot and still pops in exact `(time, seq)` order.
#[derive(Debug)]
pub struct EventQueue<T> {
    /// `slots[level * SLOTS + i]` — unsorted; pop min-scans by
    /// `(time, seq)`.
    slots: Vec<Vec<Entry<T>>>,
    occupied: [Occupancy; LEVELS],
    /// Cursor: the last popped (or cascaded-to) tick in nanoseconds.
    /// Every wheel-resident deadline is within `HORIZON` of it.
    elapsed: u64,
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    /// Reused cascade buffer, so redistributing a slot allocates
    /// nothing in steady state.
    scratch: Vec<Entry<T>>,
    len: usize,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [Occupancy::new(), Occupancy::new(), Occupancy::new()],
            elapsed: 0,
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedule `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.place(Entry { time, seq, payload });
    }

    /// Insert an entry at the level/slot its deadline dictates.
    fn place(&mut self, e: Entry<T>) {
        // Clamp the past into the cursor's own slot: it sorts first in
        // the in-slot scan, so pop order still matches the heap's.
        let t = e.time.as_nanos().max(self.elapsed);
        let diff = t ^ self.elapsed;
        if diff >= HORIZON {
            self.overflow.push(Reverse(e));
            return;
        }
        let level = if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros()) / LEVEL_BITS
        } as usize;
        let slot = ((t >> (LEVEL_BITS * level as u32)) & SLOT_MASK) as usize;
        self.slots[level * SLOTS + slot].push(e);
        self.occupied[level].set(slot);
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        loop {
            // The earliest deadline lives in the lowest occupied level
            // (level-l residents are strictly later than level-(l-1)
            // ones), in its lowest occupied slot.
            let Some(level) = (0..LEVELS).find(|&l| !self.occupied[l].is_empty()) else {
                // Wheel empty: jump the cursor to the overflow's
                // earliest deadline and pull everything now within the
                // horizon back into the wheel.
                let t0 = self.overflow.peek()?.0.time.as_nanos();
                self.elapsed = self.elapsed.max(t0);
                while let Some(Reverse(e)) = self.overflow.peek() {
                    if e.time.as_nanos() ^ self.elapsed >= HORIZON {
                        break;
                    }
                    let Reverse(e) = self.overflow.pop().expect("peeked");
                    self.place(e);
                }
                continue;
            };
            let slot = self.occupied[level].lowest();
            if level > 0 {
                let idx = level * SLOTS + slot;
                // The slot is the wheel minimum: a lone entry needs no
                // cascade, it IS the next event (ties always share a
                // slot, so a singleton has none).
                if self.slots[idx].len() == 1 {
                    let e = self.slots[idx].pop().expect("occupied slot");
                    self.occupied[level].unset(slot);
                    self.elapsed = self.elapsed.max(e.time.as_nanos());
                    self.len -= 1;
                    return Some((e.time, e.payload));
                }
                // Cascade: advance the cursor to the slot's block and
                // redistribute its entries into lower levels.
                let span = 1u64 << (LEVEL_BITS * (level as u32 + 1));
                let block =
                    (self.elapsed & !(span - 1)) | ((slot as u64) << (LEVEL_BITS * level as u32));
                self.elapsed = self.elapsed.max(block);
                let mut scratch = std::mem::take(&mut self.scratch);
                std::mem::swap(&mut scratch, &mut self.slots[idx]);
                self.occupied[level].unset(slot);
                for e in scratch.drain(..) {
                    self.place(e);
                }
                self.scratch = scratch;
                continue;
            }
            let bucket = &mut self.slots[slot];
            let mut min = 0;
            for i in 1..bucket.len() {
                if bucket[i] < bucket[min] {
                    min = i;
                }
            }
            let e = bucket.swap_remove(min);
            if bucket.is_empty() {
                self.occupied[0].unset(slot);
            }
            self.elapsed = self.elapsed.max(e.time.as_nanos());
            self.len -= 1;
            return Some((e.time, e.payload));
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        for level in 0..LEVELS {
            if self.occupied[level].is_empty() {
                continue;
            }
            let slot = self.occupied[level].lowest();
            let t = self.slots[level * SLOTS + slot]
                .iter()
                .map(|e| e.time)
                .min()
                .expect("occupied slot");
            return Some(t);
        }
        self.overflow.peek().map(|Reverse(e)| e.time)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reserve room for `cap` entries in every wheel slot, front-loading
    /// the one-time growth allocation a slot otherwise pays on first
    /// touch. After warming, pushes and cascades that never exceed `cap`
    /// entries per slot hit the allocator zero times — what the
    /// `count-allocs` steady-state test pins.
    pub fn warm(&mut self, cap: usize) {
        for s in &mut self.slots {
            s.reserve(cap);
        }
    }

    /// Drop all pending events, rewind the cursor and restart the
    /// sequence counter, keeping every allocation. Used by
    /// [`crate::Simulator::reset`] so a simulator arena can be reused
    /// across runs without reallocating.
    pub fn clear(&mut self) {
        if self.len > 0 {
            for s in &mut self.slots {
                s.clear();
            }
            self.overflow.clear();
        }
        for occ in &mut self.occupied {
            occ.clear();
        }
        self.elapsed = 0;
        self.len = 0;
        self.next_seq = 0;
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// The original `BinaryHeap` event queue, ordered by `(time, seq)`.
/// Retained as the reference implementation the timer wheel is
/// property-tested against.
#[derive(Debug)]
pub struct HeapEventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

impl<T> HeapEventQueue<T> {
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events and restart the sequence counter,
    /// keeping the heap's allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }
}

impl<T> Default for HeapEventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_restarts_sequence_numbers() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.push(t, "stale");
        q.clear();
        assert!(q.is_empty());
        // Tie-breaking after a clear must match a fresh queue, or a
        // reused simulator arena would dispatch same-time events in a
        // different order than a newly allocated one.
        q.push(t, "a");
        q.push(t, "b");
        assert_eq!(q.pop(), Some((t, "a")));
        assert_eq!(q.pop(), Some((t, "b")));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_deadlines_round_trip_the_overflow_heap() {
        let mut q = EventQueue::new();
        // Well past the 2^36 ns ≈ 68 s horizon: a diurnal-window tail.
        let far = SimTime::from_secs(86_400);
        let near = SimTime::from_millis(1);
        q.push(far, "far");
        q.push(near, "near");
        q.push(far, "far2");
        assert_eq!(q.peek_time(), Some(near));
        assert_eq!(q.pop(), Some((near, "near")));
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop(), Some((far, "far")));
        assert_eq!(q.pop(), Some((far, "far2")));
        assert_eq!(q.pop(), None);
        // Scheduling continues past the overflow jump.
        q.push(far + crate::time::Duration::from_secs(120), "later");
        assert_eq!(q.pop().map(|(_, p)| p), Some("later"));
    }

    #[test]
    fn interleaved_pushes_match_heap_order_across_levels() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        // Deterministic xorshift: times spanning every wheel level and
        // the overflow heap, with frequent exact ties.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut clock = 0u64;
        for round in 0..2_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let gap = match x % 5 {
                0 => 0,                           // same tick as the clock
                1 => x % 64,                      // level 0
                2 => x % 4_096,                   // level 1
                3 => x % HORIZON,                 // any level
                _ => HORIZON + x % (4 * HORIZON), // overflow
            };
            let t = SimTime::from_nanos(clock + gap);
            wheel.push(t, round);
            heap.push(t, round);
            if x.is_multiple_of(3) {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    clock = t.as_nanos();
                }
            }
        }
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
