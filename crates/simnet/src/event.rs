//! The event queue driving the simulation.
//!
//! A min-heap ordered by `(time, sequence)`: the sequence number breaks
//! ties in insertion order, which makes event processing fully
//! deterministic even when many events share a timestamp.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic time-ordered queue of payloads.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events and restart the sequence counter, keeping
    /// the heap's allocation. Used by [`crate::Simulator::reset`] so a
    /// simulator arena can be reused across runs without reallocating.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_restarts_sequence_numbers() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.push(t, "stale");
        q.clear();
        assert!(q.is_empty());
        // Tie-breaking after a clear must match a fresh queue, or a
        // reused simulator arena would dispatch same-time events in a
        // different order than a newly allocated one.
        q.push(t, "a");
        q.push(t, "b");
        assert_eq!(q.pop(), Some((t, "a")));
        assert_eq!(q.pop(), Some((t, "b")));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }
}
