//! Geographic coordinates and distance, used to derive propagation delay.
//!
//! The paper's vantage points are Amazon EC2 instances, one per
//! continent, and its 313 resolvers are geolocated via an IP geolocation
//! service (their Fig. 1). We place simulated hosts at coordinates and
//! derive one-way propagation delay from great-circle distance: light in
//! fiber travels at roughly 2/3 c, and real Internet paths are longer
//! than geodesics, which is captured by a path-stretch factor in
//! [`crate::path::GeoPathModel`].

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Speed of light in vacuum, km per second.
pub const LIGHT_SPEED_KM_S: f64 = 299_792.458;

/// Propagation speed in optical fiber (~2/3 c), km per second.
pub const FIBER_SPEED_KM_S: f64 = LIGHT_SPEED_KM_S * 2.0 / 3.0;

/// A point on the Earth's surface (degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coord {
    pub lat: f64,
    pub lon: f64,
}

impl Coord {
    pub const fn new(lat: f64, lon: f64) -> Self {
        Coord { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine).
    pub fn distance_km(&self, other: &Coord) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
    }
}

/// Continents, used for the resolver population (Fig. 1) and the
/// per-vantage-point groupings of Fig. 2 and Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Continent {
    Europe,
    Asia,
    NorthAmerica,
    Africa,
    Oceania,
    SouthAmerica,
}

impl Continent {
    /// All continents, ordered by the paper's resolver count (EU 130,
    /// AS 128, NA 49, AF 2, OC 2, SA 2) — the row order of Fig. 2/4.
    pub const ALL: [Continent; 6] = [
        Continent::Europe,
        Continent::Asia,
        Continent::NorthAmerica,
        Continent::Africa,
        Continent::Oceania,
        Continent::SouthAmerica,
    ];

    /// Two-letter code as used in the paper's figures.
    pub fn code(&self) -> &'static str {
        match self {
            Continent::Europe => "EU",
            Continent::Asia => "AS",
            Continent::NorthAmerica => "NA",
            Continent::Africa => "AF",
            Continent::Oceania => "OC",
            Continent::SouthAmerica => "SA",
        }
    }

    /// A representative central coordinate, used as the centre of the
    /// scatter when synthesizing resolver locations.
    pub fn center(&self) -> Coord {
        match self {
            Continent::Europe => Coord::new(50.1, 8.7), // Frankfurt
            Continent::Asia => Coord::new(1.35, 103.8), // Singapore
            Continent::NorthAmerica => Coord::new(39.0, -77.5), // N. Virginia
            Continent::Africa => Coord::new(-33.9, 18.4), // Cape Town
            Continent::Oceania => Coord::new(-33.9, 151.2), // Sydney
            Continent::SouthAmerica => Coord::new(-23.5, -46.6), // Sao Paulo
        }
    }
}

impl std::fmt::Display for Continent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance() {
        let c = Coord::new(48.1, 11.6);
        assert!(c.distance_km(&c) < 1e-9);
    }

    #[test]
    fn munich_to_new_york() {
        // Known distance ~6,488 km.
        let munich = Coord::new(48.137, 11.575);
        let nyc = Coord::new(40.713, -74.006);
        let d = munich.distance_km(&nyc);
        assert!((d - 6488.0).abs() < 50.0, "d = {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Coord::new(1.35, 103.8);
        let b = Coord::new(-33.9, 151.2);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(0.0, 180.0);
        let d = a.distance_km(&b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
    }

    #[test]
    fn continent_codes_unique() {
        let codes: std::collections::HashSet<_> = Continent::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), 6);
    }

    #[test]
    fn fiber_rtt_frankfurt_sydney_plausible() {
        // Sanity-check the latency model scale: Frankfurt<->Sydney is
        // ~16,500 km, so one-way fiber delay is ~82 ms and RTT ~165 ms
        // before path stretch.
        let d = Continent::Europe
            .center()
            .distance_km(&Continent::Oceania.center());
        let one_way_ms = d / FIBER_SPEED_KM_S * 1000.0;
        assert!(
            one_way_ms > 60.0 && one_way_ms < 110.0,
            "one_way = {one_way_ms}"
        );
    }
}
