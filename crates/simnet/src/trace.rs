//! Packet tracing for byte accounting.
//!
//! Table 1 of the paper reports the median IP payload bytes per
//! direction and per phase (handshake vs. DNS query/response) for a
//! single query. The measurement harness reconstructs those phases from
//! a [`PacketTrace`]: every packet the simulator routes is recorded with
//! its send time, endpoints and IP payload length.

use crate::net::{Packet, SocketAddr, Transport};
use crate::time::SimTime;

/// One routed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// Time the packet was handed to the network (send time).
    pub sent_at: SimTime,
    pub src: SocketAddr,
    pub dst: SocketAddr,
    pub transport: Transport,
    /// IP payload length (transport header + payload), the Table 1 unit.
    pub ip_payload_len: usize,
    /// First byte of the transport payload (classifies QUIC long vs
    /// short headers for phase accounting). `None` for empty payloads.
    pub first_byte: Option<u8>,
    /// True if the packet was subsequently lost or unroutable.
    pub dropped: bool,
}

impl PacketRecord {
    pub fn new(sent_at: SimTime, pkt: &Packet, dropped: bool) -> Self {
        PacketRecord {
            sent_at,
            src: pkt.src,
            dst: pkt.dst,
            transport: pkt.transport,
            ip_payload_len: pkt.ip_payload_len(),
            first_byte: pkt.payload.first().copied(),
            dropped,
        }
    }

    /// True when the recorded first payload byte is a QUIC long header
    /// (Initial / 0-RTT / Handshake / Retry — the handshake phase).
    /// Empty payloads classify as short-header (application phase).
    pub fn is_quic_long_header(&self) -> bool {
        self.first_byte.is_some_and(quic_long_header)
    }
}

/// RFC 9000 §17.2: the header form bit (MSB) of the first byte
/// distinguishes long-header packets (handshake machinery) from
/// short-header 1-RTT packets (application data). Phase accounting for
/// DoQ attributes long-header packets to the connection-setup phase.
pub fn quic_long_header(first_byte: u8) -> bool {
    first_byte & 0x80 != 0
}

/// A streaming observer of routed packets.
///
/// Installed on a [`crate::Simulator`] via `set_tap`, a tap sees every
/// packet the moment it is handed to the network (including packets
/// that are then lost or unroutable — they were put on the wire) and
/// can accumulate whatever statistic it needs online. This replaces
/// retaining a full [`PacketTrace`] per run when only an aggregate is
/// wanted: the single-query campaign's phase-byte accounting is a tap,
/// so it no longer holds O(packets) memory per unit or needs a second
/// pass over the trace.
pub trait PacketTap: std::any::Any {
    /// Called once per routed packet, at send time.
    fn on_packet(&mut self, record: &PacketRecord);

    fn as_any(&self) -> &dyn std::any::Any;
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// An append-only log of routed packets.
#[derive(Debug, Default, Clone)]
pub struct PacketTrace {
    records: Vec<PacketRecord>,
}

impl PacketTrace {
    pub fn new() -> Self {
        PacketTrace::default()
    }

    pub fn record(&mut self, rec: PacketRecord) {
        self.records.push(rec);
    }

    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Total IP payload bytes sent from `src` to `dst` (any ports)
    /// within `[from, to)`. Dropped packets still count: they were put
    /// on the wire.
    pub fn bytes_between(
        &self,
        src: SocketAddr,
        dst: SocketAddr,
        from: SimTime,
        to: SimTime,
    ) -> usize {
        self.records
            .iter()
            .filter(|r| {
                r.src.ip == src.ip && r.dst.ip == dst.ip && r.sent_at >= from && r.sent_at < to
            })
            .map(|r| r.ip_payload_len)
            .sum()
    }

    /// Total IP payload bytes from `src_ip` to `dst_ip` over the whole
    /// trace, identified by IPs only.
    pub fn total_bytes(&self, src: SocketAddr, dst: SocketAddr) -> usize {
        self.bytes_between(
            src,
            dst,
            SimTime::ZERO,
            SimTime::from_secs(u64::MAX / 2_000_000_000),
        )
    }

    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Ipv4Addr;

    fn sa(n: u8, port: u16) -> SocketAddr {
        SocketAddr::new(Ipv4Addr::new(10, 0, 0, n), port)
    }

    fn rec(t: u64, src: SocketAddr, dst: SocketAddr, len: usize) -> PacketRecord {
        PacketRecord {
            sent_at: SimTime::from_millis(t),
            src,
            dst,
            transport: Transport::Udp,
            ip_payload_len: len,
            first_byte: Some(0),
            dropped: false,
        }
    }

    #[test]
    fn bytes_between_filters_by_direction_and_window() {
        let mut trace = PacketTrace::new();
        let a = sa(1, 100);
        let b = sa(2, 53);
        trace.record(rec(0, a, b, 50));
        trace.record(rec(10, b, a, 60));
        trace.record(rec(20, a, b, 70));
        assert_eq!(
            trace.bytes_between(a, b, SimTime::ZERO, SimTime::from_millis(15)),
            50
        );
        assert_eq!(
            trace.bytes_between(a, b, SimTime::ZERO, SimTime::from_millis(25)),
            120
        );
        assert_eq!(
            trace.bytes_between(b, a, SimTime::ZERO, SimTime::from_millis(25)),
            60
        );
        assert_eq!(trace.total_bytes(a, b), 120);
    }

    #[test]
    fn ports_are_ignored_ips_matter() {
        let mut trace = PacketTrace::new();
        trace.record(rec(0, sa(1, 100), sa(2, 53), 50));
        trace.record(rec(0, sa(1, 200), sa(2, 853), 25));
        assert_eq!(trace.total_bytes(sa(1, 9), sa(2, 9)), 75);
        assert_eq!(trace.total_bytes(sa(2, 9), sa(1, 9)), 0);
    }

    #[test]
    fn clear_empties() {
        let mut trace = PacketTrace::new();
        trace.record(rec(0, sa(1, 1), sa(2, 2), 10));
        trace.clear();
        assert!(trace.records().is_empty());
    }

    #[test]
    fn quic_header_form_bit_classifies_all_long_header_types() {
        // RFC 9000 first bytes: long headers set the MSB.
        for fb in [
            0xC0, // Initial
            0xD0, // 0-RTT
            0xE0, // Handshake
            0xF0, // Retry
            0x80, // version negotiation (form bit only)
        ] {
            assert!(quic_long_header(fb), "{fb:#04x} is a long header");
        }
        // Short (1-RTT) headers have the MSB clear; the fixed bit
        // (0x40) and key-phase/spin bits do not matter.
        for fb in [0x40u8, 0x41, 0x7F, 0x00] {
            assert!(!quic_long_header(fb), "{fb:#04x} is a short header");
        }
    }

    #[test]
    fn record_first_byte_phase_attribution() {
        let a = sa(1, 100);
        let b = sa(2, 853);
        let mut long = rec(0, a, b, 1252);
        long.first_byte = Some(0xC3);
        assert!(long.is_quic_long_header());
        let mut short = rec(1, a, b, 60);
        short.first_byte = Some(0x45);
        assert!(!short.is_quic_long_header());
        // Empty payload: nothing to classify, counts as application.
        let mut empty = rec(2, a, b, 40);
        empty.first_byte = None;
        assert!(!empty.is_quic_long_header());
    }
}
