//! A counting global allocator for allocation-budget benchmarks.
//!
//! Compiled only under the `count-allocs` feature: installing a
//! `#[global_allocator]` is a whole-binary decision, so the default
//! build keeps the system allocator untouched. With the feature on,
//! every allocation (alloc, alloc_zeroed, and grow-side realloc) bumps
//! two counters:
//!
//! * a process-wide total ([`total_allocations`]) — what the campaign
//!   throughput bench divides by simulator events to report
//!   `allocs_per_event`;
//! * a per-thread count ([`thread_allocations`]) — what the
//!   zero-steady-state-allocation tests use, so concurrently running
//!   tests on other threads cannot perturb the measurement.
//!
//! Deallocation is never counted: the interesting budget is how often
//! the hot path asks the allocator for *new* memory, and a pooled
//! buffer that is recycled instead of freed should score zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static TOTAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL: Cell<u64> = const { Cell::new(0) };
}

/// Allocation count across all threads since process start.
pub fn total_allocations() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Allocation count on the calling thread since it started.
pub fn thread_allocations() -> u64 {
    LOCAL.try_with(|c| c.get()).unwrap_or(0)
}

/// The counting allocator: defers all memory management to [`System`],
/// adding one relaxed atomic increment and one thread-local increment
/// per allocation.
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn record() {
        TOTAL.fetch_add(1, Ordering::Relaxed);
        // try_with: the TLS slot may already be gone during thread
        // teardown; losing those few counts is fine.
        let _ = LOCAL.try_with(|c| c.set(c.get() + 1));
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_observe_allocations() {
        let before_total = total_allocations();
        let before_local = thread_allocations();
        let v: Vec<u8> = Vec::with_capacity(128);
        assert!(v.capacity() >= 128);
        assert!(total_allocations() > before_total);
        assert!(thread_allocations() > before_local);
    }

    #[test]
    fn thread_counter_is_per_thread() {
        let before = thread_allocations();
        std::thread::spawn(|| {
            let v: Vec<u8> = Vec::with_capacity(4096);
            assert!(v.capacity() >= 4096);
            assert!(thread_allocations() > 0);
        })
        .join()
        .unwrap();
        // The spawned thread's allocations never land on this thread's
        // counter (other allocations on this thread may have).
        let v: Vec<u8> = Vec::with_capacity(64);
        drop(v);
        assert!(thread_allocations() > before);
    }
}
