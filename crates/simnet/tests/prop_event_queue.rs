//! Differential property test: the hierarchical timer wheel
//! ([`EventQueue`]) must pop the exact `(time, seq)` order of the
//! reference `BinaryHeap` queue ([`HeapEventQueue`]) on arbitrary
//! schedule sequences — including same-tick ties, far-future deadlines
//! that overflow the wheel, reschedules of the same deadline, and
//! deadlines in the (clamped) past. Campaign outputs are bit-for-bit
//! reproducible only if these two agree everywhere.

use doqlab_simnet::{EventQueue, HeapEventQueue, SimTime};
use proptest::prelude::*;

/// One step of a schedule: either push an event some gap after the
/// current clock, or pop (advancing the clock to the popped time).
#[derive(Debug, Clone)]
enum Op {
    /// Push at `clock + gap` (gaps chosen to exercise every wheel
    /// level, the overflow heap, and exact ties at the clock).
    Push {
        gap: u64,
    },
    /// Push the same deadline `burst` times — a reschedule storm, the
    /// pattern lazy wakeup re-arming produces.
    Reschedule {
        gap: u64,
        burst: u8,
    },
    /// Push strictly before the clock (clamped path).
    PushPast {
        back: u64,
    },
    Pop,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Weighted toward pushes so queues grow deep enough to span
        // multiple wheel levels at once.
        (0u64..64).prop_map(|gap| Op::Push { gap }),
        (0u64..4_096).prop_map(|gap| Op::Push { gap }),
        (0u64..1 << 36).prop_map(|gap| Op::Push { gap }),
        // Past the 2^36 ns wheel horizon: overflow heap.
        ((1u64 << 36)..1 << 39).prop_map(|gap| Op::Push { gap }),
        (0u64..4_096, 1u8..8).prop_map(|(gap, burst)| Op::Reschedule { gap, burst }),
        (1u64..1 << 20).prop_map(|back| Op::PushPast { back }),
        (1usize..4).prop_map(|_| Op::Pop),
        proptest::strategy::Just(Op::Pop),
    ]
}

proptest! {
    #[test]
    fn wheel_pops_in_exact_heap_order(ops in proptest::collection::vec(op(), 1..400)) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut clock = 0u64;
        let mut id = 0u32;
        let mut push = |wheel: &mut EventQueue<u32>,
                        heap: &mut HeapEventQueue<u32>,
                        t: u64| {
            wheel.push(SimTime::from_nanos(t), id);
            heap.push(SimTime::from_nanos(t), id);
            id += 1;
        };
        for op in &ops {
            match *op {
                Op::Push { gap } => push(&mut wheel, &mut heap, clock + gap),
                Op::Reschedule { gap, burst } => {
                    for _ in 0..burst {
                        push(&mut wheel, &mut heap, clock + gap);
                    }
                }
                Op::PushPast { back } => push(&mut wheel, &mut heap, clock.saturating_sub(back)),
                Op::Pop => {
                    let a = wheel.pop();
                    prop_assert_eq!(a, heap.pop());
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    if let Some((t, _)) = a {
                        clock = clock.max(t.as_nanos());
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain: every remaining event must come out in identical order.
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn wheel_matches_heap_after_clear_and_reuse(
        before in proptest::collection::vec(0u64..1 << 37, 0..50),
        after in proptest::collection::vec(0u64..1 << 37, 1..50),
    ) {
        // A cleared wheel must behave exactly like a fresh one — the
        // simulator reuses queue arenas across campaign units.
        let mut wheel = EventQueue::new();
        for (i, &t) in before.iter().enumerate() {
            wheel.push(SimTime::from_nanos(t), i as u32);
        }
        for _ in 0..before.len() / 2 {
            wheel.pop();
        }
        wheel.clear();
        let mut heap = HeapEventQueue::new();
        for (i, &t) in after.iter().enumerate() {
            wheel.push(SimTime::from_nanos(t), i as u32);
            heap.push(SimTime::from_nanos(t), i as u32);
        }
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
