//! Pins the steady-state allocation budget of the simulator hot path
//! at exactly zero.
//!
//! Only built under the `count-allocs` feature (which installs the
//! counting global allocator): once the timer wheel's slots, the
//! payload pool, and the dispatch out-buffer are warm, routing a packet
//! — pop event, deliver, host sends a reply, push event — must not
//! touch the allocator at all. A regression here (say, a `Vec<u8>`
//! payload sneaking back in, or the event queue allocating per push)
//! fails this test before it shows up as a throughput cliff in
//! `BENCH_*.json`.
//!
//! Run with:
//!
//! ```text
//! cargo test -p doqlab-simnet --features count-allocs --test zero_alloc_route
//! ```
#![cfg(feature = "count-allocs")]

use doqlab_simnet::path::FixedPathModel;
use doqlab_simnet::{
    alloc_count, Ctx, Duration, Host, Ipv4Addr, Packet, PayloadBuf, Simulator, SocketAddr,
};
use std::any::Any;

/// Returns every packet whence it came, reusing its pooled payload, so
/// a seeded burst of pings bounces between two hosts forever.
struct Bouncer;

impl Host for Bouncer {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        ctx.send(Packet::udp(pkt.dst, pkt.src, pkt.payload));
    }
    fn on_wakeup(&mut self, _ctx: &mut Ctx<'_>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn steady_state_routing_allocates_nothing() {
    let mut sim = Simulator::new(7, Box::new(FixedPathModel::new(Duration::from_millis(3))));
    let a = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 1), 40_000);
    let b = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 2), 7);
    let ha = sim.add_host(Box::new(Bouncer), &[a.ip]);
    sim.add_host(Box::new(Bouncer), &[b.ip]);
    // Front-load the wheel's one-time cold-slot growth: without this,
    // the first pass over each slot index allocates that slot's Vec.
    sim.warm_queue(8);
    sim.with_host::<Bouncer, _>(ha, |_, ctx| {
        for i in 0..8u8 {
            ctx.send(Packet::udp(a, b, PayloadBuf::from_slice(&[i; 100])));
        }
    });
    // Warm everything else the hot path touches: pooled payload
    // buffers, the reused dispatch out-buffer, metrics counters.
    assert_eq!(sim.run(2_000), 2_000);
    let before = alloc_count::thread_allocations();
    assert_eq!(sim.run(10_000), 10_000);
    let allocated = alloc_count::thread_allocations() - before;
    assert_eq!(
        allocated, 0,
        "steady-state routing hit the allocator {allocated} times over 10k events"
    );
}
