//! DNS-proxy behaviour tests: the connection-handling details §3.2 of
//! the paper traces back to (dnsproxy's DoT bug, DoTCP's
//! connection-per-query, session persistence across resets).

use doqlab_dnswire::{Message, RData};
use doqlab_dox::{ClientConfig, DnsTransport, ServerConfig};
use doqlab_resolver::{ip_for_domain, RecursionModel, ResolverHost};
use doqlab_simnet::path::FixedPathModel;
use doqlab_simnet::{Ctx, Duration, Host, Ipv4Addr, Packet, SimTime, Simulator, SocketAddr};
use doqlab_webperf::DnsProxy;
use std::any::Any;

const RESOLVER_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

/// Host wrapper that drives a bare proxy (no browser).
struct ProxyHost {
    proxy: DnsProxy,
    resolved: Vec<(String, Option<Ipv4Addr>)>,
}

impl Host for ProxyHost {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let mut out = Vec::new();
        self.proxy.on_packet(ctx.now, &pkt, &mut out);
        self.resolved.extend(self.proxy.take_resolved());
        for p in out {
            ctx.send(p);
        }
    }
    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = Vec::new();
        self.proxy.poll(ctx.now, &mut out);
        self.resolved.extend(self.proxy.take_resolved());
        for p in out {
            ctx.send(p);
        }
    }
    fn next_wakeup(&self) -> Option<SimTime> {
        self.proxy.next_timeout()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn setup(
    transport: DnsTransport,
    cfg: ClientConfig,
    dot_bug: bool,
    server: ServerConfig,
) -> (Simulator, usize) {
    let mut sim = Simulator::new(3, Box::new(FixedPathModel::new(Duration::from_millis(20))));
    sim.add_host(
        Box::new(ResolverHost::new(
            ServerConfig {
                ip: RESOLVER_IP,
                ..server
            },
            RecursionModel::default(),
        )),
        &[RESOLVER_IP],
    );
    let proxy = DnsProxy::new(
        CLIENT_IP,
        SocketAddr::new(RESOLVER_IP, transport.port()),
        transport,
        cfg,
        dot_bug,
    );
    let id = sim.add_host(
        Box::new(ProxyHost {
            proxy,
            resolved: Vec::new(),
        }),
        &[CLIENT_IP],
    );
    (sim, id)
}

fn resolve_batch(sim: &mut Simulator, id: usize, domains: &[&str]) {
    sim.with_host::<ProxyHost, _>(id, |h, ctx| {
        let mut out = Vec::new();
        for d in domains {
            h.proxy.resolve(ctx.now, ctx.rng, d, &mut out);
        }
        for p in out {
            ctx.send(p);
        }
    });
    let deadline = sim.now() + Duration::from_secs(10);
    sim.run_until(deadline);
}

#[test]
fn resolves_and_returns_the_deterministic_address() {
    let (mut sim, id) = setup(
        DnsTransport::DoUdp,
        ClientConfig::default(),
        true,
        ServerConfig::default(),
    );
    resolve_batch(&mut sim, id, &["www.example.org"]);
    let host = sim.host::<ProxyHost>(id);
    assert_eq!(host.resolved.len(), 1);
    let (domain, ip) = &host.resolved[0];
    assert_eq!(domain, "www.example.org");
    assert_eq!(*ip, Some(ip_for_domain("www.example.org")));
}

#[test]
fn dot_bug_opens_second_connection_for_concurrent_queries() {
    let (mut sim, id) = setup(
        DnsTransport::DoT,
        ClientConfig::default(),
        true,
        ServerConfig::default(),
    );
    resolve_batch(&mut sim, id, &["a.example", "b.example", "c.example"]);
    let host = sim.host::<ProxyHost>(id);
    assert_eq!(host.resolved.len(), 3);
    assert!(
        host.proxy.connections_opened >= 2,
        "in-flight queries must trigger reconnects, got {}",
        host.proxy.connections_opened
    );
}

#[test]
fn dot_fix_reuses_one_connection() {
    let (mut sim, id) = setup(
        DnsTransport::DoT,
        ClientConfig::default(),
        false, // upstreamed fix
        ServerConfig::default(),
    );
    resolve_batch(&mut sim, id, &["a.example", "b.example", "c.example"]);
    let host = sim.host::<ProxyHost>(id);
    assert_eq!(host.resolved.len(), 3);
    assert_eq!(host.proxy.connections_opened, 1);
}

#[test]
fn dotcp_opens_one_connection_per_query() {
    let (mut sim, id) = setup(
        DnsTransport::DoTcp,
        ClientConfig::default(),
        true,
        ServerConfig::default(),
    );
    resolve_batch(&mut sim, id, &["a.example", "b.example", "c.example"]);
    let host = sim.host::<ProxyHost>(id);
    assert_eq!(host.resolved.len(), 3);
    assert_eq!(host.proxy.connections_opened, 3);
}

#[test]
fn rfc9210_dotcp_reuses_the_connection() {
    let cfg = ClientConfig {
        request_tcp_keepalive: true,
        ..ClientConfig::default()
    };
    let server = ServerConfig {
        tcp_keepalive: true,
        close_tcp_after_response: false,
        ..ServerConfig::default()
    };
    let (mut sim, id) = setup(DnsTransport::DoTcp, cfg, true, server);
    resolve_batch(&mut sim, id, &["a.example", "b.example", "c.example"]);
    let host = sim.host::<ProxyHost>(id);
    assert_eq!(host.resolved.len(), 3);
    assert_eq!(host.proxy.connections_opened, 1);
}

#[test]
fn doq_multiplexes_on_one_connection() {
    let (mut sim, id) = setup(
        DnsTransport::DoQ,
        ClientConfig::default(),
        true,
        ServerConfig::default(),
    );
    resolve_batch(
        &mut sim,
        id,
        &["a.example", "b.example", "c.example", "d.example"],
    );
    let host = sim.host::<ProxyHost>(id);
    assert_eq!(host.resolved.len(), 4);
    assert_eq!(host.proxy.connections_opened, 1);
}

#[test]
fn session_material_survives_reset() {
    let (mut sim, id) = setup(
        DnsTransport::DoQ,
        ClientConfig::default(),
        true,
        ServerConfig::default(),
    );
    resolve_batch(&mut sim, id, &["warm.example"]);
    sim.with_host::<ProxyHost, _>(id, |h, _ctx| {
        assert!(h.proxy.session.tls_ticket.is_some(), "ticket captured");
        assert!(h.proxy.session.quic_token.is_some(), "token captured");
        h.proxy.reset_sessions();
        assert!(h.proxy.session.tls_ticket.is_some(), "reset keeps tickets");
    });
    // A post-reset lookup opens a new (resumed) connection and works.
    resolve_batch(&mut sim, id, &["measured.example"]);
    let host = sim.host::<ProxyHost>(id);
    assert_eq!(host.resolved.len(), 2);
    assert_eq!(host.proxy.connections_opened, 2);
}

#[test]
fn nxdomain_like_failures_surface_as_none() {
    // TXT-only name: the resolver answers NXDOMAIN for A of a name with
    // no synthesized records -- our synthetic authority answers every
    // A query, so emulate failure via an unsupported-transport timeout
    // instead: resolver without UDP support.
    let server = ServerConfig {
        supports_udp: false,
        ..ServerConfig::default()
    };
    let cfg = ClientConfig {
        udp_retry_timeout: std::time::Duration::from_millis(300),
        udp_max_retries: 1,
        ..ClientConfig::default()
    };
    let (mut sim, id) = setup(DnsTransport::DoUdp, cfg, true, server);
    resolve_batch(&mut sim, id, &["dead.example"]);
    let host = sim.host::<ProxyHost>(id);
    // No response at all: the lookup never completes (the browser's
    // failure handling sits above the proxy).
    assert!(host.resolved.is_empty());
    assert!(host.proxy.any_failed());
}

#[test]
fn responses_decode_a_records_only() {
    // The deterministic authority also serves AAAA; the proxy's A-record
    // extraction must pick the IPv4 answer.
    let (mut sim, id) = setup(
        DnsTransport::DoUdp,
        ClientConfig::default(),
        true,
        ServerConfig::default(),
    );
    resolve_batch(&mut sim, id, &["v4.example"]);
    let host = sim.host::<ProxyHost>(id);
    let (_, ip) = &host.resolved[0];
    assert!(ip.is_some());
    // Cross-check against the wire answer.
    let q = doqlab_dnswire::Question::new(
        doqlab_dnswire::Name::parse("v4.example").unwrap(),
        doqlab_dnswire::RecordType::A,
    );
    let auth = doqlab_resolver::authoritative_answer(&q);
    match &auth[0].rdata {
        RData::A(o) => assert_eq!(ip.unwrap().octets(), *o),
        other => panic!("expected A record, got {other:?}"),
    }
    let _ = Message::decode(&[]); // keep the dnswire import exercised
}
