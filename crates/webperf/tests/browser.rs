//! Browser-model tests: FCP/PLT semantics, dependency-driven
//! discovery, DNS de-duplication, failure handling.

use doqlab_dox::DnsTransport;
use doqlab_simnet::Duration;
use doqlab_webperf::page::{PageProfile, Resource};
use doqlab_webperf::{run_page_load, tranco_top10, PageLoadConfig};

fn tiny_page(domains: &[&str], blocking: usize) -> PageProfile {
    let mut resources = Vec::new();
    resources.push(Resource {
        id: 0,
        domain: domains[0].to_string(),
        path: "/".to_string(),
        size: 10_000,
        render_blocking: true,
        discovered_by: None,
    });
    for (i, d) in domains.iter().enumerate().skip(1) {
        resources.push(Resource {
            id: i,
            domain: d.to_string(),
            path: format!("/r{i}"),
            size: 5_000,
            render_blocking: i <= blocking,
            discovered_by: Some(0),
        });
    }
    PageProfile {
        name: "test.page".to_string(),
        resources,
        render_ms: 100,
        onload_ms: 200,
    }
}

fn load(page: PageProfile, transport: DnsTransport) -> doqlab_webperf::PageLoadResult {
    let cfg = PageLoadConfig {
        seed: 5,
        ..PageLoadConfig::new(page, transport)
    };
    run_page_load(&cfg)[0]
}

#[test]
fn fcp_precedes_plt_and_both_include_compute_budgets() {
    let page = tiny_page(&["www.a.test", "cdn.b.test", "img.c.test"], 1);
    let r = load(page, DnsTransport::DoUdp);
    assert!(!r.failed);
    assert!(r.fcp_ms >= 100.0, "render budget floors FCP: {r:?}");
    assert!(r.plt_ms >= r.fcp_ms);
    assert!(r.plt_ms >= 200.0);
}

#[test]
fn dns_queries_equal_unique_domains() {
    let page = tiny_page(&["www.a.test", "cdn.b.test", "www.a.test", "img.c.test"], 0);
    let r = load(page, DnsTransport::DoQ);
    assert!(!r.failed);
    assert_eq!(r.dns_queries, 3, "duplicate domains are de-duplicated");
}

#[test]
fn fewer_blocking_resources_means_earlier_fcp() {
    let blocking_heavy = tiny_page(&["www.a.test", "b.test", "c.test", "d.test"], 3);
    let blocking_light = tiny_page(&["www.a.test", "b.test", "c.test", "d.test"], 0);
    let heavy = load(blocking_heavy, DnsTransport::DoUdp);
    let light = load(blocking_light, DnsTransport::DoUdp);
    assert!(!heavy.failed && !light.failed);
    assert!(
        light.fcp_ms <= heavy.fcp_ms,
        "light {} vs heavy {}",
        light.fcp_ms,
        heavy.fcp_ms
    );
    // PLT is resource-bound either way: roughly equal.
    assert!((light.plt_ms - heavy.plt_ms).abs() < light.plt_ms * 0.2);
}

#[test]
fn deeper_dependency_chains_load_later() {
    // Chain: root reveals r1, r1 reveals r2 (on a third domain whose
    // DNS is only issued after r1 completes).
    let mut page = tiny_page(&["www.a.test", "b.test"], 0);
    page.resources.push(Resource {
        id: 2,
        domain: "late.c.test".to_string(),
        path: "/r2".to_string(),
        size: 2_000,
        render_blocking: false,
        discovered_by: Some(1),
    });
    let chained = load(page, DnsTransport::DoQ);
    let flat = load(
        tiny_page(&["www.a.test", "b.test", "late.c.test"], 0),
        DnsTransport::DoQ,
    );
    assert!(!chained.failed && !flat.failed);
    assert!(
        chained.plt_ms > flat.plt_ms,
        "chained {} vs flat {}",
        chained.plt_ms,
        flat.plt_ms
    );
}

#[test]
fn all_tranco_pages_load_over_all_six_transports() {
    for page in tranco_top10().into_iter().step_by(4) {
        for transport in [
            DnsTransport::DoUdp,
            DnsTransport::DoTcp,
            DnsTransport::DoT,
            DnsTransport::DoH,
            DnsTransport::DoQ,
        ] {
            let r = load(page.clone(), transport);
            assert!(!r.failed, "{} over {transport}", page.name);
        }
    }
}

#[test]
fn doh3_page_load_works_against_an_upgraded_resolver() {
    let page = tranco_top10().remove(0);
    let mut cfg = PageLoadConfig::new(page, DnsTransport::DoH3);
    cfg.seed = 5;
    cfg.resolver.supports_doh3 = true;
    let r = run_page_load(&cfg)[0];
    assert!(!r.failed, "{r:?}");
    assert_eq!(r.dns_queries, 1);
}

#[test]
fn unresolvable_page_fails_within_the_timeout() {
    let page = tiny_page(&["www.a.test"], 0);
    let mut cfg = PageLoadConfig::new(page, DnsTransport::DoUdp);
    cfg.seed = 5;
    cfg.resolver.supports_udp = false; // resolver silent on UDP
    cfg.load_timeout = Duration::from_secs(20);
    let r = run_page_load(&cfg)[0];
    assert!(r.failed);
    assert!(r.fcp_ms.is_nan());
}
