//! Simulated origin web servers: HTTP/2 over TLS over TCP on port 443,
//! serving the resources of one or more domains from a path->size map.

use doqlab_netstack::http2::H2Connection;
use doqlab_netstack::tcp::{TcpConfig, TcpListener, TcpSegment};
use doqlab_netstack::tls::{TlsConfig, TlsServer};
use doqlab_simnet::{Ctx, Duration, Host, Ipv4Addr, Packet, SimTime, SocketAddr};
use std::any::Any;
use std::collections::HashMap;

/// Server processing time before the first response byte (TTFB minus
/// network). Identical across DNS protocols; it stretches page loads to
/// realistic durations, which is what makes the *relative* DNS impact
/// match the paper's.
pub const SERVER_THINK_TIME: Duration = Duration::from_millis(35);

#[derive(Debug)]
struct OriginConn {
    tls: TlsServer,
    h2: H2Connection,
}

/// An origin server host.
pub struct OriginHost {
    ip: Ipv4Addr,
    listener: TcpListener,
    conns: HashMap<SocketAddr, OriginConn>,
    /// path -> body size.
    sizes: HashMap<String, usize>,
    tls_cfg: TlsConfig,
    pub requests_served: u64,
    /// Responses waiting out the think time: (due, peer, stream, size).
    pending: Vec<(SimTime, SocketAddr, u32, usize)>,
}

impl OriginHost {
    pub fn new(ip: Ipv4Addr, server_id: u64, sizes: HashMap<String, usize>) -> Self {
        OriginHost {
            ip,
            listener: TcpListener::new(SocketAddr::new(ip, 443), TcpConfig::default()),
            conns: HashMap::new(),
            sizes,
            tls_cfg: TlsConfig {
                server_id,
                alpn: vec![b"h2".to_vec()],
                // Typical web certificate chain.
                cert_chain_len: 3000,
                ..TlsConfig::default()
            },
            requests_served: 0,
            pending: Vec::new(),
        }
    }

    fn pump(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        // Release responses whose think time elapsed.
        let mut due = Vec::new();
        self.pending.retain(|(t, peer, stream, size)| {
            if *t <= now {
                due.push((*peer, *stream, *size));
                false
            } else {
                true
            }
        });
        for (peer, stream, size) in due {
            if let Some(conn) = self.conns.get_mut(&peer) {
                let body = vec![0u8; size];
                let len = body.len().to_string();
                let headers = [
                    (":status", "200"),
                    ("content-type", "text/html"),
                    ("content-length", len.as_str()),
                    ("cache-control", "max-age=600"),
                ];
                conn.h2.send_response(stream, &headers, &body);
                if let Some(sock) = self.listener.connection(peer) {
                    let h2_out = conn.h2.take_output();
                    if !h2_out.is_empty() {
                        conn.tls.write_app(&h2_out);
                    }
                    let wire = conn.tls.take_output();
                    if !wire.is_empty() {
                        sock.send(&wire);
                    }
                }
            }
        }
        for (&peer, sock) in self.listener.connections() {
            let conn = self.conns.entry(peer).or_insert_with(|| OriginConn {
                tls: TlsServer::new(self.tls_cfg.clone()),
                h2: H2Connection::server(),
            });
            let data = sock.recv();
            if !data.is_empty() {
                conn.tls.read_wire(now, &data);
            }
            let plain = conn.tls.read_app();
            if !plain.is_empty() {
                conn.h2.read_wire(&plain);
            }
            for req in conn.h2.take_messages() {
                self.requests_served += 1;
                let path = req.header(":path").unwrap_or("/").to_string();
                let size = self.sizes.get(&path).copied().unwrap_or(1024);
                self.pending
                    .push((now + SERVER_THINK_TIME, peer, req.stream_id, size));
            }
            let h2_out = conn.h2.take_output();
            if !h2_out.is_empty() {
                conn.tls.write_app(&h2_out);
            }
            let wire = conn.tls.take_output();
            if !wire.is_empty() {
                sock.send(&wire);
            }
        }
        for (peer, seg) in self.listener.poll(now) {
            out.push(Packet::tcp(
                SocketAddr::new(self.ip, 443),
                peer,
                seg.encode_payload(),
            ));
        }
    }
}

impl OriginHost {
    /// Debug: one line per TCP connection.
    pub fn debug_conns(&mut self) -> Vec<String> {
        self.listener
            .connections()
            .map(|(peer, sock)| {
                format!(
                    "{peer}: {:?} est={} outstanding={} next_to={:?}",
                    sock.state(),
                    sock.is_established(),
                    sock.tx_outstanding(),
                    sock.next_timeout()
                )
            })
            .collect()
    }
}

impl Host for OriginHost {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if pkt.dst.port == 443 {
            if let Some(seg) = TcpSegment::decode(&pkt.payload) {
                self.listener.on_segment(ctx.now, pkt.src, &seg);
            }
        }
        let mut out = Vec::new();
        self.pump(ctx.now, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = Vec::new();
        self.pump(ctx.now, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        let pending = self.pending.iter().map(|(t, _, _, _)| *t).min();
        match (pending, self.listener.next_timeout()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::HttpsClientConn;
    use doqlab_simnet::path::FixedPathModel;
    use doqlab_simnet::{Duration, Simulator};

    /// Client host wrapping one HttpsClientConn, for tests.
    struct ClientHost {
        conn: HttpsClientConn,
    }

    impl Host for ClientHost {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            let mut out = Vec::new();
            self.conn.on_packet(ctx.now, &pkt, &mut out);
            for p in out {
                ctx.send(p);
            }
        }
        fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
            let mut out = Vec::new();
            self.conn.poll(ctx.now, &mut out);
            for p in out {
                ctx.send(p);
            }
        }
        fn next_wakeup(&self) -> Option<SimTime> {
            self.conn.next_timeout()
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn fetch_two_resources_over_one_connection() {
        let origin_ip = Ipv4Addr::new(198, 51, 100, 1);
        let client_ip = Ipv4Addr::new(10, 0, 0, 1);
        let mut sim = Simulator::new(3, Box::new(FixedPathModel::new(Duration::from_millis(10))));
        let mut sizes = HashMap::new();
        sizes.insert("/".to_string(), 10_000);
        sizes.insert("/app.js".to_string(), 50_000);
        sim.add_host(Box::new(OriginHost::new(origin_ip, 9, sizes)), &[origin_ip]);
        let mut conn = HttpsClientConn::new(
            SocketAddr::new(client_ip, 40_000),
            SocketAddr::new(origin_ip, 443),
            "www.example.com",
        );
        conn.request(0, "/");
        conn.request(1, "/app.js");
        let cid = sim.add_host(Box::new(ClientHost { conn }), &[client_ip]);
        sim.with_host::<ClientHost, _>(cid, |c, ctx| {
            let mut out = Vec::new();
            c.conn.start(ctx.now, &mut out);
            for p in out {
                ctx.send(p);
            }
        });
        sim.run_until(SimTime::from_secs(10));
        let client = sim.host_mut::<ClientHost>(cid);
        let mut done = client.conn.take_completed();
        done.sort_by_key(|f| f.resource_id);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].body_len, 10_000);
        assert_eq!(done[1].body_len, 50_000);
        // TCP (1 RTT) + TLS (1 RTT) + request (1 RTT) + transfer time.
        assert!(done[0].at >= SimTime::from_millis(60));
        assert!(done[1].at < SimTime::from_secs(2));
    }

    #[test]
    fn unknown_path_gets_default_size() {
        let origin_ip = Ipv4Addr::new(198, 51, 100, 1);
        let client_ip = Ipv4Addr::new(10, 0, 0, 1);
        let mut sim = Simulator::new(3, Box::new(FixedPathModel::new(Duration::from_millis(5))));
        sim.add_host(
            Box::new(OriginHost::new(origin_ip, 9, HashMap::new())),
            &[origin_ip],
        );
        let mut conn = HttpsClientConn::new(
            SocketAddr::new(client_ip, 40_000),
            SocketAddr::new(origin_ip, 443),
            "x",
        );
        conn.request(7, "/whatever");
        let cid = sim.add_host(Box::new(ClientHost { conn }), &[client_ip]);
        sim.with_host::<ClientHost, _>(cid, |c, ctx| {
            let mut out = Vec::new();
            c.conn.start(ctx.now, &mut out);
            for p in out {
                ctx.send(p);
            }
        });
        sim.run_until(SimTime::from_secs(5));
        let done = sim.host_mut::<ClientHost>(cid).conn.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].body_len, 1024);
        assert_eq!(done[0].resource_id, 7);
    }
}
