//! Webpage profiles.
//!
//! Each page is a dependency graph of resources across one or more
//! domains. The study loads the Tranco top-10 (April 2022) landing
//! pages; Fig. 4 orders them by the average number of DNS queries per
//! load, from `wikipedia.org` and `instagram.com` (1 — a bare login /
//! search form) to `microsoft.com` and `youtube.com` (many embedded
//! domains). The exact query counts per page are not tabulated in the
//! paper, so the profiles here use plausible per-page domain counts
//! that preserve the figure's ordering; resource sizes are scaled-down
//! but proportionate (DESIGN.md documents the substitution).

use serde::Serialize;

/// One fetchable resource.
#[derive(Debug, Clone, Serialize)]
pub struct Resource {
    /// Index within the page.
    pub id: usize,
    pub domain: String,
    /// Request path.
    pub path: String,
    /// Response body size in bytes.
    pub size: usize,
    /// Blocks first paint (HTML, synchronous CSS/JS in head).
    pub render_blocking: bool,
    /// Resource that must complete before this one is discovered
    /// (`None` = the navigation itself, i.e. the root document).
    pub discovered_by: Option<usize>,
}

/// A page profile.
#[derive(Debug, Clone, Serialize)]
pub struct PageProfile {
    /// Landing-page name as in Fig. 4 (already the post-redirect page,
    /// per the paper's methodology).
    pub name: String,
    pub resources: Vec<Resource>,
    /// Parse/style/layout time between the last render-blocking byte
    /// and first paint (Chromium main-thread work), ms.
    pub render_ms: u64,
    /// Script execution / layout work between the last resource and the
    /// load event, ms.
    pub onload_ms: u64,
}

impl PageProfile {
    /// Unique domains = DNS queries per cold load (the browser
    /// de-duplicates within a navigation).
    pub fn unique_domains(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for r in &self.resources {
            if !seen.contains(&r.domain) {
                seen.push(r.domain.clone());
            }
        }
        seen
    }

    pub fn dns_query_count(&self) -> usize {
        self.unique_domains().len()
    }

    pub fn total_bytes(&self) -> usize {
        self.resources.iter().map(|r| r.size).sum()
    }
}

/// Builder used by the profile table below.
struct PageBuilder {
    name: String,
    resources: Vec<Resource>,
    render_ms: u64,
    onload_ms: u64,
}

impl PageBuilder {
    fn new(name: &str, render_ms: u64, onload_ms: u64) -> Self {
        PageBuilder {
            name: name.to_string(),
            resources: Vec::new(),
            render_ms,
            onload_ms,
        }
    }

    fn add(
        &mut self,
        domain: &str,
        path: &str,
        size: usize,
        render_blocking: bool,
        discovered_by: Option<usize>,
    ) -> usize {
        let id = self.resources.len();
        self.resources.push(Resource {
            id,
            domain: domain.to_string(),
            path: path.to_string(),
            size,
            render_blocking,
            discovered_by,
        });
        id
    }

    /// Root document.
    fn root(&mut self, domain: &str, size: usize) -> usize {
        self.add(domain, "/", size, true, None)
    }

    /// `n` subresources on `domain`, revealed by `parent`.
    fn bundle(
        &mut self,
        domain: &str,
        parent: usize,
        n: usize,
        each_size: usize,
        render_blocking: bool,
    ) {
        for _ in 0..n {
            // Paths are unique per resource id so that two domains that
            // happen to share an origin IP never collide.
            let path = format!("/r{}", self.resources.len());
            self.add(domain, &path, each_size, render_blocking, Some(parent));
        }
    }

    fn build(self) -> PageProfile {
        PageProfile {
            name: self.name,
            resources: self.resources,
            render_ms: self.render_ms,
            onload_ms: self.onload_ms,
        }
    }
}

/// The Tranco top-10 profiles, in Fig. 4 order (ascending DNS queries).
pub fn tranco_top10() -> Vec<PageProfile> {
    let mut pages = Vec::new();

    // wikipedia.org — portal page: one domain, tiny. (1 query)
    let mut p = PageBuilder::new("wikipedia.org", 900, 2000);
    let root = p.root("www.wikipedia.org", 18_000);
    p.bundle("www.wikipedia.org", root, 2, 12_000, true); // css/js
    p.bundle("www.wikipedia.org", root, 3, 8_000, false); // logo, sprites
    pages.push(p.build());

    // instagram.com — login form: one domain. (1 query)
    let mut p = PageBuilder::new("instagram.com", 950, 2100);
    let root = p.root("www.instagram.com", 22_000);
    p.bundle("www.instagram.com", root, 3, 30_000, true);
    p.bundle("www.instagram.com", root, 2, 15_000, false);
    pages.push(p.build());

    // google.com — search form + static CDN. (2 queries)
    let mut p = PageBuilder::new("google.com", 1000, 2200);
    let root = p.root("www.google.com", 50_000);
    p.bundle("www.google.com", root, 2, 25_000, true);
    p.bundle("www.gstatic.com", root, 3, 20_000, false);
    pages.push(p.build());

    // linkedin.com — login page + CDN. (3 queries)
    let mut p = PageBuilder::new("linkedin.com", 1050, 2400);
    let root = p.root("www.linkedin.com", 30_000);
    p.bundle("static.licdn.com", root, 3, 25_000, true);
    p.bundle("static.licdn.com", root, 3, 12_000, false);
    p.bundle("media.licdn.com", root, 2, 18_000, false);
    pages.push(p.build());

    // twitter.com. (4 queries)
    let mut p = PageBuilder::new("twitter.com", 1100, 2600);
    let root = p.root("twitter.com", 40_000);
    p.bundle("abs.twimg.com", root, 4, 30_000, true);
    p.bundle("pbs.twimg.com", root, 4, 20_000, false);
    let js = p.resources[1].id;
    p.bundle("api.twitter.com", js, 2, 4_000, false);
    pages.push(p.build());

    // apple.com. (5 queries)
    let mut p = PageBuilder::new("apple.com", 1150, 2700);
    let root = p.root("www.apple.com", 60_000);
    p.bundle("www.apple.com", root, 3, 20_000, true);
    p.bundle("store.storeimages.cdn-apple.com", root, 5, 35_000, false);
    p.bundle("is1-ssl.mzstatic.com", root, 3, 25_000, false);
    let js = p.resources[1].id;
    p.bundle("metrics.apple.com", js, 1, 3_000, false);
    p.bundle("securemetrics.apple.com", js, 1, 3_000, false);
    pages.push(p.build());

    // netflix.com. (6 queries)
    let mut p = PageBuilder::new("netflix.com", 1200, 2900);
    let root = p.root("www.netflix.com", 70_000);
    p.bundle("assets.nflxext.com", root, 4, 30_000, true);
    p.bundle("occ-0-posters.nflxso.net", root, 6, 25_000, false);
    let js = p.resources[1].id;
    p.bundle("customerevents.netflix.com", js, 1, 2_000, false);
    p.bundle("ichnaea.netflix.com", js, 1, 2_000, false);
    p.bundle("codex.nflxext.com", js, 2, 10_000, false);
    pages.push(p.build());

    // facebook.com. (7 queries)
    let mut p = PageBuilder::new("facebook.com", 1250, 3000);
    let root = p.root("www.facebook.com", 55_000);
    p.bundle("static.xx.fbcdn.net", root, 5, 28_000, true);
    p.bundle("scontent.xx.fbcdn.net", root, 5, 22_000, false);
    let js = p.resources[1].id;
    p.bundle("connect.facebook.net", js, 1, 8_000, false);
    p.bundle("graph.facebook.com", js, 1, 2_000, false);
    p.bundle("edge-chat.facebook.com", js, 1, 2_000, false);
    p.bundle("video.xx.fbcdn.net", js, 2, 30_000, false);
    pages.push(p.build());

    // microsoft.com. (9 queries)
    let mut p = PageBuilder::new("microsoft.com", 1300, 3200);
    let root = p.root("www.microsoft.com", 65_000);
    p.bundle("www.microsoft.com", root, 2, 22_000, true);
    p.bundle(
        "statics-marketingsites-wcus-ms-com.akamaized.net",
        root,
        4,
        25_000,
        true,
    );
    p.bundle(
        "img-prod-cms-rt-microsoft-com.akamaized.net",
        root,
        6,
        20_000,
        false,
    );
    let js = p.resources[1].id;
    for (d, n) in [
        ("c.s-microsoft.com", 2usize),
        ("js.monitor.azure.com", 1),
        ("web.vortex.data.microsoft.com", 1),
        ("mem.gfx.ms", 1),
        ("c1.microsoft.com", 1),
        ("browser.events.data.msn.com", 1),
        ("login.microsoftonline.com", 1),
    ] {
        p.bundle(d, js, n, 5_000, false);
    }
    pages.push(p.build());

    // youtube.com. (11 queries)
    let mut p = PageBuilder::new("youtube.com", 1400, 3500);
    let root = p.root("www.youtube.com", 80_000);
    p.bundle("www.youtube.com", root, 2, 40_000, true);
    p.bundle("www.gstatic.com", root, 2, 15_000, true);
    p.bundle("i.ytimg.com", root, 8, 18_000, false);
    p.bundle("yt3.ggpht.com", root, 6, 8_000, false);
    let js = p.resources[1].id;
    for d in [
        "fonts.googleapis.com",
        "fonts.gstatic.com",
        "accounts.google.com",
        "play.google.com",
        "googleads.g.doubleclick.net",
        "static.doubleclick.net",
        "www.google.com",
    ] {
        p.bundle(d, js, 1, 4_000, false);
    }
    pages.push(p.build());

    pages
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_pages_in_fig4_order() {
        let pages = tranco_top10();
        assert_eq!(pages.len(), 10);
        let counts: Vec<usize> = pages.iter().map(|p| p.dns_query_count()).collect();
        // Ascending DNS-query ordering (non-strict), 1 to 11.
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(*counts.last().unwrap(), 11);
    }

    #[test]
    fn named_pages_match_paper_anchors() {
        let pages = tranco_top10();
        assert_eq!(pages[0].name, "wikipedia.org");
        assert_eq!(pages[1].name, "instagram.com");
        assert_eq!(pages[8].name, "microsoft.com");
        assert_eq!(pages[9].name, "youtube.com");
    }

    #[test]
    fn roots_are_render_blocking_and_undiscovered() {
        for p in tranco_top10() {
            let root = &p.resources[0];
            assert!(root.render_blocking, "{}", p.name);
            assert!(root.discovered_by.is_none());
            // All other resources trace back to an earlier resource.
            for r in &p.resources[1..] {
                let parent = r.discovered_by.expect("non-root has a parent");
                assert!(parent < r.id);
            }
        }
    }

    #[test]
    fn simple_pages_are_much_smaller_than_complex_ones() {
        let pages = tranco_top10();
        assert!(pages[0].total_bytes() * 3 < pages[9].total_bytes());
    }

    #[test]
    fn every_page_has_render_blocking_subresources() {
        for p in tranco_top10() {
            assert!(
                p.resources.iter().filter(|r| r.render_blocking).count() >= 2,
                "{}",
                p.name
            );
        }
    }
}
