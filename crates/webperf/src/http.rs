//! The browser-side HTTPS (HTTP/2 over TLS over TCP) client
//! connection, one per origin, multiplexing all of that origin's
//! resource fetches — like Chromium does.

use doqlab_netstack::http2::H2Connection;
use doqlab_netstack::tcp::{TcpConfig, TcpSegment, TcpSocket};
use doqlab_netstack::tls::{TlsClient, TlsConfig};
use doqlab_simnet::{Packet, SimTime, SocketAddr};
use std::collections::HashMap;

/// A completed fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchDone {
    pub resource_id: usize,
    pub at: SimTime,
    pub body_len: usize,
}

/// One origin connection.
#[derive(Debug)]
pub struct HttpsClientConn {
    tcp: TcpSocket,
    tls: TlsClient,
    tls_started: bool,
    h2: H2Connection,
    authority: String,
    queued: Vec<(usize, String)>,
    by_stream: HashMap<u32, usize>,
    completed: Vec<FetchDone>,
}

impl HttpsClientConn {
    pub fn new(local: SocketAddr, remote: SocketAddr, authority: &str) -> Self {
        let tls_cfg = TlsConfig {
            alpn: vec![b"h2".to_vec()],
            ..TlsConfig::default()
        };
        HttpsClientConn {
            tcp: TcpSocket::client(local, remote, 0, TcpConfig::default()),
            tls: TlsClient::new(tls_cfg, None),
            tls_started: false,
            h2: H2Connection::client(),
            authority: authority.to_string(),
            queued: Vec::new(),
            by_stream: HashMap::new(),
            completed: Vec::new(),
        }
    }

    pub fn local(&self) -> SocketAddr {
        self.tcp.local
    }

    pub fn start(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.tcp.open(now);
        self.pump(now, out);
    }

    /// Fetch `path` for `resource_id`; sent once the connection is up.
    pub fn request(&mut self, resource_id: usize, path: &str) {
        if self.tls.is_connected() {
            self.send_get(resource_id, path);
        } else {
            self.queued.push((resource_id, path.to_string()));
        }
    }

    fn send_get(&mut self, resource_id: usize, path: &str) {
        let headers = [
            (":method", "GET"),
            (":scheme", "https"),
            (":authority", self.authority.as_str()),
            (":path", path),
            ("accept", "*/*"),
            ("accept-encoding", "gzip, deflate, br"),
            ("user-agent", "doqlab-chromium/100.0"),
        ];
        let stream = self.h2.send_request(&headers, b"");
        self.by_stream.insert(stream, resource_id);
    }

    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet, out: &mut Vec<Packet>) {
        if let Some(seg) = TcpSegment::decode(&pkt.payload) {
            self.tcp.on_segment(now, &seg);
        }
        self.pump(now, out);
    }

    pub fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.pump(now, out);
    }

    fn pump(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        if self.tcp.is_established() && !self.tls_started {
            self.tls_started = true;
            self.tls.start(now);
        }
        if self.tls.is_connected() && !self.queued.is_empty() {
            for (id, path) in std::mem::take(&mut self.queued) {
                self.send_get(id, &path);
            }
        }
        let data = self.tcp.recv();
        if !data.is_empty() {
            self.tls.read_wire(now, &data);
        }
        let plain = self.tls.read_app();
        if !plain.is_empty() {
            self.h2.read_wire(&plain);
        }
        for msg in self.h2.take_messages() {
            if let Some(id) = self.by_stream.remove(&msg.stream_id) {
                self.completed.push(FetchDone {
                    resource_id: id,
                    at: now,
                    body_len: msg.body.len(),
                });
            }
        }
        let h2_out = self.h2.take_output();
        if !h2_out.is_empty() {
            self.tls.write_app(&h2_out);
        }
        let wire = self.tls.take_output();
        if !wire.is_empty() {
            self.tcp.send(&wire);
        }
        for seg in self.tcp.poll(now) {
            out.push(Packet::tcp(
                self.tcp.local,
                self.tcp.remote,
                seg.encode_payload(),
            ));
        }
    }

    pub fn take_completed(&mut self) -> Vec<FetchDone> {
        std::mem::take(&mut self.completed)
    }

    pub fn next_timeout(&self) -> Option<SimTime> {
        self.tcp.next_timeout()
    }

    pub fn failed(&self) -> bool {
        self.tcp.is_reset() || self.tls.error().is_some()
    }

    /// One-line diagnostic summary.
    pub fn debug_summary(&self) -> String {
        format!(
            "tcp={:?} est={} reset={} tls={} tls_err={:?} outstanding={} next_to={:?}",
            self.tcp.state(),
            self.tcp.is_established(),
            self.tcp.is_reset(),
            self.tls.is_connected(),
            self.tls.error(),
            self.tcp.tx_outstanding(),
            self.tcp.next_timeout(),
        )
    }
}
