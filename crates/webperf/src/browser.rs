//! The browser model: a Chromium-like page loader.
//!
//! One navigation = resolve domains through the local [`DnsProxy`]
//! (deduplicated per navigation, like Chromium's host cache), open one
//! HTTP/2 connection per origin, fetch resources as the dependency
//! graph reveals them, and record:
//!
//! * **FCP** — when the root document and every render-blocking
//!   resource have arrived, plus a fixed render delay;
//! * **PLT** — `LoadEventStart - NavigationStart`: when every resource
//!   of the page has arrived, plus a fixed event-dispatch delay.

use crate::http::HttpsClientConn;
use crate::page::PageProfile;
use crate::proxy::DnsProxy;
use doqlab_resolver::ip_for_domain;
use doqlab_simnet::{Ctx, Duration, Host, Ipv4Addr, Packet, SimTime, SocketAddr};
use std::any::Any;
use std::collections::HashMap;

// Render and onload main-thread work come from the page profile
// (identical across DNS protocols, so they only scale the *relative*
// impact of DNS — exactly the amortization effect §3.2 describes).

/// Outcome of one navigation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageLoadResult {
    /// First Contentful Paint, ms from navigation start.
    pub fcp_ms: f64,
    /// Page Load Time, ms from navigation start.
    pub plt_ms: f64,
    /// Upstream DNS queries issued.
    pub dns_queries: u32,
    /// Upstream connections the proxy opened (DoT-bug observability).
    pub proxy_connections: u32,
    pub failed: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ResourceState {
    Undiscovered,
    /// Waiting on DNS for its domain.
    WaitingDns,
    /// Requested on an origin connection.
    Requested,
    Done,
}

struct OriginConn {
    conn: HttpsClientConn,
    port: u16,
}

/// The browser + proxy, as one simulator host (they share a machine).
pub struct BrowserHost {
    ip: Ipv4Addr,
    page: PageProfile,
    pub proxy: DnsProxy,
    states: Vec<ResourceState>,
    dns_cache: HashMap<String, Option<Ipv4Addr>>,
    dns_inflight: HashMap<String, ()>,
    origins: HashMap<String, OriginConn>,
    next_port: u16,
    nav_start: Option<SimTime>,
    fcp: Option<SimTime>,
    plt: Option<SimTime>,
    failed: bool,
}

impl BrowserHost {
    pub fn new(ip: Ipv4Addr, page: PageProfile, proxy: DnsProxy) -> Self {
        let n = page.resources.len();
        BrowserHost {
            ip,
            page,
            proxy,
            states: vec![ResourceState::Undiscovered; n],
            dns_cache: HashMap::new(),
            dns_inflight: HashMap::new(),
            origins: HashMap::new(),
            next_port: 50_000,
            nav_start: None,
            fcp: None,
            plt: None,
            failed: false,
        }
    }

    /// Begin the navigation.
    pub fn navigate(&mut self, ctx: &mut Ctx<'_>) {
        assert!(self.nav_start.is_none(), "navigate twice");
        self.nav_start = Some(ctx.now);
        let mut out = Vec::new();
        let roots: Vec<usize> = self
            .page
            .resources
            .iter()
            .filter(|r| r.discovered_by.is_none())
            .map(|r| r.id)
            .collect();
        for id in roots {
            self.discover(ctx.now, ctx.rng, id, &mut out);
        }
        for p in out {
            ctx.send(p);
        }
    }

    fn discover(
        &mut self,
        now: SimTime,
        rng: &mut doqlab_simnet::SimRng,
        id: usize,
        out: &mut Vec<Packet>,
    ) {
        if self.states[id] != ResourceState::Undiscovered {
            return;
        }
        let domain = self.page.resources[id].domain.clone();
        match self.dns_cache.get(&domain) {
            Some(Some(ip)) => {
                let ip = *ip;
                self.request(now, id, ip, out);
            }
            Some(None) => {
                self.states[id] = ResourceState::WaitingDns;
                self.failed = true;
            }
            None => {
                self.states[id] = ResourceState::WaitingDns;
                if self.dns_inflight.insert(domain.clone(), ()).is_none() {
                    self.proxy.resolve(now, rng, &domain, out);
                }
            }
        }
    }

    fn request(&mut self, now: SimTime, id: usize, ip: Ipv4Addr, out: &mut Vec<Packet>) {
        let (domain, path) = {
            let r = &self.page.resources[id];
            (r.domain.clone(), r.path.clone())
        };
        if !self.origins.contains_key(&domain) {
            let port = self.next_port;
            self.next_port += 1;
            let mut conn = HttpsClientConn::new(
                SocketAddr::new(self.ip, port),
                SocketAddr::new(ip, 443),
                &domain,
            );
            conn.start(now, out);
            self.origins
                .insert(domain.clone(), OriginConn { conn, port });
        }
        let origin = self.origins.get_mut(&domain).expect("just ensured");
        origin.conn.request(id, &path);
        self.states[id] = ResourceState::Requested;
        let mut extra = Vec::new();
        origin.conn.poll(now, &mut extra);
        out.append(&mut extra);
    }

    /// Handle DNS completions, fetch completions and dependent
    /// discovery; update FCP/PLT.
    fn progress(&mut self, now: SimTime, rng: &mut doqlab_simnet::SimRng, out: &mut Vec<Packet>) {
        // DNS results.
        for (domain, ip) in self.proxy.take_resolved() {
            self.dns_inflight.remove(&domain);
            self.dns_cache.insert(domain.clone(), ip);
            match ip {
                Some(ip) => {
                    let waiting: Vec<usize> = self
                        .page
                        .resources
                        .iter()
                        .filter(|r| {
                            r.domain == domain && self.states[r.id] == ResourceState::WaitingDns
                        })
                        .map(|r| r.id)
                        .collect();
                    for id in waiting {
                        self.request(now, id, ip, out);
                    }
                }
                None => self.failed = true,
            }
        }
        // Fetch completions.
        let mut completed = Vec::new();
        for origin in self.origins.values_mut() {
            completed.extend(origin.conn.take_completed());
            if origin.conn.failed() {
                self.failed = true;
            }
        }
        for done in completed {
            self.states[done.resource_id] = ResourceState::Done;
            let children: Vec<usize> = self
                .page
                .resources
                .iter()
                .filter(|r| r.discovered_by == Some(done.resource_id))
                .map(|r| r.id)
                .collect();
            for child in children {
                self.discover(now, rng, child, out);
            }
        }
        // FCP: all render-blocking resources done.
        if self.fcp.is_none() {
            let blocking_done = self
                .page
                .resources
                .iter()
                .filter(|r| r.render_blocking)
                .all(|r| self.states[r.id] == ResourceState::Done);
            if blocking_done {
                self.fcp = Some(now + Duration::from_millis(self.page.render_ms));
            }
        }
        // PLT: everything done. The load event cannot fire before first
        // paint, so PLT is floored at FCP.
        if self.plt.is_none() && self.states.iter().all(|s| *s == ResourceState::Done) {
            let plt = now + Duration::from_millis(self.page.onload_ms);
            self.plt = Some(match self.fcp {
                Some(fcp) => plt.max(fcp),
                None => plt,
            });
        }
    }

    pub fn is_complete(&self) -> bool {
        self.plt.is_some()
    }

    /// Debug view of origin connections.
    pub fn debug_origins(&self) -> Vec<(String, String)> {
        self.origins
            .iter()
            .map(|(d, o)| (d.clone(), o.conn.debug_summary()))
            .collect()
    }

    /// Debug view: (resource id, domain, state).
    pub fn debug_states(&self) -> Vec<(usize, String, &'static str)> {
        self.page
            .resources
            .iter()
            .map(|r| {
                let state = match self.states[r.id] {
                    ResourceState::Undiscovered => "undiscovered",
                    ResourceState::WaitingDns => "waiting-dns",
                    ResourceState::Requested => "requested",
                    ResourceState::Done => "done",
                };
                (r.id, r.domain.clone(), state)
            })
            .collect()
    }

    /// The navigation's metrics (call after the simulation settles).
    pub fn result(&self) -> PageLoadResult {
        let start = self.nav_start.unwrap_or(SimTime::ZERO);
        match (self.fcp, self.plt) {
            (Some(fcp), Some(plt)) if !self.failed => PageLoadResult {
                fcp_ms: (fcp - start).as_secs_f64() * 1000.0,
                plt_ms: (plt - start).as_secs_f64() * 1000.0,
                dns_queries: self.proxy.queries_sent,
                proxy_connections: self.proxy.connections_opened,
                failed: false,
            },
            _ => PageLoadResult {
                fcp_ms: f64::NAN,
                plt_ms: f64::NAN,
                dns_queries: self.proxy.queries_sent,
                proxy_connections: self.proxy.connections_opened,
                failed: true,
            },
        }
    }
}

impl Host for BrowserHost {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let mut out = Vec::new();
        if self.proxy.owns_port(pkt.dst.port) {
            self.proxy.on_packet(ctx.now, &pkt, &mut out);
        } else if let Some(origin) = self.origins.values_mut().find(|o| o.port == pkt.dst.port) {
            origin.conn.on_packet(ctx.now, &pkt, &mut out);
        }
        self.progress(ctx.now, ctx.rng, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = Vec::new();
        self.proxy.poll(ctx.now, &mut out);
        for origin in self.origins.values_mut() {
            origin.conn.poll(ctx.now, &mut out);
        }
        self.progress(ctx.now, ctx.rng, &mut out);
        for p in out {
            ctx.send(p);
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        let mut t = self.proxy.next_timeout();
        for origin in self.origins.values() {
            t = match (t, origin.conn.next_timeout()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        t
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Origin IP for a page domain (via the shared deterministic DNS map).
pub fn origin_ip(domain: &str) -> Ipv4Addr {
    ip_for_domain(domain)
}
